"""Project documentation and its build/link checker.

The markdown pages live next to this file (``api.md``,
``architecture.md``, ``serving.md``); ``python -m docs.check`` validates
them — see :mod:`docs.check`.
"""
