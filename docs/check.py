"""Documentation build/link checker: ``python -m docs.check``.

Validates the docs tree (and README.md) without a network connection:

1. **Relative links resolve** — every ``[text](target)`` whose target is
   not ``http(s)://`` must point at an existing file (anchors stripped).
2. **Anchors exist** — in-page and cross-page ``#fragment`` links must
   match a heading in the target markdown file (GitHub-style slugs).
3. **Code references are live** — every backticked dotted name starting
   with ``repro.`` must import (module) or resolve (attribute chain), so
   the docs cannot drift from the API they describe.
4. **API coverage is strict** — every public name in the ``__all__`` of
   the documented layer modules (``API_MODULES``) must appear in
   ``docs/api.md``, so new public surface cannot ship undocumented.

Exits non-zero listing every problem; CI runs this next to the test
suite.
"""

from __future__ import annotations

import importlib
import os
import re
import sys
from typing import Dict, List, Set, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")

#: Markdown files checked, relative to the repository root.
PAGES = (
    "README.md",
    "docs/analysis.md",
    "docs/api.md",
    "docs/architecture.md",
    "docs/benchmarks.md",
    "docs/drift.md",
    "docs/engine.md",
    "docs/faults.md",
    "docs/fleet.md",
    "docs/prediction.md",
    "docs/serving.md",
    "docs/traffic.md",
)

#: Modules whose entire ``__all__`` must appear in ``docs/api.md``.
API_MODULES = (
    "repro",
    "repro.core",
    "repro.analyze",
    "repro.obs",
    "repro.serve",
    "repro.drift",
    "repro.predict",
    "repro.traffic",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
_CODE_REF_RE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep content
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> Set[str]:
    """All anchor slugs a markdown document exposes."""
    slugs: Dict[str, int] = {}
    out: Set[str] = set()
    for match in _HEADING_RE.finditer(_FENCE_RE.sub("", markdown)):
        slug = github_slug(match.group(2))
        n = slugs.get(slug, 0)
        out.add(slug if n == 0 else f"{slug}-{n}")
        slugs[slug] = n + 1
    return out


def check_links(page: str, text: str) -> List[str]:
    """Problems with one page's markdown links."""
    problems: List[str] = []
    page_dir = os.path.dirname(os.path.join(REPO_ROOT, page))
    for target in _LINK_RE.findall(_FENCE_RE.sub("", text)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = os.path.normpath(os.path.join(page_dir, path_part))
            if not os.path.exists(resolved):
                problems.append(f"{page}: broken link -> {target}")
                continue
        else:
            resolved = os.path.join(REPO_ROOT, page)
        if anchor and resolved.endswith(".md"):
            with open(resolved, encoding="utf-8") as handle:
                if anchor not in heading_slugs(handle.read()):
                    problems.append(f"{page}: missing anchor -> {target}")
    return problems


def check_code_refs(page: str, text: str) -> List[str]:
    """Problems with one page's backticked ``repro.*`` references."""
    problems: List[str] = []
    for ref in sorted(set(_CODE_REF_RE.findall(text))):
        if not _resolves(ref):
            problems.append(f"{page}: dead code reference -> `{ref}`")
    return problems


def _resolves(dotted: str) -> bool:
    """Whether a dotted name imports as a module or attribute chain."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_api_coverage() -> List[str]:
    """Public ``__all__`` names missing from ``docs/api.md``."""
    problems: List[str] = []
    path = os.path.join(REPO_ROOT, "docs", "api.md")
    if not os.path.exists(path):
        return ["docs/api.md: page missing (api coverage not checked)"]
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for module_name in API_MODULES:
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            problems.append(
                f"docs/api.md: cannot import {module_name} ({exc})"
            )
            continue
        for name in getattr(module, "__all__", ()):
            if name.startswith("_"):
                continue  # dunders (e.g. __version__) need no docs row
            pattern = rf"(?<![A-Za-z0-9_]){re.escape(name)}(?![A-Za-z0-9_])"
            if not re.search(pattern, text):
                problems.append(
                    f"docs/api.md: public symbol undocumented -> "
                    f"{module_name}.{name}"
                )
    return problems


def run() -> Tuple[int, List[str]]:
    """Check every page; returns (pages checked, problems)."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    problems: List[str] = []
    checked = 0
    for page in PAGES:
        path = os.path.join(REPO_ROOT, page)
        if not os.path.exists(path):
            problems.append(f"{page}: page missing")
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        problems += check_links(page, text)
        problems += check_code_refs(page, text)
        checked += 1
    problems += check_api_coverage()
    return checked, problems


def main() -> int:
    """CLI entry point; returns a process exit code."""
    checked, problems = run()
    for problem in problems:
        print(problem, file=sys.stderr)
    status = "FAILED" if problems else "ok"
    print(f"docs check: {checked} pages, {len(problems)} problems ({status})")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
