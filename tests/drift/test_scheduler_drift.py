"""Fleet-level drift: detection from served traffic, exactly one
re-profile per episode (even under concurrency), store demotion, and
persistence of the drift state alongside selections."""

import threading

from repro.config import ReproConfig
from repro.device import make_cpu
from repro.drift import DriftConfig
from repro.obs.events import EventKind
from repro.serve import LaunchScheduler, SelectionStore, ServeRequest
from tests.conftest import make_axpy_args

UNITS = 512

#: Confirms on the first post-baseline exceedance; short warmup so a few
#: warm requests freeze the baseline.
QUICK = DriftConfig(warmup=2, confirm=1, cooldown=2)


def make_scheduler(config, pool, devices=1, **kwargs):
    kwargs.setdefault("store", SelectionStore(drift=QUICK))
    scheduler = LaunchScheduler(
        tuple(make_cpu(config) for _ in range(devices)), **kwargs
    )
    scheduler.register_pool(pool)
    return scheduler


def make_request(config, units=UNITS):
    return ServeRequest(
        kernel="axpy",
        args=make_axpy_args(units, config),
        workload_units=units,
    )


def warm_up(scheduler, config, requests=3):
    """Cold-profile the class, then serve enough warm traffic to freeze
    the detector baseline.  Returns the workload-class key."""
    outcomes = [
        scheduler.launch(make_request(config)) for _ in range(requests)
    ]
    assert outcomes[0].profiled
    assert all(o.store_hit for o in outcomes[1:])
    return outcomes[0].workload_class


def shift_regime(scheduler, key, factor=4.0):
    """Simulate an input-regime shift: the frozen baseline no longer
    describes current traffic (as if the selection had been learned
    under ``factor``-times-faster inputs)."""
    detector = scheduler.store.drift.monitor.detector(key)
    assert detector is not None and detector.baseline is not None
    detector.baseline /= factor


class TestDriftReselection:
    def test_confirmed_drift_triggers_one_reprofile(self, fast_slow_pool):
        config = ReproConfig(trace=True)
        scheduler = make_scheduler(config, fast_slow_pool)
        key = warm_up(scheduler, config)
        shift_regime(scheduler, key)

        # The next warm request's measurement confirms the drift and
        # demotes the stored entry (decayed, still serving).
        observed = scheduler.launch(make_request(config))
        assert observed.store_hit and not observed.profiled
        drift = scheduler.store.drift
        assert drift.confirmations == 1
        assert drift.should_rearm(key)
        assert scheduler.store.stats.decays == 1
        assert scheduler.store.peek(key).decay_at is not None

        # Exactly the next launch re-profiles; the fresh publish lifts
        # the demotion and closes the episode.
        rearmed = scheduler.launch(make_request(config))
        assert rearmed.profiled
        assert not rearmed.store_hit
        assert rearmed.lease is not None
        assert rearmed.result.reason.startswith("drift re-activation")
        assert drift.reselections == 1
        (episode,) = drift.episodes
        assert episode.completed
        assert episode.key == key
        assert scheduler.store.peek(key).decay_at is None

        # Traffic settles back onto the (re-)published selection.
        after = scheduler.launch(make_request(config))
        assert after.store_hit and not after.profiled
        assert not drift.should_rearm(key)

        kinds = [event.kind for event in scheduler.tracer.events]
        assert EventKind.DRIFT_CONFIRMED in kinds
        assert EventKind.RESELECTION in kinds

    def test_episode_survives_until_served(self, fast_slow_pool, config):
        """Small launches cannot re-profile; the episode waits for one
        that can."""
        scheduler = make_scheduler(config, fast_slow_pool)
        key = warm_up(scheduler, config)
        shift_regime(scheduler, key)
        scheduler.launch(make_request(config))  # confirms
        drift = scheduler.store.drift
        assert drift.should_rearm(key)

        small_units = max(1, config.small_workload_threshold // 2)
        small = ServeRequest(
            kernel="axpy",
            args=make_axpy_args(small_units, config),
            workload_units=small_units,
            signature=None,
        )
        outcome = scheduler.launch(small)
        assert not outcome.profiled
        # The small request is a different workload class, so the episode
        # for the drifted class is untouched.
        assert outcome.workload_class != key
        assert drift.should_rearm(key)

        served = scheduler.launch(make_request(config))
        assert served.profiled
        assert drift.reselections == 1


class TestOneReprofilePerEpisode:
    def test_two_threads_race_one_reprofile(self, fast_slow_pool, config):
        """The ISSUE's concurrency clause: a drifting class served by two
        racing clients re-profiles exactly once."""
        scheduler = make_scheduler(config, fast_slow_pool)
        key = warm_up(scheduler, config)
        shift_regime(scheduler, key)
        scheduler.launch(make_request(config))  # confirms the episode
        drift = scheduler.store.drift
        assert drift.should_rearm(key)

        barrier = threading.Barrier(2)
        outcomes = []
        lock = threading.Lock()

        def client():
            request = make_request(config)
            barrier.wait()
            outcome = scheduler.launch(request)
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=client) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sum(o.profiled for o in outcomes) == 1
        loser = next(o for o in outcomes if not o.profiled)
        # The loser kept serving the decayed-but-live selection.
        assert loser.store_hit
        assert drift.reselections == 1
        assert len(drift.episodes) == 1
        assert not drift.should_rearm(key)

    def test_episode_storm_still_one_reprofile(self, fast_slow_pool, config):
        scheduler = make_scheduler(config, fast_slow_pool)
        key = warm_up(scheduler, config)
        shift_regime(scheduler, key)
        scheduler.launch(make_request(config))  # confirms
        outcomes = scheduler.serve_all(
            [make_request(config) for _ in range(8)], clients=4
        )
        assert sum(o.profiled for o in outcomes) == 1
        assert scheduler.store.drift.reselections == 1


class TestDriftPersistence:
    def test_drift_state_rides_in_store_snapshots(
        self, fast_slow_pool, config, tmp_path
    ):
        path = str(tmp_path / "store.json")
        scheduler = make_scheduler(config, fast_slow_pool)
        key = warm_up(scheduler, config)
        shift_regime(scheduler, key)
        scheduler.launch(make_request(config))  # confirms, episode open
        scheduler.store.save(path)

        # The restarted fleet remembers the open episode (auto-arming
        # drift from the snapshot) and serves the re-profile first thing.
        loaded = SelectionStore.load(path)
        assert loaded.drift is not None
        assert loaded.drift.should_rearm(key)
        warm = make_scheduler(config, fast_slow_pool, store=loaded)
        outcome = warm.launch(make_request(config))
        assert outcome.profiled
        assert loaded.drift.reselections == 1

    def test_drift_free_store_stays_drift_free(
        self, fast_slow_pool, config, tmp_path
    ):
        path = str(tmp_path / "store.json")
        scheduler = make_scheduler(
            config, fast_slow_pool, store=SelectionStore()
        )
        warm_up(scheduler, config)
        scheduler.store.save(path)
        assert SelectionStore.load(path).drift is None
