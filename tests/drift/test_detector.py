"""Detector behaviour: no false alarms on clock noise, fast confirmation
on real shifts, and cooldown hysteresis that cannot oscillate."""

import json

import pytest

from repro.config import ReproConfig
from repro.drift import DriftConfig, DriftDetector, DriftSignal, DriftState
from repro.errors import DriftError

#: Matches the simulator's execution-time jitter (NoisyClock's lognormal
#: sigma), so the stationary test models exactly the noise the detector
#: sees in production traces.
CLOCK_NOISE_SIGMA = 0.02


def noisy_stream(base, count, stream="drift-noise", sigma=CLOCK_NOISE_SIGMA):
    """Stationary lognormal throughput samples around ``base``."""
    rng = ReproConfig().rng(stream)
    return base * rng.lognormal(mean=0.0, sigma=sigma, size=count)


def feed(detector, values):
    """Observe a whole stream; return the per-observation signals."""
    return [detector.observe(float(value)) for value in values]


class TestStationaryNoise:
    def test_engine_level_noise_never_triggers(self):
        """2% lognormal jitter (the engine's clock noise) must stay quiet."""
        detector = DriftDetector()
        signals = feed(detector, noisy_stream(100.0, 4000))
        assert set(signals) == {DriftSignal.NONE}
        assert detector.confirmations == 0
        assert detector.state is DriftState.STABLE

    @pytest.mark.parametrize("seed", ["a", "b", "c"])
    def test_quiet_across_seeds(self, seed):
        detector = DriftDetector()
        signals = feed(detector, noisy_stream(250.0, 1000, stream=seed))
        assert DriftSignal.CONFIRMED not in signals

    def test_single_spike_deescalates(self):
        """One bad clock read may suspect, but must not confirm."""
        detector = DriftDetector()
        feed(detector, [100.0] * 10)
        assert detector.state is DriftState.STABLE
        # A single +70% outlier crosses the threshold once...
        assert detector.observe(170.0) is DriftSignal.SUSPECT
        assert detector.state is DriftState.SUSPECT
        # ...but the stream returning to baseline de-escalates before the
        # confirmation count is reached.
        signals = feed(detector, [100.0] * 20)
        assert DriftSignal.CONFIRMED not in signals
        assert detector.state is DriftState.STABLE


class TestStepChange:
    def test_step_confirms_within_a_handful_of_chunks(self):
        """A sustained regression confirms within ``confirm + slack``."""
        detector = DriftDetector()
        feed(detector, noisy_stream(100.0, 20))
        assert detector.state is DriftState.STABLE
        signals = feed(detector, noisy_stream(140.0, 8, stream="post"))
        assert DriftSignal.CONFIRMED in signals
        confirmed_at = signals.index(DriftSignal.CONFIRMED)
        assert confirmed_at < 6
        assert detector.confirmations == 1

    def test_improvement_also_confirms(self):
        """The test is two-sided: a faster regime is still a regime."""
        detector = DriftDetector()
        feed(detector, [100.0] * 20)
        signals = feed(detector, [60.0] * 8)
        assert DriftSignal.CONFIRMED in signals

    def test_suspect_precedes_confirmation(self):
        detector = DriftDetector(DriftConfig(confirm=3))
        feed(detector, [100.0] * 10)
        # +50%: the PH score crosses the threshold on the second shifted
        # sample, then needs three consecutive exceedances to confirm.
        signals = feed(detector, [150.0] * 4)
        assert signals == [
            DriftSignal.NONE,
            DriftSignal.SUSPECT,
            DriftSignal.SUSPECT,
            DriftSignal.CONFIRMED,
        ]

    def test_slow_creep_below_slack_stays_quiet(self):
        """Per-observation drift under ``delta`` is tolerated for free."""
        detector = DriftDetector(DriftConfig(delta=0.05, threshold=0.6))
        feed(detector, [100.0] * 10)
        # 2% above baseline forever: each observation contributes
        # 0.02 - 0.05 < 0 to the increasing sum, so the score never grows.
        signals = feed(detector, [102.0] * 500)
        assert set(signals) == {DriftSignal.NONE}


class TestCooldown:
    def test_cooldown_suppresses_oscillation(self):
        """After a confirmation the detector re-warms before it can fire
        again, so a persistent shift yields one episode, not a storm."""
        config = DriftConfig(warmup=4, confirm=2, cooldown=4)
        detector = DriftDetector(config)
        feed(detector, [100.0] * 6)
        signals = feed(detector, [150.0] * 40)
        assert signals.count(DriftSignal.CONFIRMED) == 1
        # Post-cooldown the baseline re-froze at the *new* level, so the
        # shifted regime reads as stable.
        assert detector.state is DriftState.STABLE
        assert detector.baseline == pytest.approx(150.0)

    def test_cooldown_discards_observations(self):
        config = DriftConfig(warmup=2, confirm=1, cooldown=3)
        detector = DriftDetector(config)
        feed(detector, [100.0, 100.0])
        assert detector.observe(200.0) is DriftSignal.CONFIRMED
        assert detector.state is DriftState.COOLDOWN
        assert detector.score == 0.0
        for _ in range(3):
            assert detector.observe(500.0) is DriftSignal.NONE
        assert detector.state is DriftState.WARMUP

    def test_zero_cooldown_rewarms_immediately(self):
        config = DriftConfig(warmup=2, confirm=1, cooldown=0)
        detector = DriftDetector(config)
        feed(detector, [100.0, 100.0])
        assert detector.observe(200.0) is DriftSignal.CONFIRMED
        assert detector.state is DriftState.WARMUP

    def test_back_to_back_shifts_each_confirm_once(self):
        config = DriftConfig(warmup=2, confirm=2, cooldown=2)
        detector = DriftDetector(config)
        signals = feed(detector, [100.0] * 4)
        signals += feed(detector, [200.0] * 10)  # shift 1 + re-warm
        signals += feed(detector, [400.0] * 10)  # shift 2 + re-warm
        assert signals.count(DriftSignal.CONFIRMED) == 2
        assert detector.confirmations == 2


class TestLifecycle:
    def test_warmup_freezes_the_baseline_mean(self):
        detector = DriftDetector(DriftConfig(warmup=4))
        feed(detector, [90.0, 100.0, 110.0])
        assert detector.state is DriftState.WARMUP
        assert detector.baseline is None
        assert detector.score == 0.0
        detector.observe(100.0)
        assert detector.state is DriftState.STABLE
        assert detector.baseline == pytest.approx(100.0)

    def test_reset_rewarms_but_keeps_counters(self):
        detector = DriftDetector(DriftConfig(warmup=2, confirm=1))
        feed(detector, [100.0, 100.0, 200.0, 100.0])
        samples, confirmations = detector.samples, detector.confirmations
        detector.reset()
        assert detector.state is DriftState.WARMUP
        assert detector.baseline is None
        assert detector.samples == samples
        assert detector.confirmations == confirmations

    def test_ewma_tracks_the_stream(self):
        detector = DriftDetector()
        feed(detector, [100.0] * 50)
        assert detector.mean == pytest.approx(100.0)
        assert detector.variance == pytest.approx(0.0)

    def test_rejects_non_positive_and_non_finite(self):
        detector = DriftDetector()
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(DriftError):
                detector.observe(bad)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"delta": -0.1},
            {"threshold": 0.0},
            {"warmup": 0},
            {"confirm": 0},
            {"cooldown": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(DriftError):
            DriftConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = DriftConfig()
        assert 0.0 < config.ewma_alpha <= 1.0
        assert config.delta > CLOCK_NOISE_SIGMA  # slack exceeds clock noise


class TestPersistence:
    def test_payload_round_trips_through_json(self):
        detector = DriftDetector(DriftConfig(warmup=4, confirm=2))
        feed(detector, noisy_stream(100.0, 9))
        detector.observe(140.0)  # leave the PH sums mid-accumulation
        payload = json.loads(json.dumps(detector.to_payload()))
        clone = DriftDetector.from_payload(
            payload, DriftConfig(warmup=4, confirm=2)
        )
        assert clone.to_payload() == detector.to_payload()
        # Both continue identically from the restored state.
        stream = [150.0, 150.0, 150.0]
        assert feed(clone, stream) == feed(detector, stream)

    def test_round_trip_preserves_warmup_progress(self):
        detector = DriftDetector(DriftConfig(warmup=8))
        feed(detector, [100.0] * 3)
        clone = DriftDetector.from_payload(detector.to_payload())
        assert clone.state is DriftState.WARMUP
        feed(clone, [100.0] * 5)
        assert clone.state is DriftState.STABLE
        assert clone.baseline == pytest.approx(100.0)

    @pytest.mark.parametrize(
        "corrupt",
        [
            {},
            {"state": "stable"},  # missing everything else
            {"state": "no-such-state"},
        ],
    )
    def test_malformed_payload_rejected(self, corrupt):
        with pytest.raises(DriftError):
            DriftDetector.from_payload(corrupt)
