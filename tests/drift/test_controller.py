"""Monitor and controller behaviour: per-class detectors, consume-once
claims, episode lifecycle, and persistence — plus the runtime wiring
(re-arm -> re-profile -> new winner -> episode recorded)."""

import json

import pytest

from repro.core.runtime import DySelRuntime
from repro.drift import (
    DriftConfig,
    DriftMonitor,
    DriftSignal,
    DriftState,
    ReselectionController,
)
from repro.errors import DriftError
from tests.conftest import make_axpy_args

#: Fast-confirming tuning for tests: 2-sample baseline, one exceedance
#: confirms, short cooldown.
QUICK = DriftConfig(warmup=2, confirm=1, cooldown=2)


def confirm_drift(controller, key, kernel="axpy", variant="fast"):
    """Drive one class from warmup straight into a confirmed episode."""
    for value in (100.0, 100.0, 200.0):
        signal = controller.observe(key, kernel, variant, value)
    assert signal is DriftSignal.CONFIRMED
    return signal


class TestMonitor:
    def test_detectors_are_created_per_key(self):
        monitor = DriftMonitor(QUICK)
        monitor.observe("a", 100.0)
        monitor.observe("b", 100.0)
        assert len(monitor) == 2
        assert "a" in monitor and "b" in monitor
        assert set(monitor.keys()) == {"a", "b"}
        assert monitor.detector("c") is None

    def test_keys_are_independent(self):
        monitor = DriftMonitor(QUICK)
        for value in (100.0, 100.0, 200.0):
            monitor.observe("hot", value)
        assert monitor.detector("hot").confirmations == 1
        monitor.observe("cold", 100.0)
        assert monitor.detector("cold").confirmations == 0

    def test_reset_and_drop(self):
        monitor = DriftMonitor(QUICK)
        monitor.observe("a", 100.0)
        assert monitor.reset("a") is True
        assert monitor.detector("a").state is DriftState.WARMUP
        assert monitor.drop("a") is True
        assert "a" not in monitor
        assert monitor.reset("a") is False
        assert monitor.drop("a") is False

    def test_payload_round_trips(self):
        monitor = DriftMonitor(QUICK)
        for value in (100.0, 100.0, 110.0):
            monitor.observe("a", value)
        payload = json.loads(json.dumps(monitor.to_payload()))
        clone = DriftMonitor(QUICK)
        clone.load_payload(payload)
        assert clone.to_payload() == monitor.to_payload()


class TestEpisodeLifecycle:
    def test_confirmation_opens_one_episode(self):
        controller = ReselectionController(QUICK)
        confirm_drift(controller, "k")
        assert controller.confirmations == 1
        assert controller.should_rearm("k")
        (episode,) = controller.open_episodes
        assert episode.key == "k"
        assert episode.stale_variant == "fast"
        assert not episode.completed
        assert controller.episodes == ()

    def test_claim_is_consume_once(self):
        controller = ReselectionController(QUICK)
        confirm_drift(controller, "k")
        assert controller.claim("k") is True
        assert controller.claim("k") is False
        assert not controller.should_rearm("k")

    def test_release_reopens_the_claim(self):
        """A failed re-profile hands the duty to the next launch."""
        controller = ReselectionController(QUICK)
        confirm_drift(controller, "k")
        assert controller.claim("k")
        assert controller.release("k") is True
        assert controller.should_rearm("k")
        assert controller.claim("k") is True

    def test_release_without_claim_is_a_noop(self):
        controller = ReselectionController(QUICK)
        assert controller.release("k") is False
        confirm_drift(controller, "k")
        assert controller.release("k") is False

    def test_complete_records_the_episode(self):
        controller = ReselectionController(QUICK)
        confirm_drift(controller, "k", variant="slow")
        controller.claim("k")
        episode = controller.complete("k", "fast")
        assert episode is not None
        assert episode.completed
        assert episode.stale_variant == "slow"
        assert episode.new_variant == "fast"
        assert episode.reselected
        assert controller.episodes == (episode,)
        assert controller.open_episodes == ()
        assert controller.reselections == 1
        assert not controller.should_rearm("k")
        # The class's detector re-warms on post-shift traffic.
        assert controller.monitor.detector("k").state is DriftState.WARMUP

    def test_complete_with_same_winner_is_not_a_reselection(self):
        controller = ReselectionController(QUICK)
        confirm_drift(controller, "k", variant="fast")
        episode = controller.complete("k", "fast")
        assert episode.completed
        assert not episode.reselected

    def test_complete_without_episode_returns_none(self):
        """Routine cold-cache profiles close nothing."""
        controller = ReselectionController(QUICK)
        assert controller.complete("never-drifted", "fast") is None
        assert controller.reselections == 0

    def test_repeat_confirmations_keep_one_episode_open(self):
        """An unserved episode is not duplicated by the next confirmation."""
        controller = ReselectionController(QUICK)
        confirm_drift(controller, "k")
        # Ride through cooldown + re-warm into a second confirmation.
        for value in (300.0, 300.0, 300.0, 300.0, 600.0):
            controller.observe("k", "axpy", "fast", value)
        assert controller.confirmations == 2
        assert len(controller.open_episodes) == 1

    def test_decay_hook_fires_once_per_episode(self):
        decayed = []
        controller = ReselectionController(QUICK, decay_hook=decayed.append)
        confirm_drift(controller, "k")
        for value in (300.0, 300.0, 300.0, 300.0, 600.0):
            controller.observe("k", "axpy", "fast", value)
        assert controller.confirmations == 2
        assert decayed == ["k"]

    def test_suspects_are_counted(self):
        controller = ReselectionController(DriftConfig(warmup=2, confirm=3))
        for value in (100.0, 100.0, 150.0, 150.0):
            controller.observe("k", "axpy", "fast", value)
        assert controller.suspects >= 1
        assert controller.confirmations == 0
        assert not controller.should_rearm("k")


class TestControllerPersistence:
    def test_payload_round_trips_through_json(self):
        controller = ReselectionController(QUICK)
        confirm_drift(controller, "open")
        confirm_drift(controller, "closed")
        controller.complete("closed", "slow")
        payload = json.loads(json.dumps(controller.to_payload()))

        clone = ReselectionController(QUICK)
        clone.load_payload(payload)
        assert clone.should_rearm("open")
        assert [e.key for e in clone.episodes] == ["closed"]
        assert clone.episodes[0].reselected
        assert set(clone.monitor.keys()) == set(controller.monitor.keys())

    def test_claims_are_not_persisted(self):
        """A claim names an in-flight launch of a dead process; reloading
        must leave the episode unclaimed so the next launch retries."""
        controller = ReselectionController(QUICK)
        confirm_drift(controller, "k")
        assert controller.claim("k")
        payload = controller.to_payload()
        clone = ReselectionController(QUICK)
        clone.load_payload(payload)
        assert clone.should_rearm("k")
        assert clone.claim("k") is True

    @pytest.mark.parametrize(
        "payload",
        [
            {"detectors": "not-a-mapping"},
            {"detectors": {}, "pending": "nope", "episodes": []},
            {"detectors": {}, "pending": [{"key": "k"}], "episodes": []},
        ],
    )
    def test_malformed_payload_rejected(self, payload):
        controller = ReselectionController(QUICK)
        with pytest.raises(DriftError):
            controller.load_payload(payload)


class TestRuntimeWiring:
    """enable_drift: re-arm -> re-profile -> new winner -> episode."""

    UNITS = 512

    def make_runtime(self, cpu, config, pool):
        runtime = DySelRuntime(cpu, config)
        runtime.register_pool(pool)
        return runtime

    def test_confirmed_drift_reprofiles_next_launch(
        self, cpu, config, fast_slow_pool
    ):
        runtime = self.make_runtime(cpu, config, fast_slow_pool)
        controller = runtime.enable_drift(QUICK)
        first = runtime.launch_kernel(
            "axpy", make_axpy_args(self.UNITS, config), self.UNITS
        )
        assert first.profiled
        # Replay launches feed the detector with real measurements; a
        # synthetic regime shift confirms drift for this kernel.
        for _ in range(2):
            result = runtime.launch_kernel(
                "axpy",
                make_axpy_args(self.UNITS, config),
                self.UNITS,
                profiling=False,
            )
            assert not result.profiled
        baseline = controller.monitor.detector("axpy").baseline
        assert baseline is not None and baseline > 0.0
        controller.observe("axpy", "axpy", first.selected, 4.0 * baseline)
        assert controller.should_rearm("axpy")

        rearmed = runtime.launch_kernel(
            "axpy",
            make_axpy_args(self.UNITS, config),
            self.UNITS,
            profiling=False,
        )
        assert rearmed.profiled
        assert rearmed.reason.startswith("drift re-activation")
        (episode,) = controller.episodes
        assert episode.completed
        assert episode.new_variant == rearmed.selected
        assert not controller.should_rearm("axpy")

    def test_moot_rearm_released_for_a_later_launch(
        self, cpu, config, fast_slow_pool
    ):
        """A small launch cannot serve the re-profile; its claim returns."""
        runtime = self.make_runtime(cpu, config, fast_slow_pool)
        controller = runtime.enable_drift(QUICK)
        confirm_drift(controller, "axpy")
        small = max(1, config.small_workload_threshold // 2)
        result = runtime.launch_kernel(
            "axpy", make_axpy_args(small, config), small, profiling=False
        )
        assert not result.profiled
        assert controller.should_rearm("axpy")
        big = runtime.launch_kernel(
            "axpy",
            make_axpy_args(self.UNITS, config),
            self.UNITS,
            profiling=False,
        )
        assert big.profiled
        assert big.reason.startswith("drift re-activation")

    def test_drift_off_runtime_is_unchanged(self, cpu, config, fast_slow_pool):
        runtime = self.make_runtime(cpu, config, fast_slow_pool)
        assert runtime.drift is None
        result = runtime.launch_kernel(
            "axpy",
            make_axpy_args(self.UNITS, config),
            self.UNITS,
            profiling=False,
        )
        assert not result.profiled
