"""Golden refresh guard: the vectorized hot path changes no output.

``test_differential`` checks each launch against ``goldens.json`` under
whatever path the engine picks by default.  This guard removes the
"whatever the engine picks": every catalog case × mode × flow runs twice
— once with the analytic/vectorized drain forced *on* for all batch
sizes, once with it forced *off* (pure event machinery) — and the two
output digests must agree with each other and with the recorded golden.
A divergence here is the exact regression the vectorization work could
introduce: a schedule change that moves a slice boundary or flips a
winner while each individual run still looks self-consistent.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.runtime import DySelRuntime
from repro.device import engine as engine_mod

from .catalog import CATALOG
from .test_differential import (
    FLOWS,
    MODES,
    REGEN,
    _load_goldens,
    build_case,
    output_digest,
)

#: (FAST_BATCH_THRESHOLD, VECTORIZED_BATCH) forcings under test.
FORCINGS = {
    "vectorized-on": (1, True),
    "vectorized-off": (10**9, False),
}


def _launch_digest(case_id, mode, flow, threshold, vectorized):
    saved = (engine_mod.FAST_BATCH_THRESHOLD, engine_mod.VECTORIZED_BATCH)
    engine_mod.FAST_BATCH_THRESHOLD = threshold
    engine_mod.VECTORIZED_BATCH = vectorized
    try:
        case, device, config = build_case(case_id)
        runtime = DySelRuntime(device, config)
        runtime.register_pool(case.pool)
        args = case.fresh_args()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = runtime.launch_kernel(
                case.pool.name,
                args,
                case.workload_units,
                mode=mode,
                flow=flow,
            )
        assert case.validate(args), (
            f"{case_id} diverges from its reference with "
            f"threshold={threshold}, vectorized={vectorized}"
        )
        return output_digest(case, args), result.selected
    finally:
        engine_mod.FAST_BATCH_THRESHOLD, engine_mod.VECTORIZED_BATCH = saved


@pytest.mark.parametrize("flow", FLOWS, ids=lambda f: f.value)
@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("case_id", sorted(CATALOG))
def test_forced_paths_agree_with_each_other_and_the_golden(
    case_id, mode, flow
):
    if REGEN:
        pytest.skip("golden regeneration runs the primary suite only")
    digests = {
        label: _launch_digest(case_id, mode, flow, threshold, vectorized)
        for label, (threshold, vectorized) in FORCINGS.items()
    }
    on_digest, on_selected = digests["vectorized-on"]
    off_digest, off_selected = digests["vectorized-off"]
    assert on_digest == off_digest, (
        f"{case_id}/{mode.value}/{flow.value}: vectorized drain changed "
        "the committed output composition"
    )
    assert on_selected == off_selected, (
        f"{case_id}/{mode.value}/{flow.value}: vectorized drain changed "
        f"the selection ({on_selected!r} vs {off_selected!r})"
    )
    key = f"{case_id}/{mode.value}/{flow.value}"
    goldens = _load_goldens()
    assert key in goldens, f"no golden for {key}"
    assert on_digest == goldens[key], (
        f"{key}: forced-path digest disagrees with the recorded golden"
    )
