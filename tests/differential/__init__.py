"""Differential correctness suite (see ``catalog.py``)."""
