"""Differential correctness: every pool, every mode, every flow.

Two layers of checking for each catalog case:

1. **Element-wise reference** — after a DySel launch under each
   (profiling mode × orchestration flow), the case's checker compares
   the committed outputs against its sequential reference
   implementation (tolerance-based, order-insensitive).
2. **Golden checksums** — a SHA-256 of the output buffers is compared
   against ``goldens.json``.  Launches are deterministic (seeded noise,
   simulated clock), so a digest change means the *composition* of the
   output changed — a different variant won, a slice boundary moved, a
   commit leaked from a sandbox — even when the result is still within
   the reference tolerance.  That is exactly the regression the
   reference check alone cannot see.

Regenerate goldens after an intentional behaviour change with::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/differential -q

Goldens are keyed per (case, mode, flow): profiling modes commit slices
computed by *different* variants whose accumulation orders legitimately
differ in the last ulps, so one digest per case would be wrong by
design.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.core.runtime import DySelRuntime
from repro.device import make_cpu, make_gpu
from repro.harness.runner import run_pure
from repro.modes import OrchestrationFlow, ProfilingMode

from .catalog import CATALOG

GOLDENS_PATH = Path(__file__).with_name("goldens.json")
REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"

MODES = (ProfilingMode.FULLY, ProfilingMode.HYBRID, ProfilingMode.SWAP)
FLOWS = (OrchestrationFlow.SYNC, OrchestrationFlow.ASYNC)


def build_case(case_id: str):
    """Build one catalog case plus its device and config."""
    config = ReproConfig()
    entry = CATALOG[case_id]
    device = (
        make_gpu(config) if entry.device_kind == "gpu" else make_cpu(config)
    )
    return entry.build(config), device, config


def _buffer_data(value) -> np.ndarray:
    data = getattr(value, "data", value)
    return np.asarray(data)


def output_digest(case, args) -> str:
    """SHA-256 over the case's declared output buffers, in spec order."""
    digest = hashlib.sha256()
    for arg in case.pool.spec.signature.args:
        if not arg.is_output:
            continue
        data = _buffer_data(args[arg.name])
        digest.update(arg.name.encode())
        digest.update(np.ascontiguousarray(data).tobytes())
    return digest.hexdigest()


def _load_goldens() -> dict:
    if not GOLDENS_PATH.exists():
        return {}
    return json.loads(GOLDENS_PATH.read_text())


def _record_golden(key: str, digest: str) -> None:
    goldens = _load_goldens()
    goldens[key] = digest
    GOLDENS_PATH.write_text(
        json.dumps(goldens, indent=1, sort_keys=True) + "\n"
    )


@pytest.mark.parametrize("case_id", sorted(CATALOG))
def test_every_variant_matches_reference(case_id):
    """Pure runs: each pool member element-wise equals the reference."""
    case, device, config = build_case(case_id)
    for name in case.pool.variant_names:
        result = run_pure(case, device, name, config)
        assert result.valid, f"{case_id}: variant {name!r} diverges"


@pytest.mark.parametrize("flow", FLOWS, ids=lambda f: f.value)
@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("case_id", sorted(CATALOG))
def test_mode_flow_matches_reference_and_golden(case_id, mode, flow):
    case, device, config = build_case(case_id)
    runtime = DySelRuntime(device, config)
    runtime.register_pool(case.pool)
    args = case.fresh_args()
    with warnings.catch_warnings():
        # Mode/flow demotions (swap→sync, infeasible plans) are expected
        # parts of the matrix, not failures.
        warnings.simplefilter("ignore")
        result = runtime.launch_kernel(
            case.pool.name,
            args,
            case.workload_units,
            mode=mode,
            flow=flow,
        )
    assert result.selected in case.pool.variant_names
    assert case.validate(args), (
        f"{case_id} under {mode.value}/{flow.value} diverges from the "
        "sequential reference"
    )

    key = f"{case_id}/{mode.value}/{flow.value}"
    digest = output_digest(case, args)
    if REGEN:
        _record_golden(key, digest)
        return
    goldens = _load_goldens()
    assert key in goldens, (
        f"no golden for {key}; run REPRO_REGEN_GOLDENS=1 python -m "
        "pytest tests/differential to record it"
    )
    assert digest == goldens[key], (
        f"{key}: output digest {digest[:16]}… != golden "
        f"{goldens[key][:16]}… — the committed output composition "
        "changed; if intentional, regenerate with REPRO_REGEN_GOLDENS=1"
    )
