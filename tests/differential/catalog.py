"""The differential suite's workload catalog.

One entry per benchmark workload (plus the synthetic axpy family), sized
small enough that the full cross-product — every case × all three
profiling modes × both orchestration flows — stays in test-suite
territory.  Each entry names the device kind the case targets, because a
pool's IR is tuned per architecture even though the functional executors
are device-independent.

The catalog is the single source of truth for both test modules here:
``test_differential.py`` (mode/flow cross-checks + goldens) and the
variant sweep (every pool member vs. the sequential reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.config import ReproConfig
from repro.workloads import (
    cutcp,
    histogram,
    kmeans,
    particle_filter,
    sgemm,
    spmv_csr,
    spmv_jds,
    stencil,
)
from repro.workloads.base import BenchmarkCase

from tests.conftest import axpy_output_ok, fast_slow_pool_build, make_axpy_args


@dataclass(frozen=True)
class CatalogEntry:
    """One differential-suite case: factory plus target device kind."""

    build: Callable[[ReproConfig], BenchmarkCase]
    device_kind: str = "cpu"


def _axpy_case(config: ReproConfig) -> BenchmarkCase:
    """The synthetic two-variant axpy family from the shared fixtures."""
    units = 512
    return BenchmarkCase(
        name="axpy/differential",
        pool=fast_slow_pool_build(),
        make_args=lambda: make_axpy_args(units, config),
        workload_units=units,
        check=axpy_output_ok,
    )


#: case id → how to build it.  Sizes are the smallest that keep every
#: pool's profiling plan feasible under the default safe-point rules.
CATALOG: Dict[str, CatalogEntry] = {
    "axpy": CatalogEntry(_axpy_case),
    "sgemm": CatalogEntry(lambda cfg: sgemm.schedule_case(128, cfg)),
    "spmv-csr": CatalogEntry(
        lambda cfg: spmv_csr.schedule_case("random", 2048, cfg)
    ),
    "spmv-jds": CatalogEntry(
        lambda cfg: spmv_jds.vectorization_case(2048, cfg)
    ),
    "stencil": CatalogEntry(
        lambda cfg: stencil.schedule_case((64, 64, 16), cfg)
    ),
    "cutcp": CatalogEntry(
        lambda cfg: cutcp.mixed_case("cpu", (32, 32, 16), 4000, cfg)
    ),
    "histogram": CatalogEntry(
        lambda cfg: histogram.swap_case("uniform", 1 << 16, cfg)
    ),
    "kmeans": CatalogEntry(lambda cfg: kmeans.schedule_case(8192, cfg)),
    "particle-filter": CatalogEntry(
        lambda cfg: particle_filter.placement_case(4000, cfg),
        device_kind="gpu",
    ),
}
