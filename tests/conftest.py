"""Shared fixtures: devices, configs, and a tiny synthetic kernel family.

The synthetic "axpy" kernel gives most tests a controllable pool: variants
differ only in access pattern (unit-stride vs strided), so which one is
faster is known by construction, outputs are exactly checkable, and pools
of any size can be assembled cheaply.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.device import make_cpu, make_gpu
from repro.kernel import (
    AccessPattern,
    ArgSpec,
    KernelIR,
    KernelSignature,
    KernelSpec,
    KernelVariant,
    Loop,
    LoopBound,
    MemoryAccess,
)
from repro.kernel.buffers import Buffer

#: Elements each axpy workload unit scales.
AXPY_UNIT = 64


@pytest.fixture
def config() -> ReproConfig:
    """Deterministic default configuration."""
    return ReproConfig()


@pytest.fixture
def quiet_config() -> ReproConfig:
    """Configuration with noise disabled (exact timing assertions)."""
    return ReproConfig().without_noise()


@pytest.fixture
def cpu(config):
    """Default CPU model."""
    return make_cpu(config)


@pytest.fixture
def gpu(config):
    """Default GPU model."""
    return make_gpu(config)


def axpy_signature() -> KernelSignature:
    """y = 2 * x over float32 vectors."""
    return KernelSignature(
        "axpy",
        (ArgSpec("x"), ArgSpec("y", is_output=True)),
    )


def axpy_executor(args, unit_start: int, unit_end: int) -> None:
    """Functional body shared by all synthetic variants."""
    x = args["x"].data
    y = args["y"].data
    y[unit_start * AXPY_UNIT : unit_end * AXPY_UNIT] = (
        2.0 * x[unit_start * AXPY_UNIT : unit_end * AXPY_UNIT]
    )


def make_axpy_variant(
    name: str,
    pattern: AccessPattern = AccessPattern.UNIT_STRIDE,
    trips: int = 16,
    wa_factor: int = 1,
    stride_bytes: int = 0,
    flops_per_trip: float = 32.0,
) -> KernelVariant:
    """One synthetic variant; STRIDED patterns are slower by construction."""
    if pattern is AccessPattern.STRIDED and stride_bytes == 0:
        stride_bytes = 64
    ir = KernelIR(
        loops=(Loop("k", LoopBound(static_trips=trips)),),
        accesses=(
            MemoryAccess(
                "x",
                False,
                pattern,
                4.0 * AXPY_UNIT / trips,
                loop="k",
                stride_bytes=stride_bytes,
            ),
            MemoryAccess(
                "y",
                True,
                AccessPattern.UNIT_STRIDE,
                4.0 * AXPY_UNIT / trips,
                loop="k",
            ),
        ),
        flops_per_trip=flops_per_trip,
        work_group_threads=AXPY_UNIT,
    )
    return KernelVariant(
        name=name,
        ir=ir,
        executor=axpy_executor,
        wa_factor=wa_factor,
        work_group_size=AXPY_UNIT,
    )


def make_axpy_args(units: int, config: ReproConfig) -> Dict[str, object]:
    """Fresh argument mapping for an axpy launch over ``units`` units."""
    rng = config.rng("axpy-args", units)
    x = rng.standard_normal(units * AXPY_UNIT).astype(np.float32)
    return {
        "x": Buffer("x", x, writable=False),
        "y": Buffer("y", np.zeros(units * AXPY_UNIT, dtype=np.float32)),
    }


def axpy_output_ok(args) -> bool:
    """Whole-vector correctness check."""
    return bool(np.allclose(args["y"].data, 2.0 * args["x"].data))


@pytest.fixture
def axpy_spec() -> KernelSpec:
    """Kernel spec for the synthetic family."""
    return KernelSpec(signature=axpy_signature())


def fast_slow_pool_build():
    """A two-variant pool where 'fast' beats 'slow' by construction."""
    from repro.compiler.variants import VariantPool

    return VariantPool(
        spec=KernelSpec(signature=axpy_signature()),
        variants=(
            make_axpy_variant("fast", AccessPattern.UNIT_STRIDE),
            make_axpy_variant("slow", AccessPattern.STRIDED),
        ),
    )


@pytest.fixture
def fast_slow_pool(axpy_spec):
    """Fixture form of :func:`fast_slow_pool_build`."""
    from repro.compiler.variants import VariantPool

    return VariantPool(
        spec=axpy_spec,
        variants=(
            make_axpy_variant("fast", AccessPattern.UNIT_STRIDE),
            make_axpy_variant("slow", AccessPattern.STRIDED),
        ),
    )


@pytest.fixture(autouse=True)
def _no_global_state_leaks():
    """Fail any test that leaves shared module state mutated.

    Cross-test pollution through these globals is the classic source of
    order-dependent flakiness, so the suite polices them instead of
    trusting every test to clean up:

    - ``repro.config.DEFAULT_CONFIG`` must stay the pristine defaults,
    - the shared ``NULL_TRACER`` must never be switched on,
    - ``engine.FAST_BATCH_THRESHOLD`` patches must be undone,
    - ``engine.VECTORIZED_BATCH`` patches must be undone,
    - the process-wide cost-kernel memo must be empty when a test starts
      (each test sees cold caches; the memo is cleared after every test).
    """
    import repro.config as config_mod
    from repro.device import engine as engine_mod
    from repro.device.cost import clear_cost_memo, cost_memo_stats
    from repro.obs.tracer import NULL_TRACER

    assert cost_memo_stats()["entries"] == 0, (
        "cost-kernel memo not empty at test start"
    )
    default_before = config_mod.DEFAULT_CONFIG
    threshold_before = engine_mod.FAST_BATCH_THRESHOLD
    vectorized_before = engine_mod.VECTORIZED_BATCH
    yield
    clear_cost_memo()
    assert config_mod.DEFAULT_CONFIG is default_before, (
        "test rebound repro.config.DEFAULT_CONFIG"
    )
    assert config_mod.DEFAULT_CONFIG == ReproConfig(), (
        "test mutated repro.config.DEFAULT_CONFIG in place"
    )
    assert NULL_TRACER.enabled is False, (
        "test enabled the shared NULL_TRACER"
    )
    assert engine_mod.FAST_BATCH_THRESHOLD == threshold_before, (
        "test left engine.FAST_BATCH_THRESHOLD patched"
    )
    assert engine_mod.VECTORIZED_BATCH == vectorized_before, (
        "test left engine.VECTORIZED_BATCH patched"
    )
