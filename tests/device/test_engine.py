"""Unit tests for the discrete-event execution engine."""

import numpy as np
import pytest

from repro.device.engine import (
    FAST_BATCH_THRESHOLD,
    ExecutionEngine,
    Priority,
)
from repro.errors import EngineError
from repro.kernel import AccessPattern, WorkRange
from tests.conftest import (
    AXPY_UNIT,
    axpy_output_ok,
    make_axpy_args,
    make_axpy_variant,
)


class TestBasicExecution:
    def test_submit_and_wait(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        variant = make_axpy_variant("v")
        args = make_axpy_args(32, config)
        task = engine.submit(variant, args, WorkRange(0, 32), measure=True)
        end = engine.wait(task)
        assert task.finished
        assert end > 0
        assert engine.now >= end
        assert axpy_output_ok(args)

    def test_functional_execution_at_submit(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        variant = make_axpy_variant("v")
        args = make_axpy_args(4, config)
        engine.submit(variant, args, WorkRange(0, 4))
        # Output is already written even before simulation advances.
        assert axpy_output_ok(args)

    def test_zero_work_task_completes_immediately(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        variant = make_axpy_variant("v")
        args = make_axpy_args(2, config)
        task = engine.submit(variant, args, WorkRange(1, 1))
        assert task.finished
        assert task.true_span_cycles == 0.0

    def test_launch_overhead_charged(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        before = engine.now
        variant = make_axpy_variant("v")
        args = make_axpy_args(1, config)
        task = engine.submit(variant, args, WorkRange(0, 1))
        assert engine.now > before  # host share
        assert task.arrival_time > engine.now  # device share still pending
        assert engine.launch_count == 1

    def test_unfinished_span_raises(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        variant = make_axpy_variant("v")
        args = make_axpy_args(8, config)
        task = engine.submit(variant, args, WorkRange(0, 8))
        with pytest.raises(EngineError):
            _ = task.true_span_cycles


class TestConcurrency:
    def test_parallel_speedup(self, cpu, config):
        """N units across 4 cores must beat serial by ~4x."""
        variant = make_axpy_variant("v", trips=200)
        args = make_axpy_args(64, config)

        engine = ExecutionEngine(cpu, config)
        task = engine.submit(variant, args, WorkRange(0, 64))
        engine.wait(task)
        parallel_span = task.true_span_cycles

        from repro.device.cost import CostModel

        serial = CostModel(cpu).launch_cycles(variant, args, WorkRange(0, 64))
        assert parallel_span < serial / 3.0
        assert parallel_span > serial / 4.5

    def test_utilization_high_for_saturating_batch(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        variant = make_axpy_variant("v", trips=100)
        args = make_axpy_args(64, config)
        engine.wait(engine.submit(variant, args, WorkRange(0, 64)))
        assert engine.utilization() > 0.8


class TestPriorities:
    def test_profiling_preempts_queued_batch_work(self, cpu, config):
        """A profiling task submitted after a long batch still gets units
        as they free up, ahead of remaining batch work."""
        engine = ExecutionEngine(cpu, config)
        slow = make_axpy_variant("slow", AccessPattern.STRIDED, trips=500)
        fast = make_axpy_variant("fast", trips=10)
        args = make_axpy_args(64, config)

        batch = engine.submit(slow, args, WorkRange(0, 60), priority=Priority.BATCH)
        profile = engine.submit(
            fast, args, WorkRange(60, 64), priority=Priority.PROFILING, measure=True
        )
        engine.wait(profile)
        engine.wait(batch)
        # The profiling task must finish well before the batch does.
        assert profile.last_end < batch.last_end

    def test_fifo_within_priority(self, cpu, quiet_config):
        engine = ExecutionEngine(cpu, quiet_config)
        variant = make_axpy_variant("v", trips=100)
        args = make_axpy_args(16, quiet_config)
        first = engine.submit(variant, args, WorkRange(0, 8))
        second = engine.submit(variant, args, WorkRange(8, 16))
        engine.wait_all([first, second])
        assert first.first_start <= second.first_start


class TestPolling:
    def test_poll_costs_query_latency(self, gpu, config):
        engine = ExecutionEngine(gpu, config)
        variant = make_axpy_variant("v", trips=2000)
        args = make_axpy_args(128, config)
        task = engine.submit(variant, args, WorkRange(0, 128))
        before = engine.now
        done = engine.poll(task)
        assert engine.now == pytest.approx(
            before + gpu.spec.host_query_latency
        )
        assert not done

    def test_poll_eventually_true(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        variant = make_axpy_variant("v", trips=10)
        args = make_axpy_args(4, config)
        task = engine.submit(variant, args, WorkRange(0, 4))
        for _ in range(100000):
            if engine.poll(task):
                break
        else:
            pytest.fail("task never completed")
        assert task.finished


class TestMeasurement:
    def test_measured_interval_close_to_true(self, cpu, quiet_config):
        engine = ExecutionEngine(cpu, quiet_config)
        variant = make_axpy_variant("v", trips=100)
        args = make_axpy_args(16, quiet_config)
        task = engine.submit(variant, args, WorkRange(0, 16), measure=True)
        engine.wait(task)
        assert task.measured is not None
        assert task.measured.measured_cycles == pytest.approx(
            task.true_span_cycles, rel=1e-6
        )

    def test_unmeasured_task_has_no_interval(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        variant = make_axpy_variant("v")
        args = make_axpy_args(4, config)
        task = engine.submit(variant, args, WorkRange(0, 4))
        engine.wait(task)
        assert task.measured is None


class TestFastBatch:
    def test_fast_batch_matches_event_path_roughly(self, cpu, quiet_config):
        """The analytic makespan must track the event-driven one."""
        variant = make_axpy_variant("v", trips=50)
        units = FAST_BATCH_THRESHOLD + 100
        args = make_axpy_args(units, quiet_config)

        fast_engine = ExecutionEngine(cpu, quiet_config)
        task = fast_engine.submit(variant, args, WorkRange(0, units))
        fast_engine.wait(task)
        fast_span = task.true_span_cycles

        # Split into two sub-threshold halves to force the event path.
        slow_engine = ExecutionEngine(cpu, quiet_config)
        first = slow_engine.submit(variant, args, WorkRange(0, units // 2))
        slow_engine.wait(first)
        second = slow_engine.submit(variant, args, WorkRange(units // 2, units))
        slow_engine.wait(second)
        event_span = second.last_end - first.first_start

        assert fast_span == pytest.approx(event_span, rel=0.05)


class TestBarrier:
    def test_barrier_drains_everything(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        variant = make_axpy_variant("v", trips=50)
        args = make_axpy_args(32, config)
        tasks = [
            engine.submit(variant, args, WorkRange(i * 8, (i + 1) * 8))
            for i in range(4)
        ]
        engine.barrier()
        assert all(task.finished for task in tasks)

    def test_host_compute_advances_clock(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        before = engine.now
        engine.host_compute(500.0)
        assert engine.now == before + 500.0
        with pytest.raises(EngineError):
            engine.host_compute(-1.0)
