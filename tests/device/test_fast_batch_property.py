"""Property: the fast-batch path is *exactly* the event path, cheaper.

``ExecutionEngine._try_fast_batch`` claims bit-identical unit free
times, task intervals, busy cycles, and measurements — not an
approximation.  This suite forces both paths over the same seeded
workload by shrinking/raising ``FAST_BATCH_THRESHOLD`` and asserts
equality down to the float.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, seed, settings, strategies as st  # noqa: E402

#: Replay locally with ``REPRO_CHAOS_SEED=<seed>`` (same convention as
#: the chaos suite; the CI flakiness job randomizes it).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
chaos_seed = seed(CHAOS_SEED)

from repro.config import ReproConfig  # noqa: E402
from repro.device import engine as engine_mod  # noqa: E402
from repro.device import make_cpu  # noqa: E402
from repro.device.engine import ExecutionEngine  # noqa: E402
from repro.kernel import AccessPattern, WorkRange  # noqa: E402
from tests.conftest import (  # noqa: E402
    make_axpy_args,
    make_axpy_variant,
)


def run_batch(config, units, trips, pattern, threshold):
    """One seeded single-task batch under a given fast-batch threshold.

    Returns ``(task, engine, y)``: the finished task, its engine (for
    clock/busy accounting), and the committed output vector.
    """
    variant = make_axpy_variant("v", pattern, trips=trips)
    args = make_axpy_args(units, config)
    engine = ExecutionEngine(make_cpu(config), config)
    original = engine_mod.FAST_BATCH_THRESHOLD
    engine_mod.FAST_BATCH_THRESHOLD = threshold
    try:
        task = engine.submit(variant, args, WorkRange(0, units), measure=True)
        engine.wait(task)
    finally:
        engine_mod.FAST_BATCH_THRESHOLD = original
    return task, engine, np.array(args["y"].data, copy=True)


@chaos_seed
@settings(max_examples=20, deadline=None)
@given(
    units=st.integers(min_value=12, max_value=160),
    trips=st.integers(min_value=8, max_value=64),
    strided=st.booleans(),
    noisy=st.booleans(),
    root_seed=st.integers(min_value=0, max_value=2**20),
)
def test_fast_batch_is_exact(units, trips, strided, noisy, root_seed):
    """Identical intervals, busy cycles, measurement, clock, and output."""
    config = ReproConfig(seed=root_seed)
    if not noisy:
        config = config.without_noise()
    pattern = AccessPattern.STRIDED if strided else AccessPattern.UNIT_STRIDE
    # Threshold 1 forces the fast path for the whole batch; an oversized
    # threshold forces the per-work-group event path.
    fast_task, fast_engine, fast_y = run_batch(
        config, units, trips, pattern, threshold=1
    )
    event_task, event_engine, event_y = run_batch(
        config, units, trips, pattern, threshold=10**9
    )

    assert fast_task.finished and event_task.finished
    assert fast_task.completed_work_groups == event_task.completed_work_groups
    assert fast_task.first_start == event_task.first_start
    assert fast_task.last_end == event_task.last_end
    assert fast_task.true_span_cycles == event_task.true_span_cycles
    assert fast_task.measured is not None and event_task.measured is not None
    assert (
        fast_task.measured.measured_cycles
        == event_task.measured.measured_cycles
    )
    assert fast_engine.now == event_engine.now
    assert fast_engine.utilization() == event_engine.utilization()
    assert np.array_equal(fast_y, event_y)


def test_fast_path_actually_engages(quiet_config):
    """Guard against vacuity: the shrunk threshold must take the fast
    path, and the oversized one must not."""
    taken = []

    class Probe(ExecutionEngine):
        def _try_fast_batch(self, horizon):
            result = super()._try_fast_batch(horizon)
            taken.append(result)
            return result

    variant = make_axpy_variant("v", trips=16)
    units = 64
    original = engine_mod.FAST_BATCH_THRESHOLD
    try:
        engine_mod.FAST_BATCH_THRESHOLD = 1
        engine = Probe(make_cpu(quiet_config), quiet_config)
        task = engine.submit(
            variant, make_axpy_args(units, quiet_config), WorkRange(0, units)
        )
        engine.wait(task)
        assert any(taken)

        taken.clear()
        engine_mod.FAST_BATCH_THRESHOLD = 10**9
        engine = Probe(make_cpu(quiet_config), quiet_config)
        task = engine.submit(
            variant, make_axpy_args(units, quiet_config), WorkRange(0, units)
        )
        engine.wait(task)
        assert not any(taken)
    finally:
        engine_mod.FAST_BATCH_THRESHOLD = original


def test_threshold_shrinks_via_monkeypatch(monkeypatch, quiet_config):
    """The documented test hook: monkeypatching the module constant is
    enough to steer the path (no engine-construction argument needed)."""
    monkeypatch.setattr(engine_mod, "FAST_BATCH_THRESHOLD", 2)
    variant = make_axpy_variant("v", trips=16)
    args = make_axpy_args(32, quiet_config)
    engine = ExecutionEngine(make_cpu(quiet_config), quiet_config)
    task = engine.submit(variant, args, WorkRange(0, 32), measure=True)
    engine.wait(task)
    assert task.finished
    assert task.measured is not None
    assert np.allclose(args["y"].data, 2.0 * args["x"].data)


def test_split_batches_take_the_generalized_fast_path(quiet_config):
    """Two interleaved tasks now drain through the fast path *and* agree
    exactly with the event path.

    The original fast path bailed out on multi-task queues; the
    generalized drain handles any ready mix (an unconditional greedy
    list schedule once arrivals are empty), so a shrunk threshold must
    engage it — and the result must still be bit-identical."""
    taken = []

    class Probe(ExecutionEngine):
        def _try_fast_batch(self, horizon):
            result = super()._try_fast_batch(horizon)
            taken.append(result)
            return result

    def run(engine_cls, threshold):
        original = engine_mod.FAST_BATCH_THRESHOLD
        try:
            engine_mod.FAST_BATCH_THRESHOLD = threshold
            engine = engine_cls(make_cpu(quiet_config), quiet_config)
            variant = make_axpy_variant("v", trips=16)
            args = make_axpy_args(64, quiet_config)
            first = engine.submit(variant, args, WorkRange(0, 32))
            second = engine.submit(variant, args, WorkRange(32, 64))
            engine.wait_all([first, second])
            return engine, first, second, args
        finally:
            engine_mod.FAST_BATCH_THRESHOLD = original

    fast = run(Probe, threshold=1)
    assert any(taken), "split batches no longer reach the fast path"
    event = run(ExecutionEngine, threshold=10**9)
    for fast_task, event_task in zip(fast[1:3], event[1:3]):
        assert fast_task.finished and event_task.finished
        assert fast_task.first_start == event_task.first_start
        assert fast_task.last_end == event_task.last_end
    assert fast[0].now == event[0].now
    assert fast[0].utilization() == event[0].utilization()
    assert np.allclose(fast[3]["y"].data, 2.0 * fast[3]["x"].data)
