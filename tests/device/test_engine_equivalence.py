"""Equivalence harness: event, fast-batch, and vectorized paths agree.

Extends ``test_fast_batch_property``: where that suite drives one
single-task batch, this one runs whole *scenarios* — contended
mixed-priority queues, interleaved host polls and waits, deadline
waits with injected hangs, latency faults, noise on and off — through
each of the engine's three scheduling paths and asserts exact equality
of every observable: task intervals, measured cycles, host clock,
utilization, unit free times, launch counts, trace events, and output
buffers.  Zero tolerance: comparisons are ``==`` / ``array_equal``,
never ``allclose`` — the analytic paths claim bit-identity, not
approximation.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, seed, settings, strategies as st  # noqa: E402

#: Replay locally with ``REPRO_CHAOS_SEED=<seed>`` (same convention as
#: the chaos suite; the CI flakiness job randomizes it).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
chaos_seed = seed(CHAOS_SEED)

from repro.config import ReproConfig  # noqa: E402
from repro.core.runtime import DySelRuntime  # noqa: E402
from repro.device import engine as engine_mod  # noqa: E402
from repro.device import make_cpu  # noqa: E402
from repro.device.engine import ExecutionEngine, Priority  # noqa: E402
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultRule  # noqa: E402
from repro.kernel import AccessPattern, WorkRange  # noqa: E402
from repro.modes import OrchestrationFlow, ProfilingMode  # noqa: E402
from repro.obs import reconcile  # noqa: E402
from tests.conftest import (  # noqa: E402
    make_axpy_args,
    make_axpy_variant,
)

#: The three scheduling paths, as (FAST_BATCH_THRESHOLD, VECTORIZED_BATCH)
#: forcings.  ``event`` never reaches the analytic drain; ``fast`` drains
#: analytically but group-by-group; ``vectorized`` additionally collapses
#: equal-duration batches into the numpy closed form.
PATHS = {
    "event": (10**9, False),
    "fast": (1, False),
    "vectorized": (1, True),
}


class _ForcedPath:
    """Context manager pinning the engine's path-selection constants."""

    def __init__(self, threshold: int, vectorized: bool) -> None:
        self.forced = (threshold, vectorized)

    def __enter__(self):
        self.saved = (
            engine_mod.FAST_BATCH_THRESHOLD,
            engine_mod.VECTORIZED_BATCH,
        )
        engine_mod.FAST_BATCH_THRESHOLD, engine_mod.VECTORIZED_BATCH = (
            self.forced
        )
        return self

    def __exit__(self, *exc):
        engine_mod.FAST_BATCH_THRESHOLD, engine_mod.VECTORIZED_BATCH = (
            self.saved
        )
        return False


def snapshot(engine, tasks, argsets):
    """Every observable a scenario exposes, as comparable values."""
    return {
        "tasks": [
            (
                task.first_start,
                task.last_end,
                task.completed_work_groups,
                task.total_work_groups,
                task.finished,
                None
                if task.measured is None
                else (
                    task.measured.true_cycles,
                    task.measured.measured_cycles,
                ),
            )
            for task in tasks
        ],
        "now": engine.now,
        "utilization": engine.utilization(),
        "unit_heap": sorted(engine._unit_heap),
        "launches": engine.launch_count,
        "outputs": [np.array(args["y"].data, copy=True) for args in argsets],
    }


def assert_snapshots_equal(reference, other, label):
    """Exact equality of two scenario snapshots."""
    for key in ("tasks", "now", "utilization", "unit_heap", "launches"):
        assert reference[key] == other[key], (label, key)
    for ref_y, other_y in zip(reference["outputs"], other["outputs"]):
        assert np.array_equal(ref_y, other_y), (label, "outputs")


def run_scenario(config, plan, threshold, vectorized, engine_cls=ExecutionEngine):
    """Drive one submit/poll/wait scenario under a forced path."""
    with _ForcedPath(threshold, vectorized):
        engine = engine_cls(make_cpu(config), config)
        tasks, argsets = [], []
        for step in plan:
            pattern = (
                AccessPattern.STRIDED
                if step["strided"]
                else AccessPattern.UNIT_STRIDE
            )
            variant = make_axpy_variant("v", pattern, trips=step["trips"])
            args = make_axpy_args(step["units"], config)
            task = engine.submit(
                variant,
                args,
                WorkRange(0, step["units"]),
                priority=step["priority"],
                measure=step["measure"],
            )
            tasks.append(task)
            argsets.append(args)
            target = tasks[step["target"] % len(tasks)]
            if step["sync"] == "poll":
                engine.poll(target)
            elif step["sync"] == "wait":
                engine.wait(target)
        engine.wait_all(tasks)
        engine.barrier()
        return snapshot(engine, tasks, argsets)


@st.composite
def scenarios(draw):
    """A short seeded program of submits and host-side sync points."""
    steps = draw(st.integers(min_value=2, max_value=5))
    plan = []
    for _ in range(steps):
        plan.append(
            {
                "units": draw(st.integers(min_value=4, max_value=48)),
                "trips": draw(st.integers(min_value=8, max_value=24)),
                "priority": draw(st.sampled_from(list(Priority))),
                "measure": draw(st.booleans()),
                "strided": draw(st.booleans()),
                "sync": draw(st.sampled_from(["none", "none", "poll", "wait"])),
                "target": draw(st.integers(min_value=0, max_value=steps - 1)),
            }
        )
    return plan


@chaos_seed
@settings(max_examples=25, deadline=None)
@given(
    plan=scenarios(),
    noisy=st.booleans(),
    root_seed=st.integers(min_value=0, max_value=2**20),
)
def test_scenarios_agree_across_all_paths(plan, noisy, root_seed):
    """Contended mixed-priority scenarios are path-invariant, exactly."""
    config = ReproConfig(seed=root_seed)
    if not noisy:
        config = config.without_noise()
    reference = run_scenario(config, plan, *PATHS["event"])
    for label in ("fast", "vectorized"):
        result = run_scenario(config, plan, *PATHS[label])
        assert_snapshots_equal(reference, result, label)


@pytest.mark.parametrize("noisy", [False, True])
def test_deadline_waits_and_hang_cleanup_agree(noisy):
    """A hung task, deadline expiry, and cancel leave identical state."""
    config = ReproConfig(seed=7)
    if not noisy:
        config = config.without_noise()

    def run(threshold, vectorized):
        with _ForcedPath(threshold, vectorized):
            engine = ExecutionEngine(make_cpu(config), config)
            plan = FaultPlan(
                [FaultRule(kind=FaultKind.HANG, variant="hung")], seed=3
            )
            engine.injector = FaultInjector(plan)
            hung_variant = make_axpy_variant("hung", trips=16)
            good_variant = make_axpy_variant("good", trips=16)
            hung_args = make_axpy_args(24, config)
            good_args = make_axpy_args(24, config)
            hung = engine.submit(
                hung_variant, hung_args, WorkRange(0, 24), measure=True
            )
            good = engine.submit(
                good_variant,
                good_args,
                WorkRange(0, 24),
                priority=Priority.EAGER,
                measure=True,
            )
            finished = engine.wait_deadline(hung, deadline=engine.now + 5000.0)
            assert not finished
            engine.cancel(hung)
            engine.wait(good)
            engine.barrier()
            return snapshot(engine, [hung, good], [hung_args, good_args])

    reference = run(*PATHS["event"])
    for label in ("fast", "vectorized"):
        assert_snapshots_equal(reference, run(*PATHS[label]), label)


@pytest.mark.parametrize("noisy", [False, True])
def test_latency_faults_agree(noisy):
    """Injected latency scaling perturbs all three paths identically."""
    config = ReproConfig(seed=11)
    if not noisy:
        config = config.without_noise()
    plan = [
        {
            "units": 32,
            "trips": 16,
            "priority": Priority.BATCH,
            "measure": True,
            "strided": False,
            "sync": "none",
            "target": 0,
        }
    ] * 3

    def run(threshold, vectorized):
        with _ForcedPath(threshold, vectorized):
            engine = ExecutionEngine(make_cpu(config), config)
            engine.injector = FaultInjector(
                FaultPlan(
                    [
                        FaultRule(
                            kind=FaultKind.LATENCY,
                            magnitude=3.0,
                            after=1,
                            count=1,
                        )
                    ],
                    seed=5,
                )
            )
            tasks, argsets = [], []
            for step in plan:
                variant = make_axpy_variant("v", trips=step["trips"])
                args = make_axpy_args(step["units"], config)
                tasks.append(
                    engine.submit(
                        variant,
                        args,
                        WorkRange(0, step["units"]),
                        measure=True,
                    )
                )
                argsets.append(args)
            engine.wait_all(tasks)
            engine.barrier()
            return snapshot(engine, tasks, argsets)

    reference = run(*PATHS["event"])
    for label in ("fast", "vectorized"):
        assert_snapshots_equal(reference, run(*PATHS[label]), label)


@pytest.mark.parametrize(
    "mode", [ProfilingMode.FULLY, ProfilingMode.HYBRID, ProfilingMode.SWAP]
)
@pytest.mark.parametrize(
    "flow", [OrchestrationFlow.SYNC, OrchestrationFlow.ASYNC]
)
def test_traced_launches_identical_and_reconcile(fast_slow_pool, mode, flow):
    """Full runtime launches emit identical, reconcile-clean traces.

    The trace is the richest observable the stack exposes — every host
    op, profile span, and selection decision with its cycle stamps — so
    identical event streams across paths subsume interval equality, and
    ``reconcile`` proves each stream is internally consistent too.
    """
    units = 192

    def run(threshold, vectorized):
        with _ForcedPath(threshold, vectorized):
            config = dataclasses.replace(ReproConfig(), trace=True)
            runtime = DySelRuntime(make_cpu(config), config)
            runtime.register_pool(fast_slow_pool)
            args = make_axpy_args(units, config)
            result = runtime.launch_kernel(
                "axpy", args, units, mode=mode, flow=flow
            )
            events = [
                (
                    event.kind,
                    event.name,
                    event.start_cycles,
                    event.end_cycles,
                    tuple(sorted((event.args or {}).items())),
                )
                for event in runtime.tracer.events
            ]
            problems = reconcile(
                runtime.tracer.events,
                elapsed_cycles=result.elapsed_cycles,
                workload_units=units,
            )
            return result, events, problems, np.array(
                args["y"].data, copy=True
            )

    ref_result, ref_events, ref_problems, ref_y = run(*PATHS["event"])
    assert ref_problems == []
    for label in ("fast", "vectorized"):
        result, events, problems, y = run(*PATHS[label])
        assert problems == [], label
        assert events == ref_events, label
        assert result.elapsed_cycles == ref_result.elapsed_cycles, label
        assert result.selected == ref_result.selected, label
        assert np.array_equal(y, ref_y), label


def test_vectorized_closed_form_engages(quiet_config):
    """Vacuity guard: the forcings exercise the machinery they claim to.

    Under the vectorized forcing the analytic drain *and* the numpy
    closed form must both fire on an uncontended equal-duration batch;
    under the fast forcing only the drain fires; under the event forcing
    neither does.
    """
    drained, collapsed = [], []

    class Probe(ExecutionEngine):
        def _try_fast_batch(self, horizon):
            result = super()._try_fast_batch(horizon)
            if result:
                drained.append(True)
            return result

        def _vector_rounds(self, arrival, d, count, busy):
            collapsed.append(True)
            return super()._vector_rounds(arrival, d, count, busy)

    def run(threshold, vectorized):
        drained.clear()
        collapsed.clear()
        with _ForcedPath(threshold, vectorized):
            variant = make_axpy_variant("v", trips=16)
            args = make_axpy_args(64, quiet_config)
            engine = Probe(make_cpu(quiet_config), quiet_config)
            engine.wait(
                engine.submit(variant, args, WorkRange(0, 64), measure=True)
            )
        return bool(drained), bool(collapsed)

    assert run(*PATHS["vectorized"]) == (True, True)
    assert run(*PATHS["fast"]) == (True, False)
    assert run(*PATHS["event"]) == (False, False)
