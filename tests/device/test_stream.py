"""Unit tests for CUDA-stream-like submission queues."""

import pytest

from repro.device.engine import ExecutionEngine
from repro.device.stream import Stream
from repro.errors import StreamError
from repro.kernel import WorkRange
from tests.conftest import make_axpy_args, make_axpy_variant


class TestStream:
    def test_submit_and_synchronize(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        stream = Stream(engine, "s0")
        variant = make_axpy_variant("v")
        args = make_axpy_args(8, config)
        task = stream.submit(variant, args, WorkRange(0, 8))
        stream.synchronize()
        assert task.finished

    def test_query_costs_latency_and_resolves(self, cpu, config):
        engine = ExecutionEngine(cpu, config)
        stream = Stream(engine, "s0")
        variant = make_axpy_variant("v", trips=100)
        args = make_axpy_args(16, config)
        stream.submit(variant, args, WorkRange(0, 16))
        before = engine.now
        stream.query()
        assert engine.now > before
        for _ in range(100000):
            if stream.query():
                break
        else:
            pytest.fail("stream never drained")

    def test_empty_stream_query_true(self, cpu, config):
        stream = Stream(ExecutionEngine(cpu, config), "s0")
        assert stream.query()

    def test_destroyed_stream_rejects_use(self, cpu, config):
        stream = Stream(ExecutionEngine(cpu, config), "s0")
        stream.destroy()
        with pytest.raises(StreamError):
            stream.query()
        with pytest.raises(StreamError):
            stream.destroy()

    def test_requires_name(self, cpu, config):
        with pytest.raises(StreamError):
            Stream(ExecutionEngine(cpu, config), "")
