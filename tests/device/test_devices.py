"""Unit tests for the CPU and GPU device models' architecture rules."""

import numpy as np
import pytest

from repro.device import make_cpu, make_gpu
from repro.errors import DeviceError
from repro.device.base import DeviceSpec
from repro.kernel import AccessPattern, KernelIR, Loop, LoopBound, MemoryAccess
from repro.kernel.buffers import MemorySpace


def scalar(x) -> float:
    return float(np.asarray(x).reshape(-1)[0])


class TestSpecs:
    def test_cpu_defaults(self, cpu):
        assert cpu.kind == "cpu"
        assert cpu.spec.compute_units == 4
        assert cpu.spec.max_vector_width == 8

    def test_gpu_defaults(self, gpu):
        assert gpu.kind == "gpu"
        assert gpu.spec.compute_units == 13
        assert gpu.spec.host_query_latency > cpu_query_latency(gpu)

    def test_spec_validation(self):
        with pytest.raises(DeviceError):
            DeviceSpec(
                name="bad",
                compute_units=0,
                clock_ghz=1.0,
                flops_per_cycle=1.0,
                max_vector_width=1,
                workgroup_dispatch_overhead=0.0,
                kernel_launch_overhead=0.0,
                host_query_latency=0.0,
                loop_overhead_cycles=0.0,
            )

    def test_cycles_to_seconds(self, cpu):
        assert cpu.spec.cycles_to_seconds(3.6e9) == pytest.approx(1.0)


def cpu_query_latency(gpu) -> float:
    from repro.device.cpu import make_cpu as mk

    return mk(gpu.config).spec.host_query_latency


def flat_ir(**overrides):
    defaults = dict(
        loops=(Loop("k", LoopBound(static_trips=10)),),
        accesses=(),
        flops_per_trip=100.0,
    )
    defaults.update(overrides)
    return KernelIR(**defaults)


class TestCpuComputeRules:
    def test_vector_scaling(self, cpu):
        flops = np.array([8000.0])
        scalar_cycles = cpu.compute_cycles(flat_ir(), flops, 64)
        wide = cpu.compute_cycles(flat_ir(vector_width=8), flops, 64)
        assert scalar(scalar_cycles) / scalar(wide) == pytest.approx(8.0)

    def test_divergence_mask_overhead_grows_with_width(self, cpu):
        flops = np.array([8000.0])
        w4 = cpu.compute_cycles(flat_ir(vector_width=4, divergence=0.5), flops, 64)
        w8 = cpu.compute_cycles(flat_ir(vector_width=8, divergence=0.5), flops, 64)
        # 8-way is still faster, but by less than 2x (mask overhead).
        assert scalar(w4) / scalar(w8) < 2.0

    def test_scratchpad_costs_on_cpu(self, cpu):
        assert cpu.scratchpad_cycles_per_group(flat_ir()) == 0.0
        cost = cpu.scratchpad_cycles_per_group(
            flat_ir(scratchpad_bytes=1024, uses_barrier=True)
        )
        assert cost > 0.0


class TestGpuComputeRules:
    def test_narrow_workgroup_underutilizes(self, gpu):
        flops = np.array([8000.0])
        wide = gpu.compute_cycles(flat_ir(), flops, 128)
        narrow = gpu.compute_cycles(flat_ir(), flops, 8)
        assert scalar(narrow) > scalar(wide)

    def test_divergence_penalty(self, gpu):
        flops = np.array([8000.0])
        clean = gpu.compute_cycles(flat_ir(), flops, 128)
        divergent = gpu.compute_cycles(flat_ir(divergence=1.0), flops, 128)
        assert scalar(divergent) == pytest.approx(2.0 * scalar(clean))

    def test_scratchpad_cheap_on_gpu(self, cpu, gpu):
        ir = flat_ir(scratchpad_bytes=4096, uses_barrier=True)
        assert gpu.scratchpad_cycles_per_group(ir) < cpu.scratchpad_cycles_per_group(ir)


def access(pattern, stride=0, **kw):
    return MemoryAccess("x", False, pattern, 4.0, loop="k", stride_bytes=stride, **kw)


class TestGpuMemoryRules:
    def _cost(self, gpu, pattern, space=MemorySpace.GLOBAL, ir=None, stride=0):
        ir = ir or flat_ir()
        a = access(pattern, stride)
        useful = np.array([4096.0])
        ws = np.array([4096.0])
        return gpu.memory.access_cost(a, useful, ws, 1e9, ir, space)

    def test_coalesced_beats_uncoalesced(self, gpu):
        coalesced = self._cost(gpu, AccessPattern.COALESCED)
        uncoalesced = self._cost(gpu, AccessPattern.UNIT_STRIDE)
        assert scalar(uncoalesced.bandwidth_cycles) > scalar(
            coalesced.bandwidth_cycles
        )

    def test_texture_gather_beats_global(self, gpu):
        glob = self._cost(gpu, AccessPattern.GATHER)
        tex = self._cost(gpu, AccessPattern.GATHER, MemorySpace.TEXTURE)
        assert scalar(tex.latency_cycles) < scalar(glob.latency_cycles)

    def test_constant_gather_worst(self, gpu):
        glob = self._cost(gpu, AccessPattern.GATHER)
        const = self._cost(gpu, AccessPattern.GATHER, MemorySpace.CONSTANT)
        assert scalar(const.latency_cycles) > scalar(glob.latency_cycles)

    def test_texture_streams_pay_bandwidth(self, gpu):
        glob = self._cost(gpu, AccessPattern.COALESCED)
        tex = self._cost(gpu, AccessPattern.COALESCED, MemorySpace.TEXTURE)
        assert scalar(tex.bandwidth_cycles) > scalar(glob.bandwidth_cycles)

    def test_constant_broadcast_near_free(self, gpu):
        glob = self._cost(gpu, AccessPattern.BROADCAST)
        const = self._cost(gpu, AccessPattern.BROADCAST, MemorySpace.CONSTANT)
        assert scalar(const.bandwidth_cycles) < scalar(glob.bandwidth_cycles)

    def test_prefetch_helps_global_not_texture(self, gpu):
        pref = flat_ir(prefetch=True)
        glob_plain = self._cost(gpu, AccessPattern.GATHER)
        glob_pref = self._cost(gpu, AccessPattern.GATHER, ir=pref)
        tex_plain = self._cost(gpu, AccessPattern.GATHER, MemorySpace.TEXTURE)
        tex_pref = self._cost(gpu, AccessPattern.GATHER, MemorySpace.TEXTURE, ir=pref)
        glob_gain = scalar(glob_plain.latency_cycles) / scalar(glob_pref.latency_cycles)
        tex_gain = scalar(tex_plain.latency_cycles) / scalar(tex_pref.latency_cycles)
        assert glob_gain > tex_gain

    def test_dynamic_stride_coalesces_short_rows(self, gpu):
        a = access(AccessPattern.UNIT_STRIDE)
        useful = np.array([4096.0])
        ws = np.array([4096.0])
        short = gpu.memory.access_cost(
            a, useful, ws, 1e9, flat_ir(), MemorySpace.GLOBAL,
            dynamic_stride=np.array([4.0]),
        )
        long = gpu.memory.access_cost(
            a, useful, ws, 1e9, flat_ir(), MemorySpace.GLOBAL,
            dynamic_stride=np.array([4096.0]),
        )
        assert scalar(short.bandwidth_cycles) < scalar(long.bandwidth_cycles)


class TestCpuMemoryRules:
    def _cost(self, cpu, pattern, ir=None, stride=0):
        ir = ir or flat_ir()
        a = access(pattern, stride)
        useful = np.array([4096.0])
        ws = np.array([4096.0])
        return cpu.memory.access_cost(
            a, useful, ws, 1e9, ir, MemorySpace.GLOBAL
        )

    def test_unit_stride_cheapest_stream(self, cpu):
        unit = self._cost(cpu, AccessPattern.UNIT_STRIDE)
        strided = self._cost(cpu, AccessPattern.STRIDED, stride=64)
        assert scalar(strided.bandwidth_cycles) > scalar(unit.bandwidth_cycles)

    def test_line_sized_stride_exposes_latency(self, cpu):
        strided = self._cost(cpu, AccessPattern.STRIDED, stride=256)
        assert scalar(strided.latency_cycles) > 0

    def test_small_stride_no_latency(self, cpu):
        strided = self._cost(cpu, AccessPattern.STRIDED, stride=8)
        assert scalar(strided.latency_cycles) == 0.0

    def test_vector_pack_penalty_on_gathers(self, cpu):
        plain = self._cost(cpu, AccessPattern.GATHER)
        packed = self._cost(
            cpu, AccessPattern.GATHER, ir=flat_ir(vector_width=8, divergence=0.3)
        )
        assert scalar(packed.latency_cycles) > scalar(plain.latency_cycles)

    def test_broadcast_near_free(self, cpu):
        broadcast = self._cost(cpu, AccessPattern.BROADCAST)
        unit = self._cost(cpu, AccessPattern.UNIT_STRIDE)
        assert scalar(broadcast.bandwidth_cycles) < scalar(unit.bandwidth_cycles)
