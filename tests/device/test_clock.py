"""Unit tests for the noise clock (jitter + timer quantization)."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.device.clock import NoisyClock


class TestJitter:
    def test_zero_jitter_is_identity(self):
        clock = NoisyClock(ReproConfig().without_noise(), "dev")
        durations = np.array([10.0, 20.0, 30.0])
        assert (clock.jitter_durations(durations) == durations).all()

    def test_jitter_perturbs_multiplicatively(self):
        clock = NoisyClock(ReproConfig().with_noise(execution_jitter=0.1), "dev")
        durations = np.full(1000, 100.0)
        jittered = clock.jitter_durations(durations)
        assert not np.allclose(jittered, durations)
        # Lognormal with sigma=0.1: values stay within a few sigma.
        assert jittered.min() > 50.0
        assert jittered.max() < 200.0
        # Median multiplier is ~1.
        assert abs(np.median(jittered) - 100.0) < 5.0

    def test_deterministic_per_seed(self):
        config = ReproConfig()
        a = NoisyClock(config, "dev").jitter_durations(np.full(10, 5.0))
        b = NoisyClock(config, "dev").jitter_durations(np.full(10, 5.0))
        assert (a == b).all()

    def test_independent_streams_per_device(self):
        config = ReproConfig()
        a = NoisyClock(config, "dev-a").jitter_durations(np.full(10, 5.0))
        b = NoisyClock(config, "dev-b").jitter_durations(np.full(10, 5.0))
        assert not (a == b).all()

    def test_empty_input(self):
        clock = NoisyClock(ReproConfig(), "dev")
        assert clock.jitter_durations(np.zeros(0)).size == 0


class TestTimer:
    def test_quantization_error_bounded(self):
        config = ReproConfig().with_noise(timer_quantum=100.0, execution_jitter=0.0)
        clock = NoisyClock(config, "dev")
        for true in (5.0, 73.0, 250.0, 10000.0):
            interval = clock.read_interval(true)
            assert abs(interval.measured_cycles - true) <= 100.0
            assert interval.measured_cycles % 100.0 == 0.0

    def test_fine_timer_is_accurate(self):
        config = ReproConfig().without_noise()
        clock = NoisyClock(config, "dev")
        interval = clock.read_interval(1234.5)
        assert interval.measured_cycles == pytest.approx(1234.5, abs=1e-6)

    def test_negative_interval_rejected(self):
        clock = NoisyClock(ReproConfig(), "dev")
        with pytest.raises(ValueError):
            clock.read_interval(-1.0)

    def test_tiny_intervals_lose_resolution(self):
        """The §3.3 motivation: coarse timers cannot rank tiny intervals."""
        config = ReproConfig().with_noise(timer_quantum=1000.0)
        clock = NoisyClock(config, "dev")
        readings = {clock.read_interval(10.0).measured_cycles for _ in range(50)}
        # With a 1000-cycle quantum a 10-cycle interval reads 0 or 1000.
        assert readings <= {0.0, 1000.0}


class TestBatchedReads:
    """``read_intervals`` must be bit-identical to sequential reads.

    The engine's analytic drain defers measurements and flushes them
    through one batched call; if the batch consumed the RNG differently
    from per-task reads, measurement noise would distinguish the drain
    from the event path.
    """

    def values(self, quantum):
        # Mix of ordinary intervals and ones on the exact branch (far
        # above the quantum), which must consume no RNG draws.
        return [5.0, 73.0, quantum * 2**41, 250.0, 0.0, quantum * 2**50, 9.5]

    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_matches_sequential_reads(self, seed):
        config = ReproConfig(seed=seed).with_noise(timer_quantum=100.0)
        values = self.values(100.0)
        batch = NoisyClock(config, "dev").read_intervals(values)
        # Sequential reference: one clock consuming draws value by value.
        reference_clock = NoisyClock(config, "dev")
        sequential = [reference_clock.read_interval(v) for v in values]
        assert batch == sequential

    def test_rng_stream_continues_identically(self):
        """A batched read leaves the RNG exactly where scalar reads do."""
        config = ReproConfig().with_noise(timer_quantum=100.0)
        values = self.values(100.0)
        batched_clock = NoisyClock(config, "dev")
        batched_clock.read_intervals(values)
        scalar_clock = NoisyClock(config, "dev")
        for v in values:
            scalar_clock.read_interval(v)
        follow = [3.0, 42.0, 9999.0]
        assert batched_clock.read_intervals(follow) == [
            scalar_clock.read_interval(v) for v in follow
        ]

    def test_empty_batch_draws_nothing(self):
        config = ReproConfig().with_noise(timer_quantum=100.0)
        clock = NoisyClock(config, "dev")
        assert clock.read_intervals([]) == []
        assert (
            clock.read_interval(5.0)
            == NoisyClock(config, "dev").read_interval(5.0)
        )

    def test_negative_entry_rejected(self):
        clock = NoisyClock(ReproConfig(), "dev")
        with pytest.raises(ValueError, match="negative"):
            clock.read_intervals([5.0, -2.0, 7.0])
