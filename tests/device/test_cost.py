"""Unit tests for the mechanistic cost model."""

import numpy as np
import pytest

from repro.device.cost import CostModel
from repro.kernel import AccessPattern, WorkRange
from repro.kernel.buffers import MemorySpace
from tests.conftest import make_axpy_args, make_axpy_variant


class TestWorkgroupCycles:
    def test_positive_and_shaped(self, cpu, config):
        model = CostModel(cpu)
        variant = make_axpy_variant("v")
        args = make_axpy_args(16, config)
        cycles = model.workgroup_cycles(variant, args, WorkRange(0, 16))
        assert cycles.shape == (16,)
        assert (cycles > 0).all()

    def test_empty_range(self, cpu, config):
        model = CostModel(cpu)
        variant = make_axpy_variant("v")
        args = make_axpy_args(4, config)
        assert model.workgroup_cycles(variant, args, WorkRange(2, 2)).size == 0

    def test_coarsening_aggregates_units(self, cpu, config):
        model = CostModel(cpu)
        fine = make_axpy_variant("fine", wa_factor=1)
        coarse = make_axpy_variant("coarse", wa_factor=4)
        args = make_axpy_args(16, config)
        fine_cycles = model.workgroup_cycles(fine, args, WorkRange(0, 16))
        coarse_cycles = model.workgroup_cycles(coarse, args, WorkRange(0, 16))
        assert coarse_cycles.shape == (4,)
        # Coarse groups carry 4 units of work but only one dispatch
        # overhead, so 4 * fine > coarse > sum-of-4-units-minus-overheads.
        assert coarse_cycles.sum() < fine_cycles.sum()
        dispatch = cpu.spec.workgroup_dispatch_overhead
        assert coarse_cycles.sum() == pytest.approx(
            fine_cycles.sum() - 12 * dispatch, rel=0.01
        )

    def test_strided_slower_than_unit(self, cpu, config):
        model = CostModel(cpu)
        fast = make_axpy_variant("fast", AccessPattern.UNIT_STRIDE)
        slow = make_axpy_variant("slow", AccessPattern.STRIDED)
        args = make_axpy_args(8, config)
        fast_total = model.launch_cycles(fast, args, WorkRange(0, 8))
        slow_total = model.launch_cycles(slow, args, WorkRange(0, 8))
        assert slow_total > fast_total

    def test_more_flops_cost_more(self, cpu, config):
        model = CostModel(cpu)
        light = make_axpy_variant("light", flops_per_trip=8.0)
        heavy = make_axpy_variant("heavy", flops_per_trip=8000.0)
        args = make_axpy_args(4, config)
        assert model.launch_cycles(heavy, args, WorkRange(0, 4)) > model.launch_cycles(
            light, args, WorkRange(0, 4)
        )


class TestVectorization:
    def test_vector_width_speeds_up_regular_compute(self, cpu, config):
        import dataclasses

        model = CostModel(cpu)
        scalar = make_axpy_variant("s", flops_per_trip=4000.0)
        vector = dataclasses.replace(
            scalar, name="v", ir=scalar.ir.with_(vector_width=8)
        )
        args = make_axpy_args(4, config)
        assert model.launch_cycles(vector, args, WorkRange(0, 4)) < model.launch_cycles(
            scalar, args, WorkRange(0, 4)
        )

    def test_divergence_penalizes_wide_vectors(self, cpu, config):
        import dataclasses

        model = CostModel(cpu)
        base = make_axpy_variant("b", flops_per_trip=4000.0)
        narrow = dataclasses.replace(
            base, name="n", ir=base.ir.with_(vector_width=4, divergence=0.5)
        )
        wide = dataclasses.replace(
            base, name="w", ir=base.ir.with_(vector_width=8, divergence=0.5)
        )
        args = make_axpy_args(4, config)
        narrow_cost = model.launch_cycles(narrow, args, WorkRange(0, 4))
        wide_cost = model.launch_cycles(wide, args, WorkRange(0, 4))
        # Wide is still faster on pure compute here, but by less than 2x.
        assert wide_cost < narrow_cost
        assert narrow_cost / wide_cost < 2.0


class TestPlacementEffects:
    def test_texture_helps_gpu_gathers(self, gpu, config):
        import dataclasses

        model = CostModel(gpu)
        base = make_axpy_variant("g", AccessPattern.GATHER)
        placed = dataclasses.replace(
            base,
            name="t",
            ir=base.ir.with_(placements=(("x", MemorySpace.TEXTURE.value),)),
        )
        args = make_axpy_args(8, config)
        assert model.launch_cycles(placed, args, WorkRange(0, 8)) < model.launch_cycles(
            base, args, WorkRange(0, 8)
        )

    def test_constant_hurts_gpu_gathers(self, gpu, config):
        import dataclasses

        model = CostModel(gpu)
        base = make_axpy_variant("g", AccessPattern.GATHER)
        placed = dataclasses.replace(
            base,
            name="c",
            ir=base.ir.with_(placements=(("x", MemorySpace.CONSTANT.value),)),
        )
        args = make_axpy_args(8, config)
        assert model.launch_cycles(placed, args, WorkRange(0, 8)) > model.launch_cycles(
            base, args, WorkRange(0, 8)
        )

    def test_placement_is_noop_on_cpu(self, cpu, config):
        import dataclasses

        model = CostModel(cpu)
        base = make_axpy_variant("g", AccessPattern.GATHER)
        placed = dataclasses.replace(
            base,
            name="t",
            ir=base.ir.with_(placements=(("x", MemorySpace.TEXTURE.value),)),
        )
        args = make_axpy_args(8, config)
        assert model.launch_cycles(placed, args, WorkRange(0, 8)) == pytest.approx(
            model.launch_cycles(base, args, WorkRange(0, 8))
        )


class TestBookkeeping:
    def test_unroll_reduces_cost(self, cpu, config):
        import dataclasses

        model = CostModel(cpu)
        base = make_axpy_variant("b", trips=1000)
        unrolled = dataclasses.replace(
            base, name="u", ir=base.ir.with_(unroll_factor=4)
        )
        args = make_axpy_args(4, config)
        assert model.launch_cycles(unrolled, args, WorkRange(0, 4)) < model.launch_cycles(
            base, args, WorkRange(0, 4)
        )

    def test_data_dependent_bounds_reach_costs(self, cpu, config):
        """Units with more work must cost more (the productive-profiling
        prerequisite: slice costs reflect slice data)."""
        from repro.kernel import KernelIR, Loop, LoopBound, MemoryAccess
        import dataclasses

        base = make_axpy_variant("d")
        dyn_ir = KernelIR(
            loops=(
                Loop(
                    "k",
                    LoopBound(
                        evaluator=lambda args, ids: (ids.astype(float) + 1) * 10
                    ),
                ),
            ),
            accesses=(
                MemoryAccess("x", False, AccessPattern.UNIT_STRIDE, 64.0, loop="k"),
            ),
            flops_per_trip=16.0,
        )
        variant = dataclasses.replace(base, ir=dyn_ir)
        model = CostModel(cpu)
        args = make_axpy_args(8, config)
        cycles = model.workgroup_cycles(variant, args, WorkRange(0, 8))
        assert (np.diff(cycles) > 0).all()
