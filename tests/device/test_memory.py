"""Unit tests for the cache-hierarchy memory model machinery."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.device.memory import AccessCost, CacheLevel, MemoryModel


def scalar(x) -> float:
    return float(np.asarray(x).reshape(-1)[0])


def model():
    levels = (
        CacheLevel("L1", 1024, 64, 4.0, 32.0),
        CacheLevel("L2", 64 * 1024, 64, 12.0, 16.0),
    )
    dram = CacheLevel("DRAM", float("inf"), 64, 200.0, 4.0)
    return MemoryModel(levels, dram)


class TestConstruction:
    def test_levels_must_be_sorted(self):
        levels = (
            CacheLevel("L2", 64 * 1024, 64, 12.0, 16.0),
            CacheLevel("L1", 1024, 64, 4.0, 32.0),
        )
        with pytest.raises(DeviceError, match="ordered"):
            MemoryModel(levels, CacheLevel("DRAM", float("inf"), 64, 200.0, 4.0))

    def test_needs_a_level(self):
        with pytest.raises(DeviceError):
            MemoryModel((), CacheLevel("DRAM", float("inf"), 64, 200.0, 4.0))

    def test_invalid_level(self):
        with pytest.raises(DeviceError):
            CacheLevel("bad", 0, 64, 1.0, 1.0)
        with pytest.raises(DeviceError):
            CacheLevel("bad", 64, 64, -1.0, 1.0)


class TestBandwidth:
    def test_level_selection(self):
        m = model()
        bw = m.stream_bandwidth(np.array([512.0, 32768.0, 1e9]))
        assert list(bw) == [32.0, 16.0, 4.0]

    def test_scalar_input(self):
        assert float(model().stream_bandwidth(100.0)) == 32.0


class TestStrideAmplification:
    def test_unit_stride_no_amp(self):
        assert model().stride_amplification(4) == 1.0

    def test_amp_caps_at_line(self):
        m = model()
        assert m.stride_amplification(32) == 8.0
        assert m.stride_amplification(64) == 16.0
        assert m.stride_amplification(4096) == 16.0

    def test_invalid_stride(self):
        with pytest.raises(DeviceError):
            model().stride_amplification(0)


class TestGatherLatency:
    def test_monotone_in_working_set(self):
        m = model()
        ws = np.array([256.0, 2048.0, 1e5, 1e9])
        latency = m.gather_latency(ws)
        assert (np.diff(latency) >= 0).all()

    def test_tiny_set_is_l1_latency(self):
        m = model()
        assert scalar(m.gather_latency(100.0)) == pytest.approx(4.0)

    def test_huge_set_approaches_dram(self):
        m = model()
        assert scalar(m.gather_latency(1e12)) == pytest.approx(200.0, rel=0.01)


class TestGatherLatencyMixed:
    def test_fresh_when_traffic_matches_footprint(self):
        m = model()
        mixed = m.gather_latency_mixed(
            np.array([4096.0]), np.array([4096.0]), buffer_bytes=1e9
        )
        # Fresh: half the DRAM-ish source latency at least.
        assert scalar(mixed) >= 0.5 * scalar(m.gather_latency(1e9)) - 1e-9

    def test_resident_when_shared_structure(self):
        m = model()
        mixed = m.gather_latency_mixed(
            np.array([64.0]), np.array([32768.0]), buffer_bytes=32768.0
        )
        resident = scalar(m.gather_latency(32768.0))
        assert scalar(mixed) == pytest.approx(resident, rel=0.2)

    def test_resident_when_retouching(self):
        m = model()
        mixed = m.gather_latency_mixed(
            np.array([1e6]), np.array([512.0]), buffer_bytes=1e9
        )
        assert scalar(mixed) == pytest.approx(scalar(m.gather_latency(512.0)), rel=0.2)


class TestStreamCycles:
    def test_fresh_only(self):
        m = model()
        cycles = m.stream_cycles(
            np.array([1000.0]), np.array([1000.0]), buffer_bytes=1e9
        )
        assert scalar(cycles) == pytest.approx(1000.0 / 4.0)

    def test_reuse_served_from_cache(self):
        m = model()
        cycles = m.stream_cycles(
            np.array([10000.0]), np.array([100.0]), buffer_bytes=1e9
        )
        expected = 100.0 / 4.0 + 9900.0 / 32.0
        assert scalar(cycles) == pytest.approx(expected)

    def test_amplification_scales_traffic(self):
        m = model()
        base = m.stream_cycles(np.array([1000.0]), np.array([1000.0]), 1e9)
        amped = m.stream_cycles(
            np.array([1000.0]), np.array([1000.0]), 1e9, amplification=4.0
        )
        assert scalar(amped) == pytest.approx(4.0 * scalar(base))


class TestAccessCost:
    def test_zero(self):
        cost = AccessCost.zero(3)
        assert cost.bandwidth_cycles.shape == (3,)
        assert (cost.latency_cycles == 0).all()

    def test_addition(self):
        a = AccessCost(np.ones(2), np.full(2, 2.0))
        b = AccessCost(np.full(2, 3.0), np.ones(2))
        c = a + b
        assert list(c.bandwidth_cycles) == [4.0, 4.0]
        assert list(c.latency_cycles) == [3.0, 3.0]
