"""The cost-kernel memo: a pure cache with correct invalidation.

The memo (:mod:`repro.device.cost`) turns repeated cost derivations for
the same workload class into dictionary lookups.  These tests pin down
the contract: hits are bit-identical to the computation they skip, only
statically priced wa-aligned launches are cached, entries die when their
pool is re-registered or extended, and the generation counter keeps an
in-flight computation from resurrecting a doomed entry (the
re-register-mid-launch race).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.runtime import DySelRuntime
from repro.device import make_cpu, make_gpu
from repro.device.cost import (
    CostModel,
    cost_memo_stats,
    invalidate_cost_memo,
    ir_hash,
    statically_priced,
)
from repro.errors import KernelError
from repro.kernel import (
    AccessPattern,
    KernelIR,
    KernelVariant,
    Loop,
    LoopBound,
    MemoryAccess,
    WorkRange,
)
from tests.conftest import (
    AXPY_UNIT,
    axpy_executor,
    fast_slow_pool_build,
    make_axpy_args,
    make_axpy_variant,
)


def make_dynamic_variant(name: str, kind: str) -> KernelVariant:
    """An axpy variant whose pricing depends on runtime data."""
    trips = 16

    def unit_trips(args, unit_ids):
        return np.full(np.asarray(unit_ids).size, float(trips))

    def unit_stride(args, unit_ids):
        return np.full(np.asarray(unit_ids).size, 64.0)

    bound = LoopBound(
        evaluator=unit_trips if kind == "loop" else None,
        static_trips=None if kind == "loop" else trips,
    )
    access_extra = {}
    if kind == "stride":
        access_extra["stride_evaluator"] = unit_stride
    if kind == "footprint":
        access_extra["footprint_hint"] = unit_stride
    ir = KernelIR(
        loops=(Loop("k", bound),),
        accesses=(
            MemoryAccess(
                "x",
                False,
                AccessPattern.UNIT_STRIDE,
                4.0 * AXPY_UNIT / trips,
                loop="k",
                **access_extra,
            ),
            MemoryAccess(
                "y",
                True,
                AccessPattern.UNIT_STRIDE,
                4.0 * AXPY_UNIT / trips,
                loop="k",
            ),
        ),
        flops_per_trip=32.0,
        work_group_threads=AXPY_UNIT,
    )
    return KernelVariant(
        name=name, ir=ir, executor=axpy_executor, work_group_size=AXPY_UNIT
    )


class TestMemoBasics:
    def test_second_evaluation_hits_and_matches(self, quiet_config):
        model = CostModel(make_cpu(quiet_config))
        variant = make_axpy_variant("v", trips=16)
        args = make_axpy_args(64, quiet_config)
        cold = model.workgroup_cycles(variant, args, WorkRange(0, 64))
        warm = model.workgroup_cycles(variant, args, WorkRange(0, 64))
        stats = cost_memo_stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1}
        assert warm is cold
        assert np.array_equal(
            warm,
            model._workgroup_cycles_uncached(variant, args, WorkRange(0, 64)),
        )

    def test_cached_array_is_read_only(self, quiet_config):
        model = CostModel(make_cpu(quiet_config))
        variant = make_axpy_variant("v", trips=16)
        args = make_axpy_args(32, quiet_config)
        cycles = model.workgroup_cycles(variant, args, WorkRange(0, 32))
        assert not cycles.flags.writeable
        with pytest.raises(ValueError):
            cycles[0] = 0.0

    def test_aligned_slices_share_one_entry(self, quiet_config):
        """Profiling slices at different offsets hit the same entry.

        wa-aligned starts make the group partition a function of range
        *length* alone, so the memo key omits the offset — and the cached
        values must still match a from-scratch derivation at each offset.
        """
        model = CostModel(make_cpu(quiet_config))
        variant = make_axpy_variant("v", trips=16, wa_factor=4)
        args = make_axpy_args(96, quiet_config)
        ranges = [WorkRange(0, 16), WorkRange(16, 32), WorkRange(64, 80)]
        results = [
            model.workgroup_cycles(variant, args, units) for units in ranges
        ]
        assert cost_memo_stats() == {"entries": 1, "hits": 2, "misses": 1}
        for units, cycles in zip(ranges, results):
            assert np.array_equal(
                cycles, model._workgroup_cycles_uncached(variant, args, units)
            )

    def test_misaligned_start_is_not_cached(self, quiet_config):
        model = CostModel(make_cpu(quiet_config))
        variant = make_axpy_variant("v", trips=16, wa_factor=4)
        args = make_axpy_args(32, quiet_config)
        model.workgroup_cycles(variant, args, WorkRange(4, 32))
        # Start 6 is not a multiple of wa_factor 4: the uncached path
        # must reject it exactly as it did before the memo existed.
        with pytest.raises(KernelError):
            model.workgroup_cycles(variant, args, WorkRange(6, 32))
        assert cost_memo_stats()["entries"] == 1

    def test_distinct_devices_get_distinct_entries(self, quiet_config):
        cpu_model = CostModel(make_cpu(quiet_config))
        gpu_model = CostModel(make_gpu(quiet_config))
        variant = make_axpy_variant("v", trips=16)
        args = make_axpy_args(32, quiet_config)
        cpu_cycles = cpu_model.workgroup_cycles(variant, args, WorkRange(0, 32))
        gpu_cycles = gpu_model.workgroup_cycles(variant, args, WorkRange(0, 32))
        assert cost_memo_stats()["entries"] == 2
        assert not np.array_equal(cpu_cycles, gpu_cycles)

    def test_buffer_shape_is_part_of_the_key(self, quiet_config):
        model = CostModel(make_cpu(quiet_config))
        variant = make_axpy_variant("v", trips=16)
        small = make_axpy_args(32, quiet_config)
        large = make_axpy_args(64, quiet_config)
        model.workgroup_cycles(variant, small, WorkRange(0, 32))
        model.workgroup_cycles(variant, large, WorkRange(0, 32))
        assert cost_memo_stats() == {"entries": 2, "hits": 0, "misses": 2}


class TestStaticallyPriced:
    @pytest.mark.parametrize("kind", ["loop", "stride", "footprint"])
    def test_data_dependent_irs_are_never_cached(self, kind, quiet_config):
        variant = make_dynamic_variant("dyn", kind)
        assert not statically_priced(variant.ir)
        model = CostModel(make_cpu(quiet_config))
        args = make_axpy_args(32, quiet_config)
        first = model.workgroup_cycles(variant, args, WorkRange(0, 32))
        second = model.workgroup_cycles(variant, args, WorkRange(0, 32))
        assert cost_memo_stats() == {"entries": 0, "hits": 0, "misses": 0}
        assert first.flags.writeable and second.flags.writeable
        assert np.array_equal(first, second)

    def test_static_axpy_is_statically_priced(self):
        assert statically_priced(make_axpy_variant("v").ir)

    def test_evaluator_blind_hash_is_why_dynamic_is_excluded(self):
        """Two IRs differing only in evaluator bodies hash identically —
        the documented reason they must never share a memo entry."""
        first = make_dynamic_variant("a", "stride")
        second = make_dynamic_variant("b", "stride")
        assert first.ir is not second.ir
        assert ir_hash(first.ir) == ir_hash(second.ir)


class TestInvalidation:
    def test_invalidate_by_hash_is_selective(self, quiet_config):
        model = CostModel(make_cpu(quiet_config))
        unit = make_axpy_variant("unit", AccessPattern.UNIT_STRIDE)
        strided = make_axpy_variant("strided", AccessPattern.STRIDED)
        args = make_axpy_args(32, quiet_config)
        model.workgroup_cycles(unit, args, WorkRange(0, 32))
        model.workgroup_cycles(strided, args, WorkRange(0, 32))
        assert cost_memo_stats()["entries"] == 2
        assert invalidate_cost_memo([ir_hash(unit.ir)]) == 1
        assert cost_memo_stats()["entries"] == 1
        model.workgroup_cycles(strided, args, WorkRange(0, 32))
        assert cost_memo_stats()["hits"] == 1

    def test_invalidate_all(self, quiet_config):
        model = CostModel(make_cpu(quiet_config))
        args = make_axpy_args(32, quiet_config)
        model.workgroup_cycles(
            make_axpy_variant("v"), args, WorkRange(0, 32)
        )
        assert invalidate_cost_memo() == 1
        assert cost_memo_stats()["entries"] == 0

    def test_pool_reregistration_drops_entries(self, quiet_config):
        runtime = DySelRuntime(make_cpu(quiet_config), quiet_config)
        runtime.register_pool(fast_slow_pool_build())
        args = make_axpy_args(64, quiet_config)
        runtime.launch_kernel("axpy", args, 64)
        assert cost_memo_stats()["entries"] > 0
        runtime.register_pool(fast_slow_pool_build())
        assert cost_memo_stats()["entries"] == 0

    def test_first_registration_invalidates_nothing(self, quiet_config):
        model = CostModel(make_cpu(quiet_config))
        variant = make_axpy_variant("unrelated", trips=32)
        args = make_axpy_args(32, quiet_config)
        model.workgroup_cycles(variant, args, WorkRange(0, 32))
        runtime = DySelRuntime(make_cpu(quiet_config), quiet_config)
        runtime.register_pool(fast_slow_pool_build())
        assert cost_memo_stats()["entries"] == 1

    def test_add_kernel_drops_pool_entries(self, quiet_config):
        runtime = DySelRuntime(make_cpu(quiet_config), quiet_config)
        runtime.register_pool(fast_slow_pool_build())
        args = make_axpy_args(64, quiet_config)
        runtime.launch_kernel("axpy", args, 64)
        assert cost_memo_stats()["entries"] > 0
        runtime.add_kernel(
            "axpy", make_axpy_variant("extra", trips=48)
        )
        # Entries for the pool's (pre-extension) variants are gone; a
        # relaunch against the extended pool starts cold.
        before = cost_memo_stats()
        runtime.launch_kernel("axpy", args, 64, profiling=False)
        after = cost_memo_stats()
        assert after["misses"] > before["misses"]


class TestReRegisterMidLaunchRace:
    def test_inflight_computation_cannot_repopulate(self, quiet_config):
        """Thread A prices a variant while thread B re-registers its pool.

        However the interleaving lands, a cost array derived *before*
        the invalidation must not survive *after* it: the generation
        counter captured at miss time blocks the late insert.
        """
        model = CostModel(make_cpu(quiet_config))
        variant = make_axpy_variant("fast", AccessPattern.UNIT_STRIDE)
        args = make_axpy_args(64, quiet_config)
        doomed = ir_hash(variant.ir)

        in_derivation = threading.Event()
        invalidated = threading.Event()
        original = CostModel._workgroup_cycles_uncached

        def stalled(self, *call):
            result = original(self, *call)
            in_derivation.set()
            # Hold the derived array until the other thread has raced an
            # invalidation past this computation.
            assert invalidated.wait(timeout=10.0)
            return result

        runtime = DySelRuntime(make_cpu(quiet_config), quiet_config)
        runtime.register_pool(fast_slow_pool_build())

        CostModel._workgroup_cycles_uncached = stalled
        try:
            worker = threading.Thread(
                target=model.workgroup_cycles,
                args=(variant, args, WorkRange(0, 64)),
            )
            worker.start()
            assert in_derivation.wait(timeout=10.0)
            CostModel._workgroup_cycles_uncached = original
            runtime.register_pool(fast_slow_pool_build())
            invalidated.set()
            worker.join(timeout=10.0)
            assert not worker.is_alive()
        finally:
            CostModel._workgroup_cycles_uncached = original

        # The worker's insert must have been dropped on the floor.
        for key in list(_memo_keys()):
            assert key[0] != doomed

    def test_generation_bump_without_race_still_caches(self, quiet_config):
        """Sanity: with no interleaved invalidation the insert lands."""
        model = CostModel(make_cpu(quiet_config))
        variant = make_axpy_variant("v", trips=16)
        args = make_axpy_args(32, quiet_config)
        model.workgroup_cycles(variant, args, WorkRange(0, 32))
        assert cost_memo_stats()["entries"] == 1


def _memo_keys():
    from repro.device import cost as cost_mod

    with cost_mod._MEMO_LOCK:
        return list(cost_mod._COST_MEMO.keys())
