"""Tests for the spmv-jds workload."""

import pytest

from repro.config import ReproConfig
from repro.compiler.heuristics.lc import lc_select_schedule
from repro.device import make_cpu, make_gpu
from repro.harness.runner import run_pure
from repro.modes import ProfilingMode
from repro.workloads import spmv_jds

SIZE = 1024


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


class TestFunctional:
    def test_schedule_variants_correct(self, config):
        case = spmv_jds.schedule_case(SIZE, config)
        cpu = make_cpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, cpu, name, config).valid, name

    @pytest.mark.parametrize("device_kind", ["cpu", "gpu"])
    def test_mixed_variants_correct(self, device_kind, config):
        case = spmv_jds.mixed_case(device_kind, SIZE, config)
        device = make_cpu(config) if device_kind == "cpu" else make_gpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, device, name, config).valid, name

    def test_irregular_kernel_is_hybrid(self, config):
        assert (
            spmv_jds.schedule_case(SIZE, config).pool.mode
            is ProfilingMode.HYBRID
        )

    def test_version_counts_match_paper(self, config):
        assert len(spmv_jds.mixed_case("cpu", SIZE, config).pool.variants) == 2
        assert len(spmv_jds.mixed_case("gpu", SIZE, config).pool.variants) == 4


class TestPaperShapes:
    def test_bfo_wins_and_lc_agrees(self, config):
        """JDS is built for row-major streaming: BFO wins, LC knows it."""
        case = spmv_jds.schedule_case(SIZE, config)
        cpu = make_cpu(config)
        times = {
            name: run_pure(case, cpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        assert times["base,BFO"] < times["base,DFO"]
        assert lc_select_schedule(
            spmv_jds.schedule_family(SIZE, config)
        ).name.endswith("BFO")

    def test_gpu_texture_best_up_redundant(self, config):
        """Fig 10b's spmv-jds: texture-only best; unroll+prefetch on top
        slightly worse; base worst."""
        case = spmv_jds.mixed_case("gpu", 2048, config)
        gpu = make_gpu(config)
        times = {
            name: run_pure(case, gpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        assert min(times, key=times.get) == "base,texture"
        combo = times["base,unroll2,prefetch,texture"]
        assert combo / times["base,texture"] < 1.05  # near-tie (paper 0.8%)
        assert times["base"] == max(times.values())

    def test_cpu_base_beats_gpu_port(self, config):
        case = spmv_jds.mixed_case("cpu", SIZE, config)
        cpu = make_cpu(config)
        times = {
            name: run_pure(case, cpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        assert times["base"] < times["gpu-port"]
        assert times["gpu-port"] / times["base"] > 3.0
