"""Tests for the histogram workload (swap-mode showcase)."""

import pytest

from repro.config import ReproConfig
from repro.device import make_gpu
from repro.harness.runner import evaluate_case, run_pure
from repro.modes import OrchestrationFlow, ProfilingMode
from repro.workloads import histogram

ELEMS = 1 << 17


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


class TestFunctional:
    @pytest.mark.parametrize("distribution", ["uniform", "skewed"])
    def test_both_variants_correct(self, distribution, config):
        case = histogram.swap_case(distribution, ELEMS, config)
        gpu = make_gpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, gpu, name, config).valid, name

    def test_atomics_force_swap_mode(self, config):
        case = histogram.swap_case("uniform", ELEMS, config)
        assert case.pool.mode is ProfilingMode.SWAP

    def test_swap_profiled_run_is_exact(self, config):
        """Swap-mode DySel must not double- or under-count any element."""
        case = histogram.swap_case("uniform", ELEMS, config)
        gpu = make_gpu(config)
        evaluation = evaluate_case(case, gpu, config, dysel_flows=("sync",))
        assert evaluation.dysel["sync"].valid

    def test_async_falls_back_to_sync(self, config):
        from repro.harness.runner import run_dysel

        case = histogram.swap_case("uniform", ELEMS, config)
        gpu = make_gpu(config)
        result = run_dysel(case, gpu, flow=OrchestrationFlow.ASYNC, config=config)
        assert result.valid
        assert result.eager_chunks == 0  # sync fallback never eagers


class TestInputDependence:
    def test_winner_flips_with_distribution(self, config):
        gpu = make_gpu(config)
        uniform = histogram.swap_case("uniform", ELEMS, config)
        skewed = histogram.swap_case("skewed", ELEMS, config)
        uni = {
            name: run_pure(uniform, gpu, name, config).elapsed_cycles
            for name in uniform.pool.variant_names
        }
        skw = {
            name: run_pure(skewed, gpu, name, config).elapsed_cycles
            for name in skewed.pool.variant_names
        }
        assert uni["atomic"] < uni["privatized"]
        assert skw["privatized"] < skw["atomic"]

    def test_dysel_adapts(self, config):
        gpu = make_gpu(config)
        for dist, expected in (("uniform", "atomic"), ("skewed", "privatized")):
            case = histogram.swap_case(dist, ELEMS, config)
            evaluation = evaluate_case(case, gpu, config, dysel_flows=("sync",))
            assert evaluation.dysel["sync"].selected == expected
