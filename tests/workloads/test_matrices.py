"""Unit tests for the sparse-matrix substrate (CSR, JDS, inputs)."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import WorkloadError
from repro.workloads.matrices import (
    CsrMatrix,
    csr_to_jds,
    diagonal_csr,
    random_csr,
)


@pytest.fixture(scope="module")
def small_random():
    return random_csr(256, 256, 0.02, ReproConfig())


class TestCsr:
    def test_random_shape_and_density(self, small_random):
        assert small_random.shape == (256, 256)
        density = small_random.nnz / (256 * 256)
        assert 0.01 < density < 0.04
        assert (small_random.row_nnz >= 1).all()

    def test_diagonal_structure(self):
        m = diagonal_csr(64)
        assert m.nnz == 64
        assert (m.row_nnz == 1).all()
        assert (m.indices == np.arange(64)).all()

    def test_multiply_matches_dense(self, small_random):
        x = np.ones(256, dtype=np.float32)
        dense = np.zeros((256, 256), dtype=np.float32)
        for r in range(256):
            lo, hi = small_random.indptr[r], small_random.indptr[r + 1]
            dense[r, small_random.indices[lo:hi]] = small_random.data[lo:hi]
        assert np.allclose(small_random.multiply(x), dense @ x, atol=1e-3)

    def test_deterministic_generation(self):
        a = random_csr(64, 64, 0.05, ReproConfig())
        b = random_csr(64, 64, 0.05, ReproConfig())
        assert (a.data == b.data).all()
        assert (a.indices == b.indices).all()

    def test_invalid_density(self):
        with pytest.raises(WorkloadError):
            random_csr(16, 16, 0.0)

    def test_malformed_matrix_rejected(self):
        with pytest.raises(WorkloadError):
            CsrMatrix(
                indptr=np.array([0, 1]),
                indices=np.array([0, 1]),
                data=np.array([1.0, 2.0], dtype=np.float32),
                shape=(2, 2),
            )


class TestBlockStats:
    def test_sums_and_maxima(self, small_random):
        stats = small_random.block_stats(16)
        assert stats.nnz_sum.sum() == small_random.nnz
        row_nnz = small_random.row_nnz
        assert stats.nnz_max[0] == row_nnz[:16].max()

    def test_diagonal_block_span_is_tight(self):
        m = diagonal_csr(128)
        stats = m.block_stats(4)
        # Each 4-row block touches 4 adjacent columns: a 16-byte span.
        assert (stats.x_span_bytes == 16.0).all()

    def test_random_block_span_is_wide(self, small_random):
        stats = small_random.block_stats(16)
        assert stats.x_span_bytes.mean() > 256 * 4 * 0.5

    def test_cached(self, small_random):
        assert small_random.block_stats(8) is small_random.block_stats(8)

    def test_invalid_block(self, small_random):
        with pytest.raises(WorkloadError):
            small_random.block_stats(0)


class TestJds:
    def test_conversion_preserves_product(self, small_random):
        jds = csr_to_jds(small_random)
        x = ReproConfig().rng("x").standard_normal(256).astype(np.float32)
        assert np.allclose(
            jds.multiply(x), small_random.multiply(x), atol=1e-3
        )

    def test_rows_sorted_by_length(self, small_random):
        jds = csr_to_jds(small_random)
        assert (np.diff(jds.row_nnz) <= 0).all()
        assert jds.max_row_nnz == small_random.row_nnz.max()

    def test_diag_rows_non_increasing(self, small_random):
        jds = csr_to_jds(small_random)
        assert (np.diff(jds.diag_rows) <= 0).all()

    def test_total_nnz_preserved(self, small_random):
        jds = csr_to_jds(small_random)
        assert len(jds.data) == small_random.nnz
