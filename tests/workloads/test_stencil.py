"""Tests for the stencil workload."""

import pytest

from repro.config import ReproConfig
from repro.device import make_cpu, make_gpu
from repro.harness.runner import run_pure
from repro.modes import ProfilingMode
from repro.workloads import stencil

GRID = (64, 64, 8)


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


class TestFunctional:
    def test_all_schedule_variants_correct(self, config):
        case = stencil.schedule_case(GRID, config)
        cpu = make_cpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, cpu, name, config).valid, name

    @pytest.mark.parametrize("device_kind", ["cpu", "gpu"])
    def test_mixed_variants_correct(self, device_kind, config):
        case = stencil.mixed_case(device_kind, GRID, config)
        device = make_cpu(config) if device_kind == "cpu" else make_gpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, device, name, config).valid, name

    def test_boundaries_copied_through(self, config):
        import numpy as np
        from repro.kernel import WorkRange

        args = stencil.make_args_factory(GRID, config)()
        variant = stencil.base_variant(GRID, "cpu")
        variant.execute(args, WorkRange(0, stencil.workload_units(GRID)))
        src = args["a_in"].data
        dst = args["a_out"].data
        assert np.array_equal(dst[0], src[0])
        assert np.array_equal(dst[:, 0, :], src[:, 0, :])

    def test_regular_kernel_fully_productive(self, config):
        assert stencil.schedule_case(GRID, config).pool.mode is ProfilingMode.FULLY


class TestPaperShapes:
    def test_x_innermost_schedules_win(self, config):
        case = stencil.schedule_case(GRID, config)
        cpu = make_cpu(config)
        times = {
            name: run_pure(case, cpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        best = min(times, key=times.get)
        assert best.endswith("wi_x")

    def test_mixed_winner_per_device(self, config):
        """Fig 10: base wins CPU; z-coarsening wins GPU; tiling adds
        nothing on top of z-coarsening on GPU.  Uses a grid large enough
        that the coarsened variant still fills the device (as in the
        paper's inputs).
        """
        shape_grid = stencil.DEFAULT_GRID
        cpu, gpu = make_cpu(config), make_gpu(config)
        cpu_case = stencil.mixed_case("cpu", shape_grid, config)
        cpu_times = {
            name: run_pure(cpu_case, cpu, name, config).elapsed_cycles
            for name in cpu_case.pool.variant_names
        }
        assert min(cpu_times, key=cpu_times.get) == "base"
        gpu_case = stencil.mixed_case("gpu", shape_grid, config)
        gpu_times = {
            name: run_pure(gpu_case, gpu, name, config).elapsed_cycles
            for name in gpu_case.pool.variant_names
        }
        assert "coarsen-z" in min(gpu_times, key=gpu_times.get)
