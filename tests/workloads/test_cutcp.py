"""Tests for the cutcp workload."""

import pytest

from repro.config import ReproConfig
from repro.device import make_cpu, make_gpu
from repro.harness.runner import run_pure
from repro.modes import ProfilingMode
from repro.workloads import cutcp

LATTICE = (32, 32, 8)
ATOMS = 2000


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


@pytest.fixture(scope="module")
def geometry(config):
    return cutcp.get_geometry(LATTICE, ATOMS, config)


class TestFunctional:
    def test_reference_matches_executor(self, geometry, config):
        from repro.kernel import WorkRange

        args = cutcp.make_args_factory(geometry)()
        variant = cutcp.base_variant("cpu")
        variant.execute(args, WorkRange(0, cutcp.workload_units(geometry)))
        assert cutcp.make_checker(geometry)(args)

    @pytest.mark.parametrize("device_kind", ["cpu", "gpu"])
    def test_mixed_variants_correct(self, device_kind, config, geometry):
        case = cutcp.mixed_case(device_kind, LATTICE, ATOMS, config)
        device = make_cpu(config) if device_kind == "cpu" else make_gpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, device, name, config).valid, name

    def test_sixty_legal_schedules(self):
        assert len(cutcp.legal_orders()) == 60
        for order in cutcp.legal_orders():
            assert order.index("bin") < order.index("atom")

    def test_static_bounds_fully_productive(self, config):
        case = cutcp.mixed_case("gpu", LATTICE, ATOMS, config)
        assert case.pool.mode is ProfilingMode.FULLY


class TestPaperShapes:
    def test_tiling_asymmetry(self, config, geometry):
        # The default lattice: large enough that the coarsened variant
        # fills the device (toy lattices leave SMs idle in the tail).
        cpu, gpu = make_cpu(config), make_gpu(config)
        cpu_case = cutcp.mixed_case("cpu", config=config)
        gpu_case = cutcp.mixed_case("gpu", config=config)
        cpu_times = {
            name: run_pure(cpu_case, cpu, name, config).elapsed_cycles
            for name in cpu_case.pool.variant_names
        }
        gpu_times = {
            name: run_pure(gpu_case, gpu, name, config).elapsed_cycles
            for name in gpu_case.pool.variant_names
        }
        cpu_best = min(cpu_times, key=cpu_times.get)
        gpu_best = min(gpu_times, key=gpu_times.get)
        assert "tiled" not in cpu_best
        assert "tiled" in gpu_best
