"""Tests for the spmv-csr workload: correctness and paper-shape checks."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.device import make_cpu, make_gpu
from repro.harness.runner import evaluate_case, run_pure
from repro.modes import ProfilingMode
from repro.workloads import spmv_csr


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


class TestFunctional:
    @pytest.mark.parametrize("device_kind", ["cpu", "gpu"])
    @pytest.mark.parametrize("kind", ["random", "diagonal"])
    def test_every_variant_correct(self, device_kind, kind, config):
        case = spmv_csr.input_dependent_case(device_kind, kind, 1024, config)
        device = make_cpu(config) if device_kind == "cpu" else make_gpu(config)
        for name in case.pool.variant_names:
            result = run_pure(case, device, name, config)
            assert result.valid, name

    def test_hybrid_mode_recommended(self, config):
        case = spmv_csr.input_dependent_case("gpu", "random", 1024, config)
        assert case.pool.mode is ProfilingMode.HYBRID

    def test_partial_tail_block(self, config):
        """A matrix whose rows don't divide the unit size still works."""
        from repro.workloads.matrices import diagonal_csr

        matrix = diagonal_csr(1022)  # not a multiple of 4
        args = spmv_csr.make_args_factory(matrix, config)()
        checker = spmv_csr.make_checker(matrix)
        units = spmv_csr.workload_units(matrix)
        variant = spmv_csr.scalar_variant("cpu")
        from repro.kernel import WorkRange

        variant.execute(args, WorkRange(0, units))
        assert checker(args)


class TestPaperShapes:
    def test_gpu_winner_flips_with_input(self, config):
        """Fig 11b: vector wins random, scalar wins diagonal."""
        gpu = make_gpu(config)
        random_case = spmv_csr.input_dependent_case("gpu", "random", 2048, config)
        diag_case = spmv_csr.input_dependent_case("gpu", "diagonal", 32768, config)
        rand = {
            name: run_pure(random_case, gpu, name, config).elapsed_cycles
            for name in random_case.pool.variant_names
        }
        diag = {
            name: run_pure(diag_case, gpu, name, config).elapsed_cycles
            for name in diag_case.pool.variant_names
        }
        assert rand["vector"] < rand["scalar"]
        assert diag["scalar"] < diag["vector"]
        # Magnitudes: catastrophic on diagonal, material on random.
        assert diag["vector"] / diag["scalar"] > 5.0
        assert rand["scalar"] / rand["vector"] > 1.5

    def test_cpu_schedule_flips_with_input(self, config):
        """Fig 11a: DFO wins random, BFO wins diagonal (scalar kernel)."""
        cpu = make_cpu(config)
        random_case = spmv_csr.schedule_case("random", 2048, config)
        diag_case = spmv_csr.schedule_case("diagonal", 32768, config)
        rand = {
            name: run_pure(random_case, cpu, name, config).elapsed_cycles
            for name in random_case.pool.variant_names
        }
        diag = {
            name: run_pure(diag_case, cpu, name, config).elapsed_cycles
            for name in diag_case.pool.variant_names
        }
        assert rand["scalar,DFO"] < rand["scalar,BFO"]
        assert diag["scalar,BFO"] < diag["scalar,DFO"]

    def test_dysel_selects_right_variant_per_input(self, config):
        gpu = make_gpu(config)
        for kind, size, expected in (
            ("random", 2048, "vector"),
            ("diagonal", 32768, "scalar"),
        ):
            case = spmv_csr.input_dependent_case(
                "gpu", kind, size, config, iterations=10
            )
            evaluation = evaluate_case(case, gpu, config, dysel_flows=("sync",))
            assert evaluation.dysel["sync"].selected == expected
            assert evaluation.dysel["sync"].valid
            overhead = evaluation.relative(evaluation.dysel["sync"])
            assert overhead < 1.10


class TestPlacementCase:
    def test_pool_has_four_policies(self, config):
        case = spmv_csr.placement_case(2048, config)
        assert len(case.pool.variants) == 4
        names = " ".join(case.pool.variant_names)
        assert "porple-fermi" in names
        assert "porple-kepler" in names
        assert "porple-maxwell" in names
        assert "jang" in names

    def test_fermi_policy_wins_on_kepler(self, config):
        """The paper's Fig 9 irony, reproduced."""
        gpu = make_gpu(config)
        case = spmv_csr.placement_case(4096, config)
        times = {
            name: run_pure(case, gpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        best = min(times, key=times.get)
        assert "porple-fermi" in best
        worst = max(times, key=times.get)
        assert "jang" in worst
