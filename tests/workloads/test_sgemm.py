"""Tests for the sgemm workload: correctness and paper-shape checks."""

import pytest

from repro.config import ReproConfig
from repro.device import make_cpu, make_gpu
from repro.harness.runner import run_pure
from repro.modes import ProfilingMode
from repro.workloads import sgemm

N = 128  # small but multi-tile


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


class TestFunctional:
    def test_all_schedule_variants_correct(self, config):
        case = sgemm.schedule_case(N, config)
        cpu = make_cpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, cpu, name, config).valid, name

    @pytest.mark.parametrize("device_kind", ["cpu", "gpu"])
    def test_mixed_variants_correct(self, device_kind, config):
        case = sgemm.mixed_case(device_kind, N, config)
        device = make_cpu(config) if device_kind == "cpu" else make_gpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, device, name, config).valid, name

    def test_fully_productive_mode(self, config):
        case = sgemm.schedule_case(N, config)
        assert case.pool.mode is ProfilingMode.FULLY

    def test_workload_units(self):
        assert sgemm.workload_units(128) == 64


class TestPaperShapes:
    def test_fig1_ordering(self, config):
        """8-way > 4-way > scalar, and the heuristic picks 4-way."""
        case = sgemm.vectorization_case(256, config)
        cpu = make_cpu(config)
        times = {
            name.split(",")[-1]: run_pure(case, cpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        assert times["8-way"] < times["4-way"] < times["scalar"]
        assert sgemm.heuristic_width(256) == 4

    def test_schedule_spread_is_large(self, config):
        """Fig 8: bad schedules are many times slower than good ones."""
        case = sgemm.schedule_case(256, config)
        cpu = make_cpu(config)
        times = [
            run_pure(case, cpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        ]
        assert max(times) / min(times) > 5.0

    def test_six_schedules(self, config):
        assert len(sgemm.schedule_case(N, config).pool.variants) == 6

    def test_tiling_asymmetry(self, config):
        """Fig 10: the tiled version wins on GPU and loses on CPU."""
        # Sizes large enough that the 16x-coarsened variant still fills
        # the 13-SM device (tail effects dominate at toy sizes).
        cpu, gpu = make_cpu(config), make_gpu(config)
        cpu_case = sgemm.mixed_case("cpu", 384, config)
        gpu_case = sgemm.mixed_case("gpu", 384, config)
        cpu_times = {
            name: run_pure(cpu_case, cpu, name, config).elapsed_cycles
            for name in cpu_case.pool.variant_names
        }
        gpu_times = {
            name: run_pure(gpu_case, gpu, name, config).elapsed_cycles
            for name in gpu_case.pool.variant_names
        }
        cpu_base = min(n for n in cpu_times if "tiled" not in n)
        cpu_tiled = [n for n in cpu_times if "tiled" in n][0]
        gpu_tiled = [n for n in gpu_times if "tiled" in n][0]
        assert cpu_times[cpu_base] < cpu_times[cpu_tiled]
        assert gpu_times[gpu_tiled] < gpu_times["base"]
