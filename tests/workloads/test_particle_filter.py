"""Tests for the particle-filter workload."""

import pytest

from repro.config import ReproConfig
from repro.device import make_gpu
from repro.harness.runner import run_pure
from repro.modes import ProfilingMode
from repro.workloads import particle_filter

PARTICLES = 4096


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


class TestFunctional:
    def test_all_variants_correct(self, config):
        case = particle_filter.placement_case(PARTICLES, config)
        gpu = make_gpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, gpu, name, config).valid, name

    def test_early_exit_loop_is_hybrid(self, config):
        case = particle_filter.placement_case(PARTICLES, config)
        assert case.pool.mode is ProfilingMode.HYBRID

    def test_four_policies(self, config):
        case = particle_filter.placement_case(PARTICLES, config)
        assert len(case.pool.variants) == 4
        names = " ".join(case.pool.variant_names)
        assert "rodinia" in names and "jang" in names

    def test_search_trips_grow_with_stratified_thresholds(self, config):
        import numpy as np
        from repro.workloads.particle_filter import _search_trips

        args = particle_filter.make_args_factory(PARTICLES, config)()
        units = np.array([0, particle_filter.workload_units(PARTICLES) - 1])
        trips = _search_trips(args, units)
        assert trips[1] > trips[0]  # non-uniform workload, by construction


class TestPaperShapes:
    def test_rodinia_original_is_worst(self, config):
        """Fig 9: the baselines all pick right; Rodinia's original
        placement trails."""
        case = particle_filter.placement_case(32000, config)
        gpu = make_gpu(config)
        times = {
            name: run_pure(case, gpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        worst = max(times, key=times.get)
        assert "rodinia" in worst
        best = min(times, key=times.get)
        assert times[worst] / times[best] > 1.1
