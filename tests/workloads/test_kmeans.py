"""Tests for the kmeans workload."""

import pytest

from repro.config import ReproConfig
from repro.compiler.heuristics.lc import lc_select_schedule
from repro.device import make_cpu
from repro.harness.runner import run_pure
from repro.workloads import kmeans

POINTS = 4096


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


class TestFunctional:
    def test_all_variants_correct(self, config):
        case = kmeans.schedule_case(POINTS, config)
        cpu = make_cpu(config)
        for name in case.pool.variant_names:
            assert run_pure(case, cpu, name, config).valid, name

    def test_three_schedules(self, config):
        assert len(kmeans.schedule_case(POINTS, config).pool.variants) == 3


class TestPaperShapes:
    def test_points_innermost_is_worst(self, config):
        case = kmeans.schedule_case(POINTS, config)
        cpu = make_cpu(config)
        times = {
            name: run_pure(case, cpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        worst = max(times, key=times.get)
        assert worst.endswith("wi_p")
        spread = max(times.values()) / min(times.values())
        assert spread > 2.0  # paper's worst bar ~2.95

    def test_lc_near_optimal(self, config):
        case = kmeans.schedule_case(POINTS, config)
        cpu = make_cpu(config)
        times = {
            name: run_pure(case, cpu, name, config).elapsed_cycles
            for name in case.pool.variant_names
        }
        pick = lc_select_schedule(kmeans.schedule_family(POINTS)).name
        assert times[pick] / min(times.values()) < 1.1
