"""Arrival-process properties: determinism, bounds, and rate accuracy."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import TrafficError
from repro.traffic import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)

rates = st.floats(min_value=0.1, max_value=20.0)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
horizons = st.floats(min_value=1.0, max_value=50.0)

processes = st.one_of(
    st.builds(PoissonArrivals, rate=rates),
    st.builds(
        BurstyArrivals,
        burst_rate=rates,
        mean_burst=st.floats(min_value=0.5, max_value=5.0),
        mean_gap=st.floats(min_value=0.5, max_value=5.0),
        base_rate=st.floats(min_value=0.0, max_value=2.0),
    ),
    st.builds(
        DiurnalArrivals,
        base_rate=rates,
        amplitude=st.floats(min_value=0.0, max_value=1.0),
        period=st.floats(min_value=5.0, max_value=100.0),
    ),
)


@given(processes, seeds, horizons)
def test_times_deterministic_per_seed(process, seed, horizon):
    """One seeded generator reproduces the identical arrival stream."""
    a = process.times(np.random.default_rng(seed), horizon)
    b = process.times(np.random.default_rng(seed), horizon)
    assert a == b
    assert isinstance(process, ArrivalProcess)


@given(processes, seeds, horizons)
def test_times_increasing_and_bounded(process, seed, horizon):
    times = process.times(np.random.default_rng(seed), horizon)
    assert all(0.0 <= t < horizon for t in times)
    assert all(b > a for a, b in zip(times, times[1:]))


@settings(max_examples=25, deadline=None)
@given(processes, seeds)
@example(
    process=BurstyArrivals(
        burst_rate=18.5, mean_burst=1.0, mean_gap=3.0, base_rate=1.0
    ),
    seed=0,
)
@example(
    process=DiurnalArrivals(base_rate=17.0, amplitude=1.0, period=73.0),
    seed=0,
)
def test_observed_rate_matches_mean_rate(process, seed):
    """Law of large numbers: long-horizon count tracks ``mean_rate``.

    The horizon targets ~2000 expected arrivals — and, for the MMPP,
    ~500 on/off state cycles, since burst-count variance is governed by
    how many cycles fit in the horizon rather than by the arrival
    count.  Either way the relative standard error lands under ~5%, so
    the 20% tolerance is many sigmas out even under hypothesis's
    adversarial search.  The diurnal horizon snaps to whole periods:
    over a fractional period the sinusoid does not integrate away, so
    the observed rate would be biased by the partial cycle rather than
    scattered by sampling noise (the pinned example sits 1.6 periods
    out and fails without the snap).
    """
    horizon = 2000.0 / process.mean_rate()
    if isinstance(process, BurstyArrivals):
        horizon = max(
            horizon, 500.0 * (process.mean_burst + process.mean_gap)
        )
    if isinstance(process, DiurnalArrivals):
        horizon = math.ceil(horizon / process.period) * process.period
    times = process.times(np.random.default_rng(seed), horizon)
    observed = len(times) / horizon
    assert observed == pytest.approx(process.mean_rate(), rel=0.2)


def test_bursty_is_overdispersed():
    """MMPP arrival counts disperse more than Poisson (that's the point)."""
    process = BurstyArrivals(burst_rate=20.0, mean_burst=1.0, mean_gap=4.0)
    times = process.times(np.random.default_rng(7), 2000.0)
    counts = np.bincount(
        np.floor(np.asarray(times)).astype(int), minlength=2000
    )
    dispersion = counts.var() / counts.mean()
    assert dispersion > 1.5


def test_bursty_mean_rate_blends_states():
    process = BurstyArrivals(
        burst_rate=12.0, mean_burst=1.0, mean_gap=3.0, base_rate=2.0
    )
    assert process.mean_rate() == pytest.approx((12.0 + 3 * 2.0) / 4.0)


def test_diurnal_rate_bounds():
    process = DiurnalArrivals(base_rate=4.0, amplitude=0.5, period=10.0)
    rates_seen = [process.rate_at(t / 10.0) for t in range(200)]
    assert min(rates_seen) >= 4.0 * 0.5 - 1e-9
    assert max(rates_seen) <= 4.0 * 1.5 + 1e-9


@pytest.mark.parametrize(
    "build",
    [
        lambda: PoissonArrivals(0.0),
        lambda: PoissonArrivals(float("inf")),
        lambda: BurstyArrivals(0.0, 1.0, 1.0),
        lambda: BurstyArrivals(1.0, 0.0, 1.0),
        lambda: BurstyArrivals(1.0, 1.0, -1.0),
        lambda: BurstyArrivals(1.0, 1.0, 1.0, base_rate=-0.5),
        lambda: DiurnalArrivals(0.0),
        lambda: DiurnalArrivals(1.0, amplitude=1.5),
        lambda: DiurnalArrivals(1.0, period=0.0),
    ],
)
def test_invalid_parameters_raise(build):
    with pytest.raises(TrafficError):
        build()


def test_invalid_horizon_raises():
    process = PoissonArrivals(1.0)
    for horizon in (0.0, -1.0, float("nan"), float("inf")):
        with pytest.raises(TrafficError):
            process.times(np.random.default_rng(0), horizon)
