"""Traffic chaos: random fault plans under bursty multi-client load.

The serving invariant, now with QoS in front: whatever a fault plan and
a bursty traffic mix do, every *committed* output is element-wise equal
to the sequential reference — the only legal failures are a structured
admission refusal or ``LaunchAbortedError`` — and the scheduler ends
clean: no leaked profile leases, and the fleet still serves (and can
still converge its selection store) after the storm.

Seed convention matches ``tests/faults/test_chaos.py``: the CI chaos job
replays the fixed default seed plus one randomized seed per run; replay
locally with ``REPRO_CHAOS_SEED=<seed>``.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import replace

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, seed, settings, strategies as st  # noqa: E402

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
chaos_seed = seed(CHAOS_SEED)

from repro.compiler.variants import VariantPool  # noqa: E402
from repro.config import FaultPolicy, ReproConfig  # noqa: E402
from repro.device import make_cpu  # noqa: E402
from repro.errors import AdmissionRejected, LaunchAbortedError  # noqa: E402
from repro.faults import FaultKind, FaultPlan, FaultRule  # noqa: E402
from repro.kernel import AccessPattern, KernelSpec  # noqa: E402
from repro.serve import LaunchScheduler, QoSConfig  # noqa: E402
from repro.traffic import (  # noqa: E402
    BurstyArrivals,
    ParetoSizes,
    TenantProfile,
    TrafficGenerator,
    TrafficReplayer,
)
from repro.workloads.base import BenchmarkCase  # noqa: E402

from tests.conftest import (  # noqa: E402
    axpy_output_ok,
    axpy_signature,
    make_axpy_args,
    make_axpy_variant,
)

VARIANTS = ("fast", "mid", "slow")


def chaos_pool():
    return VariantPool(
        spec=KernelSpec(signature=axpy_signature()),
        variants=(
            make_axpy_variant("fast", AccessPattern.UNIT_STRIDE),
            make_axpy_variant("mid", AccessPattern.STRIDED, stride_bytes=32),
            make_axpy_variant(
                "slow", AccessPattern.STRIDED, stride_bytes=128
            ),
        ),
    )


def chaos_catalog(pool):
    def build(units: int, config) -> BenchmarkCase:
        n = max(128, min(512, units))
        return BenchmarkCase(
            name=f"axpy/{n}",
            pool=pool,
            make_args=lambda: make_axpy_args(n, config),
            workload_units=n,
            check=axpy_output_ok,
        )

    return {"axpy": build}


rule_strategy = st.builds(
    FaultRule,
    kind=st.sampled_from(list(FaultKind)),
    variant=st.sampled_from(VARIANTS + (None,) * 2),
    count=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    after=st.integers(min_value=0, max_value=3),
    probability=st.floats(min_value=0.25, max_value=1.0),
    magnitude=st.floats(min_value=2.0, max_value=16.0),
)

plan_strategy = st.builds(
    FaultPlan,
    rules=st.lists(rule_strategy, min_size=0, max_size=3),
    seed=st.integers(min_value=0, max_value=2**16),
)


@chaos_seed
@settings(max_examples=5, deadline=None)
@given(
    plan=plan_strategy,
    traffic_seed=st.integers(min_value=0, max_value=2**16),
)
def test_bursty_chaos_commits_reference_or_aborts(plan, traffic_seed):
    config = replace(
        ReproConfig(), faults=FaultPolicy(quarantine_threshold=2)
    )
    profile = TenantProfile(
        "storm",
        BurstyArrivals(burst_rate=10.0, mean_burst=1.0, mean_gap=1.0),
        ParetoSizes(1.2, min_units=128, max_units=512),
        workloads=("axpy",),
    )
    schedule = TrafficGenerator(
        (profile,), seed=traffic_seed, horizon=3.0
    ).generate()
    pool = chaos_pool()
    replayer = TrafficReplayer(config, catalog=chaos_catalog(pool))
    requests = replayer.serve_requests(schedule)

    scheduler = LaunchScheduler(
        (make_cpu(config), make_cpu(config)),
        config=config,
        fault_plan=plan,
        qos=QoSConfig(
            max_queue_depth=8,
            defer_watermark=0.5,
            resume_watermark=0.25,
        ),
    )
    scheduler.register_pool(pool)

    served = []
    lock = threading.Lock()
    work = list(requests)

    def client():
        while True:
            with lock:
                if not work:
                    return
                request = work.pop()
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    scheduler.launch(request)
            except (AdmissionRejected, LaunchAbortedError):
                continue
            with lock:
                served.append(request)

    threads = [threading.Thread(target=client) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    assert not any(t.is_alive() for t in threads)

    # No silent corruption: every committed output equals the exact
    # reference (2*x is exact in float32 — any scribble shows up).
    for request in served:
        x = request.args["x"].data
        y = request.args["y"].data
        assert np.array_equal(y, 2.0 * x)

    # No lease leaks: aborted, deferred, and completed launches all
    # released (or never created) their profile-lease entries.
    assert len(scheduler.leases) == 0

    # The fleet still serves after the storm — quarantine converged on
    # surviving variants rather than wedging the pool — and any
    # published selection names a real variant.
    args = make_axpy_args(256, config)
    from repro.serve import ServeRequest

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            scheduler.launch(ServeRequest("axpy", args, 256))
        except LaunchAbortedError:
            pass
        else:
            assert axpy_output_ok(args)
    for key in scheduler.store.keys():
        assert scheduler.store.lookup(key).selected in VARIANTS
