"""Overload end-to-end: backpressure defers profiling, nothing starves,
and the selection store still converges to the oracle once pressure
clears."""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import ReproConfig
from repro.device import make_cpu
from repro.errors import AdmissionRejected
from repro.obs.events import EventKind
from repro.obs.export import reconcile, summarize
from repro.serve import (
    LaunchScheduler,
    ProfileLeaseTable,
    QoSConfig,
    SelectionStore,
    ServeRequest,
    TenantSpec,
)
from repro.traffic import (
    BurstyArrivals,
    FixedSizes,
    PoissonArrivals,
    TenantProfile,
    TrafficGenerator,
    TrafficReplayer,
)

from tests.conftest import (
    axpy_output_ok,
    fast_slow_pool_build,
    make_axpy_args,
)
from tests.traffic.conftest import axpy_catalog

#: Three distinct workload classes, all above the small-workload
#: threshold (128 work-groups) so cold launches really would profile.
CLASS_UNITS = (128, 256, 512)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.001)
    raise AssertionError("condition not reached in time")


def make_scheduler(config, store=None, qos=None, devices=1, streams=1):
    scheduler = LaunchScheduler(
        tuple(make_cpu(config) for _ in range(devices)),
        config=config,
        store=store,
        streams_per_device=streams,
        qos=qos,
    )
    scheduler.register_pool(fast_slow_pool_build())
    return scheduler


def request_for(config, units, **kwargs):
    return ServeRequest(
        kernel="axpy",
        args=make_axpy_args(units, config),
        workload_units=units,
        **kwargs,
    )


def always_deferring():
    """The permanently-deferring QoS arm (profiling off under load)."""
    return QoSConfig(defer_watermark=0.0, resume_watermark=0.0)


class TestBackpressureDefersEveryLease:
    def test_cold_classes_defer_instead_of_profiling(self, config):
        scheduler = make_scheduler(config, qos=always_deferring())
        outcomes = [
            scheduler.launch(request_for(config, units))
            for units in CLASS_UNITS
        ]
        for outcome in outcomes:
            assert outcome.deferred
            assert outcome.lease == ProfileLeaseTable.DEFERRED
            assert not outcome.profiled
            assert not outcome.store_hit
            assert "deferred by backpressure" in outcome.result.reason
            assert axpy_output_ok(outcome.request.args)
        # No lease entries, no published selections: the classes stay
        # cold so profiling can resume once pressure clears.
        assert len(scheduler.leases) == 0
        assert scheduler.leases.deferred_count() == len(CLASS_UNITS)
        assert len(scheduler.store) == 0
        assert scheduler.stats.profiles_deferred == len(CLASS_UNITS)

    def test_deferred_instants_traced_and_reconcile_clean(self):
        config = ReproConfig(trace=True)
        scheduler = make_scheduler(config, qos=always_deferring())
        for units in CLASS_UNITS:
            scheduler.launch(request_for(config, units, tenant="t0"))
        events = [
            e
            for e in scheduler.tracer.events
            if e.kind is EventKind.PROFILE_DEFERRED
        ]
        assert len(events) == len(CLASS_UNITS)
        for event in events:
            assert event.args["what"] == "micro-profile"
            assert event.args["tenant"] == "t0"
            assert "workload_class" in event.args
            assert event.args["pressure"] >= 0.0
        assert reconcile(scheduler.tracer.events) == []
        summary = summarize(scheduler.tracer.events)
        assert summary.profile_deferrals == len(CLASS_UNITS)
        assert summary.admissions == len(CLASS_UNITS)

    def test_warm_class_still_serves_from_store(self, config):
        store = SelectionStore()
        warm = make_scheduler(config, store=store)
        warm.launch(request_for(config, CLASS_UNITS[0]))
        assert len(store) == 1

        pressured = make_scheduler(
            config, store=store, qos=always_deferring()
        )
        outcome = pressured.launch(request_for(config, CLASS_UNITS[0]))
        assert outcome.store_hit
        assert not outcome.deferred
        assert pressured.stats.profiles_deferred == 0


class TestStoreConvergesAfterPressureClears:
    def test_deferred_then_drained_matches_oracle(self, config):
        # Oracle: a clean fleet with no QoS serves the same classes.
        oracle_store = SelectionStore()
        oracle = make_scheduler(config, store=oracle_store)
        for units in CLASS_UNITS:
            outcome = oracle.launch(request_for(config, units))
            assert outcome.profiled
        oracle_map = {
            key: oracle_store.lookup(key).selected
            for key in oracle_store.keys()
        }
        assert set(oracle_map.values()) == {"fast"}

        # Overload phase: everything defers, nothing is published.
        store = SelectionStore()
        pressured = make_scheduler(
            config, store=store, qos=always_deferring()
        )
        for units in CLASS_UNITS:
            assert pressured.launch(request_for(config, units)).deferred
        assert len(store) == 0

        # Pressure cleared: a QoS-free scheduler over the same store
        # profiles the still-cold classes and lands on the oracle.
        drained = make_scheduler(config, store=store)
        for units in CLASS_UNITS:
            outcome = drained.launch(request_for(config, units))
            assert outcome.profiled
        assert {
            key: store.lookup(key).selected for key in store.keys()
        } == oracle_map

    def test_hysteresis_resumes_profiling_in_one_scheduler(self, config):
        """Same scheduler: deferring under queue pressure, profiling
        again after the queue drains below the resume watermark."""
        qos = QoSConfig(
            max_queue_depth=4,
            max_inflight=1,
            defer_watermark=0.5,
            resume_watermark=0.0,
        )
        scheduler = make_scheduler(config, qos=qos)
        barrier = threading.Barrier(4)
        outcomes = []
        lock = threading.Lock()

        def client(units):
            barrier.wait()
            outcome = scheduler.launch(request_for(config, units))
            with lock:
                outcomes.append(outcome)

        threads = [
            threading.Thread(target=client, args=(CLASS_UNITS[0],))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        assert len(outcomes) == 4

        # Queue empty again: the next cold class profiles normally.
        assert not scheduler.admission.deferring
        outcome = scheduler.launch(request_for(config, CLASS_UNITS[1]))
        assert outcome.profiled
        assert not outcome.deferred


class TestNoStarvationUnderPriorityLoad:
    def test_low_priority_tenant_completes(self, config):
        qos = QoSConfig(
            tenants=(
                TenantSpec("fg", priority=0),
                TenantSpec("bg", priority=9),
            ),
            max_queue_depth=32,
            max_inflight=1,
            max_bypass=2,
        )
        scheduler = make_scheduler(config, qos=qos)
        done = []
        lock = threading.Lock()

        def serve(tenant):
            outcome = scheduler.launch(
                request_for(config, CLASS_UNITS[0], tenant=tenant)
            )
            with lock:
                done.append(outcome.tenant)

        # Occupy the single slot so every client queues, making the
        # admission order a pure function of the controller's policy.
        scheduler.admission.admit("holder", priority=0, weight=1.0)
        threads = [threading.Thread(target=serve, args=("bg",))]
        threads[0].start()
        wait_until(lambda: scheduler.admission.snapshot()["waiting"] == 1)
        threads += [
            threading.Thread(target=serve, args=("fg",)) for _ in range(12)
        ]
        for t in threads[1:]:
            t.start()
        wait_until(lambda: scheduler.admission.snapshot()["waiting"] == 13)
        scheduler.admission.release("holder")
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)
        assert done.count("bg") == 1
        assert done.count("fg") == 12
        assert scheduler.stats.tenant("bg").requests == 1
        # Strict priority alone would finish bg dead last; after two
        # bypasses it ages (max_bypass=2) and, as the longest-waiting
        # aged request, beats the remaining foreground queue.
        assert done.index("bg") == 2


class TestBurstyManyClientTrace:
    def test_16_clients_reconcile_clean(self):
        config = ReproConfig(trace=True)
        tenants = (
            TenantProfile(
                "interactive",
                PoissonArrivals(4.0),
                FixedSizes(8),
                workloads=("axpy",),
                priority=0,
                deadline_cycles=1e9,
            ),
            TenantProfile(
                "burst",
                BurstyArrivals(
                    burst_rate=12.0, mean_burst=1.0, mean_gap=2.0
                ),
                FixedSizes(32),
                workloads=("axpy",),
                priority=1,
            ),
        )
        schedule = TrafficGenerator(tenants, seed=23, horizon=6.0).generate()
        assert schedule.count() >= 16
        replayer = TrafficReplayer(config, catalog=axpy_catalog())
        requests = replayer.serve_requests(schedule)

        qos = QoSConfig(
            tenants=tuple(
                TenantSpec(
                    t.name,
                    priority=t.priority,
                    deadline_cycles=t.deadline_cycles,
                )
                for t in tenants
            ),
            max_queue_depth=8,
            defer_watermark=0.5,
            resume_watermark=0.25,
        )
        scheduler = make_scheduler(config, qos=qos, devices=2, streams=2)
        rejected = []
        lock = threading.Lock()
        work = list(requests)

        def client():
            while True:
                with lock:
                    if not work:
                        return
                    request = work.pop()
                try:
                    scheduler.launch(request)
                except AdmissionRejected:
                    with lock:
                        rejected.append(request)

        threads = [threading.Thread(target=client) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads)

        served = len(requests) - len(rejected)
        assert served + len(rejected) == schedule.count()
        assert scheduler.stats.requests == served
        assert scheduler.stats.admission_rejects == len(rejected)
        assert reconcile(scheduler.tracer.events) == []
        summary = summarize(scheduler.tracer.events)
        assert summary.admissions == served
        assert summary.admission_rejects == len(rejected)
        assert summary.serve_enqueued == served
