"""Generator properties: determinism, tenant independence, replay files."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrafficError
from repro.traffic import (
    BurstyArrivals,
    FixedSizes,
    LognormalSizes,
    ParetoSizes,
    PoissonArrivals,
    SCHEDULE_SCHEMA_VERSION,
    ScheduledRequest,
    TenantProfile,
    TrafficGenerator,
    TrafficSchedule,
    bucket_units,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def make_profiles(names=("alpha", "beta")):
    return tuple(
        TenantProfile(
            name,
            PoissonArrivals(3.0 + i),
            LognormalSizes(64, sigma=0.8, max_units=1024),
            workloads=("wl-a", "wl-b"),
            weights=(0.7, 0.3),
            priority=i,
        )
        for i, name in enumerate(names)
    )


# ----------------------------------------------------------------------
# Size distributions
# ----------------------------------------------------------------------


@given(st.floats(min_value=1.0, max_value=2**20))
def test_bucket_units_is_power_of_two(raw):
    bucket = bucket_units(raw)
    assert bucket >= 1
    assert bucket & (bucket - 1) == 0
    # Nearest in log space: off by at most one octave.
    assert 0.5 < bucket / raw < 2.0


@given(
    st.one_of(
        st.builds(
            LognormalSizes,
            median=st.floats(min_value=1.0, max_value=4096.0),
            sigma=st.floats(min_value=0.0, max_value=2.0),
            max_units=st.just(1 << 16),
        ),
        st.builds(
            ParetoSizes,
            alpha=st.floats(min_value=0.5, max_value=4.0),
            min_units=st.integers(min_value=1, max_value=64),
            max_units=st.just(1 << 16),
        ),
    ),
    seeds,
)
def test_size_draws_bucketed_and_bounded(dist, seed):
    rng = np.random.default_rng(seed)
    for _ in range(50):
        draw = dist.draw(rng)
        assert draw >= 1
        assert draw & (draw - 1) == 0
        assert draw <= 2 * (1 << 16)  # bucketing may round the cap up once


def test_unbucketed_draws_pass_through():
    dist = LognormalSizes(100, sigma=0.0, bucketed=False)
    assert dist.draw(np.random.default_rng(0)) == 100


def test_fixed_sizes_and_validation():
    assert FixedSizes(7).draw(np.random.default_rng(0)) == 7
    for build in (
        lambda: FixedSizes(0),
        lambda: LognormalSizes(0.5),
        lambda: LognormalSizes(10, sigma=-1),
        lambda: LognormalSizes(10, min_units=8, max_units=4),
        lambda: ParetoSizes(0.0),
        lambda: ParetoSizes(1.0, min_units=0),
    ):
        with pytest.raises(TrafficError):
            build()


# ----------------------------------------------------------------------
# Generation: determinism and independence
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_generate_is_deterministic(seed):
    profiles = make_profiles()
    a = TrafficGenerator(profiles, seed=seed, horizon=10.0).generate()
    b = TrafficGenerator(profiles, seed=seed, horizon=10.0).generate()
    assert a == b


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_tenant_order_does_not_matter(seed):
    """Reordering the profile tuple yields the identical merged schedule."""
    profiles = make_profiles()
    fwd = TrafficGenerator(profiles, seed=seed, horizon=10.0).generate()
    rev = TrafficGenerator(
        tuple(reversed(profiles)), seed=seed, horizon=10.0
    ).generate()
    assert fwd == rev


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_adding_a_tenant_preserves_existing_streams(seed):
    """Tenant substreams are independent: a new tenant perturbs nothing."""
    base = make_profiles(("alpha", "beta"))
    grown = make_profiles(("alpha", "beta", "gamma"))
    before = TrafficGenerator(base, seed=seed, horizon=10.0).generate()
    after = TrafficGenerator(grown, seed=seed, horizon=10.0).generate()

    def stream(schedule, tenant):
        return [r for r in schedule.requests if r.tenant == tenant]

    for tenant in ("alpha", "beta"):
        assert stream(before, tenant) == stream(after, tenant)


def test_schedule_sorted_and_indexed():
    schedule = TrafficGenerator(
        make_profiles(), seed=11, horizon=20.0
    ).generate()
    times = [r.time for r in schedule.requests]
    assert times == sorted(times)
    for tenant in schedule.tenants():
        indices = [
            r.index for r in schedule.requests if r.tenant == tenant
        ]
        assert indices == list(range(len(indices)))


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_observed_rate_within_tolerance(seed):
    profile = TenantProfile(
        "solo", PoissonArrivals(5.0), FixedSizes(32)
    )
    schedule = TrafficGenerator(
        (profile,), seed=seed, horizon=400.0
    ).generate()
    assert schedule.observed_rate("solo") == pytest.approx(5.0, rel=0.15)


def test_zero_weight_workload_never_picked():
    profile = TenantProfile(
        "picky",
        PoissonArrivals(10.0),
        FixedSizes(16),
        workloads=("always", "never"),
        weights=(1.0, 0.0),
    )
    schedule = TrafficGenerator((profile,), seed=5, horizon=20.0).generate()
    assert schedule.count() > 0
    assert {r.workload for r in schedule.requests} == {"always"}


def test_rows_carry_qos_contract():
    profile = TenantProfile(
        "sla",
        PoissonArrivals(5.0),
        FixedSizes(16),
        priority=0,
        deadline_cycles=1e6,
    )
    schedule = TrafficGenerator((profile,), seed=1, horizon=5.0).generate()
    assert all(r.priority == 0 for r in schedule.requests)
    assert all(r.deadline_cycles == 1e6 for r in schedule.requests)


# ----------------------------------------------------------------------
# Replay files
# ----------------------------------------------------------------------


def test_save_load_roundtrip(tmp_path):
    schedule = TrafficGenerator(
        make_profiles(), seed=42, horizon=10.0
    ).generate()
    path = str(tmp_path / "sched.json")
    schedule.save(path)
    assert TrafficSchedule.load(path) == schedule


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "sched.json"
    path.write_text(
        json.dumps(
            {
                "schema_version": SCHEDULE_SCHEMA_VERSION + 1,
                "seed": 0,
                "horizon": 1.0,
                "requests": [],
            }
        )
    )
    with pytest.raises(TrafficError, match="schema_version"):
        TrafficSchedule.load(str(path))


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all",
        json.dumps([1, 2, 3]),
        json.dumps({"schema_version": 1, "seed": 0, "horizon": 1.0}),
        json.dumps(
            {
                "schema_version": 1,
                "seed": 0,
                "horizon": 1.0,
                "requests": [{"bogus": True}],
            }
        ),
    ],
)
def test_load_rejects_malformed(tmp_path, payload):
    path = tmp_path / "bad.json"
    path.write_text(payload)
    with pytest.raises(TrafficError):
        TrafficSchedule.load(str(path))


def test_load_missing_file_raises():
    with pytest.raises(TrafficError):
        TrafficSchedule.load("/nonexistent/sched.json")


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_generator_validation():
    profile = make_profiles(("solo",))
    with pytest.raises(TrafficError):
        TrafficGenerator(())
    with pytest.raises(TrafficError):
        TrafficGenerator(profile + profile)
    with pytest.raises(TrafficError):
        TrafficGenerator(profile, horizon=0.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"name": ""},
        {"workloads": ()},
        {"workloads": ("a", "b"), "weights": (1.0,)},
        {"workloads": ("a", "b"), "weights": (0.0, 0.0)},
        {"workloads": ("a", "b"), "weights": (-1.0, 2.0)},
        {"priority": -1},
        {"weight": 0.0},
        {"deadline_cycles": 0.0},
    ],
)
def test_tenant_profile_validation(kwargs):
    base = {
        "name": "t",
        "arrivals": PoissonArrivals(1.0),
        "sizes": FixedSizes(8),
    }
    base.update(kwargs)
    with pytest.raises(TrafficError):
        TenantProfile(**base)


def test_schedule_helpers_on_empty():
    empty = TrafficSchedule(seed=0, horizon=0.0)
    assert empty.tenants() == ()
    assert empty.count() == 0
    assert empty.observed_rate() == 0.0


def test_scheduled_request_defaults():
    row = ScheduledRequest(time=1.0, tenant="t", workload="w", units=8)
    assert row.priority == 1
    assert row.deadline_cycles is None
    assert row.index == 0


def test_bursty_generator_mixes_states():
    profile = TenantProfile(
        "bursty",
        BurstyArrivals(burst_rate=20.0, mean_burst=1.0, mean_gap=3.0),
        ParetoSizes(1.5, min_units=8, max_units=256),
    )
    schedule = TrafficGenerator((profile,), seed=9, horizon=60.0).generate()
    assert schedule.count() > 0
    assert schedule.observed_rate() == pytest.approx(
        profile.arrivals.mean_rate(), rel=0.5
    )
