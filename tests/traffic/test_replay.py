"""Replayer units: the default catalog, case caching, and request rows."""

from __future__ import annotations

import pytest

from repro.config import ReproConfig
from repro.errors import TrafficError
from repro.traffic import (
    DEFAULT_WORKLOADS,
    FixedSizes,
    PoissonArrivals,
    TenantProfile,
    TrafficGenerator,
    TrafficReplayer,
    default_catalog,
)

from tests.traffic.conftest import axpy_catalog


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


@pytest.fixture(scope="module")
def replayer(config):
    return TrafficReplayer(config)


class TestDefaultCatalog:
    def test_covers_every_default_workload(self):
        assert set(default_catalog()) == set(DEFAULT_WORKLOADS)

    @pytest.mark.parametrize("workload", DEFAULT_WORKLOADS)
    def test_every_builder_yields_a_servable_case(self, replayer, workload):
        case = replayer.case_for(workload, 600)
        # The case's own units — not the raw draw — back the request,
        # so sizes always match the buffers behind them.
        assert case.workload_units > 0
        assert case.pool.name
        assert len(case.pool.variants) >= 2
        assert callable(case.make_args)

    @pytest.mark.parametrize("workload", DEFAULT_WORKLOADS)
    def test_draws_clamp_instead_of_exploding(self, replayer, workload):
        tiny = replayer.case_for(workload, 1)
        huge = replayer.case_for(workload, 1 << 30)
        assert 0 < tiny.workload_units <= huge.workload_units

    def test_distinct_buckets_distinct_cases_same_pool(self, replayer):
        small = replayer.case_for("spmv-csr/random", 1024)
        large = replayer.case_for("spmv-csr/random", 8192)
        assert small is not large
        assert small.workload_units != large.workload_units
        assert small.pool.name == large.pool.name


class TestReplayerSurface:
    def test_case_for_caches_per_bucket(self, replayer):
        assert replayer.case_for("kmeans", 256) is replayer.case_for(
            "kmeans", 256
        )

    def test_unknown_workload_is_a_structured_error(self, replayer):
        with pytest.raises(TrafficError, match="not in the replay catalog"):
            replayer.case_for("made-up", 128)

    def test_requests_carry_schedule_row_contracts(self, config):
        profile = TenantProfile(
            "t",
            PoissonArrivals(8.0),
            FixedSizes(32),
            workloads=("axpy",),
            priority=3,
            deadline_cycles=5e6,
        )
        schedule = TrafficGenerator(
            (profile,), seed=7, horizon=2.0
        ).generate()
        assert schedule.count() > 0
        replayer = TrafficReplayer(config, catalog=axpy_catalog())
        requests = replayer.serve_requests(schedule)
        assert len(requests) == schedule.count()
        seen_args = set()
        for row, request in zip(schedule.requests, requests):
            assert request.tenant == row.tenant == "t"
            assert request.priority == 3
            assert request.deadline_cycles == 5e6
            case = replayer.case_for(row.workload, row.units)
            assert request.workload_units == case.workload_units
            # Fresh buffers per request: outputs are written.
            assert id(request.args) not in seen_args
            seen_args.add(id(request.args))

    def test_pools_dedupe_by_kernel_name(self, config):
        profile = TenantProfile(
            "t",
            PoissonArrivals(8.0),
            FixedSizes(32),
            workloads=("axpy", "axpy2"),
        )
        schedule = TrafficGenerator(
            (profile,), seed=11, horizon=2.0
        ).generate()
        replayer = TrafficReplayer(
            config, catalog=axpy_catalog(names=("axpy", "axpy2"))
        )
        pools = replayer.pools(schedule)
        # Both catalog names resolve to one shared pool instance.
        assert len(pools) == 1

    def test_checker_resolves_the_row_case_validator(self, config):
        profile = TenantProfile(
            "t", PoissonArrivals(8.0), FixedSizes(32), workloads=("axpy",)
        )
        schedule = TrafficGenerator(
            (profile,), seed=13, horizon=1.0
        ).generate()
        replayer = TrafficReplayer(config, catalog=axpy_catalog())
        for row in schedule.requests:
            assert callable(replayer.checker(row))
