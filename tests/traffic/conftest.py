"""Traffic-test helpers: a cheap axpy-backed replay catalog.

The real :func:`repro.traffic.replay.default_catalog` resolves the 10
paper workloads, which is what the bench exercises; tests that serve
hundreds of requests concurrently use this synthetic catalog instead —
one shared two-variant axpy pool where ``fast`` beats ``slow`` by
construction, so the warm-store oracle is known without profiling.
"""

from __future__ import annotations

from repro.workloads.base import BenchmarkCase

from tests.conftest import (
    axpy_output_ok,
    fast_slow_pool_build,
    make_axpy_args,
)


def axpy_catalog(names=("axpy",), lo: int = 8, hi: int = 64):
    """A replay catalog mapping each name onto the shared axpy pool.

    All names share one pool *instance* (the replayer dedupes pools by
    kernel name, so re-registration churn never happens); distinct unit
    draws still produce distinct workload classes because the class
    signature includes the unit count.
    """
    pool = fast_slow_pool_build()

    def build(units: int, config) -> BenchmarkCase:
        n = max(lo, min(hi, units))
        return BenchmarkCase(
            name=f"axpy/{n}",
            pool=pool,
            make_args=lambda: make_axpy_args(n, config),
            workload_units=n,
            check=axpy_output_ok,
        )

    return {name: build for name in names}
