"""AdmissionController units: ordering, bounds, aging, and hysteresis."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import AdmissionRejected, ServeError
from repro.serve import AdmissionController, QoSConfig, TenantSpec

TIMEOUT = 5.0


def wait_until(predicate, timeout=TIMEOUT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.001)
    raise AssertionError("condition not reached in time")


class Client:
    """One admit() call on its own thread, with an observable outcome."""

    def __init__(self, controller, tenant, priority=1, weight=1.0,
                 deadline=None, order=None):
        self.controller = controller
        self.tenant = tenant
        self.order = order if order is not None else []
        self.admitted = threading.Event()
        self.error = None
        self.thread = threading.Thread(
            target=self._run, args=(priority, weight, deadline), daemon=True
        )

    def _run(self, priority, weight, deadline):
        try:
            self.controller.admit(self.tenant, priority, weight, deadline)
        except AdmissionRejected as exc:
            self.error = exc
            return
        self.order.append(self.tenant)
        self.admitted.set()

    def start(self):
        self.thread.start()
        return self

    def finish(self):
        """Release this client's slot after it was admitted."""
        assert self.admitted.wait(TIMEOUT), f"{self.tenant} never admitted"
        self.controller.release(self.tenant)


def drain(controller, clients):
    """Admit queued clients one at a time, recording the order."""
    finished = set()
    for _ in range(len(clients)):
        wait_until(
            lambda: any(
                c.admitted.is_set() and id(c) not in finished
                for c in clients
            )
        )
        ready = [
            c
            for c in clients
            if c.admitted.is_set() and id(c) not in finished
        ]
        assert len(ready) == 1, "one release admits exactly one waiter"
        ready[0].finish()
        finished.add(id(ready[0]))


def make_controller(capacity=1, **kwargs):
    kwargs.setdefault("max_queue_depth", 16)
    return AdmissionController(QoSConfig(**kwargs), capacity=capacity)


def occupy(controller, tenant="holder"):
    assert controller.admit(tenant, priority=0, weight=1.0) == 0
    return tenant


def queue_up(controller, specs, order):
    """Start one blocked client per spec and wait until all are queued."""
    base = controller.snapshot()["waiting"]
    clients = []
    for spec in specs:
        clients.append(
            Client(controller, order=order, **spec).start()
        )
        # Enqueue one at a time so ticket order matches spec order.
        wait_until(
            lambda n=base + len(clients): (
                controller.snapshot()["waiting"] == n
            )
        )
    return clients


def test_immediate_admission_under_capacity():
    controller = make_controller(capacity=2)
    assert controller.admit("a", 1, 1.0) == 0
    assert controller.admit("b", 1, 1.0) == 0
    snap = controller.snapshot()
    assert snap["inflight"] == 2
    assert snap["admitted"] == 2
    assert snap["waiting"] == 0


def test_bounded_queue_rejects_with_structured_error():
    controller = make_controller(capacity=1, max_queue_depth=1)
    occupy(controller)
    order = []
    queue_up(controller, [{"tenant": "queued"}], order)
    with pytest.raises(AdmissionRejected) as exc_info:
        controller.admit("spill", 1, 1.0)
    exc = exc_info.value
    assert exc.tenant == "spill"
    assert exc.queue_depth == 1
    assert exc.limit == 1
    snap = controller.snapshot()
    assert snap["rejected"] == 1
    assert snap["rejected_by_tenant"] == {"spill": 1}


def test_strict_priority_classes_admit_highest_first():
    controller = make_controller(capacity=1)
    holder = occupy(controller)
    order = []
    clients = queue_up(
        controller,
        [
            {"tenant": "low", "priority": 2},
            {"tenant": "high", "priority": 0},
            {"tenant": "mid", "priority": 1},
        ],
        order,
    )
    controller.release(holder)
    drain(controller, clients)
    assert order == ["high", "mid", "low"]


def test_edf_within_a_priority_class():
    controller = make_controller(capacity=1)
    holder = occupy(controller)
    order = []
    clients = queue_up(
        controller,
        [
            {"tenant": "late", "deadline": 30.0},
            {"tenant": "soon", "deadline": 10.0},
            {"tenant": "mid", "deadline": 20.0},
            {"tenant": "never"},  # no deadline sorts last
        ],
        order,
    )
    controller.release(holder)
    drain(controller, clients)
    assert order == ["soon", "mid", "late", "never"]


def test_weighted_fair_share_prefers_underserved_tenant():
    controller = make_controller(capacity=2)
    # Both slots held by "a"; its inflight-per-weight is 2/1.
    occupy(controller, "a")
    occupy(controller, "a")
    order = []
    clients = queue_up(
        controller,
        [
            {"tenant": "a", "weight": 1.0},
            {"tenant": "b", "weight": 1.0},
        ],
        order,
    )
    controller.release("a")
    wait_until(lambda: len(order) == 1)
    # "b" has zero inflight; it wins despite "a" arriving first.
    assert order == ["b"]
    controller.release("a")
    drain(controller, [c for c in clients if c.tenant == "a"])
    assert order == ["b", "a"]


def test_aging_promotes_bypassed_waiter():
    """A sustained high-priority stream cannot starve a queued tenant.

    Fresh foreground arrivals always have zero bypasses while the
    background waiter accumulates one per admission; once it crosses
    ``max_bypass`` it preempts strictly-higher-priority newcomers.
    """
    controller = make_controller(capacity=1, max_bypass=2)
    holder = occupy(controller)
    order = []
    clients = queue_up(
        controller,
        [
            {"tenant": "bg", "priority": 5},
            {"tenant": "fg1", "priority": 0},
        ],
        order,
    )
    controller.release(holder)
    wait_until(lambda: len(order) == 1)  # fg1 in; bg bypassed once
    clients += queue_up(controller, [{"tenant": "fg2", "priority": 0}], order)
    clients[1].finish()
    wait_until(lambda: len(order) == 2)  # fg2 in; bg bypassed twice
    clients += queue_up(controller, [{"tenant": "fg3", "priority": 0}], order)
    drain(controller, [c for c in clients if c.tenant != "fg1"])
    # bg aged past max_bypass=2, so it beats the fresh fg3.
    assert order == ["fg1", "fg2", "bg", "fg3"]


def test_hysteresis_engages_and_releases():
    controller = make_controller(
        capacity=1,
        max_queue_depth=4,
        defer_watermark=0.5,
        resume_watermark=0.25,
    )
    holder = occupy(controller)
    assert not controller.deferring
    order = []
    clients = queue_up(
        controller, [{"tenant": f"t{i}"} for i in range(2)], order
    )
    # 2 waiting / 4 bound = 0.5 >= defer watermark.
    assert controller.deferring
    assert controller.pressure() == pytest.approx(0.5)
    controller.release(holder)
    wait_until(lambda: len(order) == 1)
    # 1 waiting / 4 = 0.25 <= resume watermark: released.
    assert not controller.deferring
    assert controller.snapshot()["defer_transitions"] == 1
    order[:] = []
    drain(controller, clients)


def test_zero_watermark_defers_permanently():
    controller = make_controller(capacity=4, defer_watermark=0.0,
                                 resume_watermark=0.0)
    assert not controller.deferring  # nothing admitted yet
    controller.admit("a", 1, 1.0)
    assert controller.deferring  # engaged from the very first admit
    controller.release("a")
    assert controller.deferring  # and pinned: resume never fires


def test_high_watermark_never_defers():
    controller = make_controller(
        capacity=1, max_queue_depth=2, defer_watermark=2.0,
        resume_watermark=0.0,
    )
    holder = occupy(controller)
    order = []
    clients = queue_up(
        controller, [{"tenant": f"t{i}"} for i in range(2)], order
    )
    assert controller.pressure() == pytest.approx(1.0)
    assert not controller.deferring
    controller.release(holder)
    drain(controller, clients)


def test_release_without_waiters_is_safe():
    controller = make_controller(capacity=1)
    occupy(controller, "a")
    controller.release("a")
    controller.release("ghost")  # over-release must not wedge state
    assert controller.snapshot()["inflight"] == 0
    assert controller.admit("b", 1, 1.0) == 0


def test_bypass_count_returned_to_caller():
    controller = make_controller(capacity=1)
    holder = occupy(controller)
    results = {}

    def run(tenant, priority):
        results[tenant] = controller.admit(tenant, priority, 1.0)

    threads = [threading.Thread(target=run, args=("slow", 9), daemon=True)]
    threads[0].start()
    wait_until(lambda: controller.snapshot()["waiting"] == 1)
    threads.append(
        threading.Thread(target=run, args=("fast", 0), daemon=True)
    )
    threads[-1].start()
    wait_until(lambda: controller.snapshot()["waiting"] == 2)
    controller.release(holder)
    wait_until(lambda: "fast" in results)
    controller.release("fast")
    wait_until(lambda: "slow" in results)
    controller.release("slow")
    assert results["fast"] == 0
    assert results["slow"] == 1  # bypassed once by the fast tenant


def test_capacity_validation():
    with pytest.raises(ServeError):
        AdmissionController(QoSConfig(), capacity=0)


def test_qos_config_validation():
    with pytest.raises(ServeError):
        QoSConfig(max_queue_depth=0)
    with pytest.raises(ServeError):
        QoSConfig(max_inflight=0)
    with pytest.raises(ServeError):
        QoSConfig(defer_watermark=-0.1)
    with pytest.raises(ServeError):
        QoSConfig(defer_watermark=0.25, resume_watermark=0.5)
    with pytest.raises(ServeError):
        QoSConfig(max_bypass=0)
    with pytest.raises(ServeError):
        QoSConfig(tenants=(TenantSpec("a"), TenantSpec("a")))


def test_tenant_spec_validation():
    with pytest.raises(ServeError):
        TenantSpec("")
    with pytest.raises(ServeError):
        TenantSpec("t", priority=-1)
    with pytest.raises(ServeError):
        TenantSpec("t", weight=0.0)
    with pytest.raises(ServeError):
        TenantSpec("t", deadline_cycles=0.0)


def test_spec_resolution():
    listed = TenantSpec("vip", priority=0, weight=4.0)
    config = QoSConfig(
        tenants=(listed,),
        default_tenant=TenantSpec("default", priority=3),
    )
    assert config.spec("vip") == listed
    assert config.spec(None) == config.default_tenant
    assert config.spec("default") == config.default_tenant
    anon = config.spec("walk-in")
    assert anon.name == "walk-in"
    assert anon.priority == 3
