"""The CART tree: fitting, calibration, deterministic payload round-trips."""

import pytest

from repro.errors import PredictError
from repro.predict import DecisionTree

#: Linearly separable two-class toy set (feature 0 splits at 2.5).
SEPARABLE = [
    ((1.0, 7.0), "low", 1.0),
    ((2.0, 3.0), "low", 1.0),
    ((3.0, 9.0), "high", 1.0),
    ((4.0, 1.0), "high", 1.0),
]


class TestFitValidation:
    def test_zero_examples_rejected(self):
        with pytest.raises(PredictError):
            DecisionTree().fit([])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(PredictError):
            DecisionTree().fit([((1.0,), "a", 0.0)])

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(PredictError):
            DecisionTree().fit([((1.0,), "a", 1.0), ((1.0, 2.0), "b", 1.0)])

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(PredictError):
            DecisionTree(max_depth=0)
        with pytest.raises(PredictError):
            DecisionTree(min_leaf_weight=0.0)


class TestPrediction:
    def test_unfitted_tree_predicts_none(self):
        assert DecisionTree().predict((1.0,)) is None

    def test_separable_data_is_learned_exactly(self):
        tree = DecisionTree().fit(SEPARABLE)
        for vector, label, _ in SEPARABLE:
            assert tree.predict(vector).variant == label

    def test_classes_are_sorted(self):
        tree = DecisionTree().fit(SEPARABLE)
        assert tree.classes == ("high", "low")

    def test_tie_breaks_lexicographically(self):
        tree = DecisionTree(max_depth=1, min_leaf_weight=2.0).fit(
            [((1.0,), "b", 1.0), ((1.0,), "a", 1.0)]
        )
        assert tree.predict((1.0,)).variant == "a"

    def test_confidence_grows_with_evidence(self):
        thin = DecisionTree().fit(SEPARABLE)
        fat = DecisionTree().fit(
            [(v, label, 10.0) for v, label, _ in SEPARABLE]
        )
        lean = thin.predict((1.0, 7.0)).confidence
        trusted = fat.predict((1.0, 7.0)).confidence
        assert lean < trusted <= 1.0
        # Laplace smoothing: a 2-weight pure leaf among 2 classes reads
        # (2+1)/(2+2) = 0.75.
        assert lean == pytest.approx(0.75)

    def test_weight_steers_the_majority(self):
        tree = DecisionTree(max_depth=1, min_leaf_weight=10.0).fit(
            [((1.0,), "minority", 1.0), ((2.0,), "majority", 5.0)]
        )
        assert tree.predict((1.5,)).variant == "majority"


class TestDeterminism:
    def test_refit_rebuilds_the_identical_tree(self):
        a = DecisionTree().fit(SEPARABLE)
        b = DecisionTree().fit(list(reversed(SEPARABLE)))
        assert a.to_payload() == b.to_payload()


class TestPersistence:
    def test_payload_round_trip(self):
        tree = DecisionTree(max_depth=4, min_leaf_weight=1.0).fit(SEPARABLE)
        clone = DecisionTree.from_payload(tree.to_payload())
        assert clone.to_payload() == tree.to_payload()
        for vector, _, _ in SEPARABLE:
            assert clone.predict(vector) == tree.predict(vector)

    def test_unfitted_round_trip(self):
        clone = DecisionTree.from_payload(DecisionTree().to_payload())
        assert clone.predict((0.0,)) is None

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},  # missing max_depth
            {"max_depth": 2, "min_leaf_weight": 1.0, "classes": "nope",
             "root": None},
            {"max_depth": 2, "min_leaf_weight": 1.0, "classes": [1],
             "root": None},
            {"max_depth": 0, "min_leaf_weight": 1.0, "classes": [],
             "root": None},
        ],
    )
    def test_malformed_payload_rejected(self, payload):
        with pytest.raises(PredictError):
            DecisionTree.from_payload(payload)

    @pytest.mark.parametrize(
        "root",
        [
            "leafish",
            {"counts": {}},
            {"counts": {"a": 0.0}},
            {"counts": {1: 1.0}},
            {"feature": -1, "threshold": 1.0,
             "low": {"counts": {"a": 1.0}}, "high": {"counts": {"a": 1.0}}},
            {"feature": 0, "threshold": "mid",
             "low": {"counts": {"a": 1.0}}, "high": {"counts": {"a": 1.0}}},
            {"feature": 0, "threshold": 1.0, "low": None,
             "high": {"counts": {"a": 1.0}}},
        ],
    )
    def test_malformed_node_rejected(self, root):
        payload = {
            "max_depth": 3,
            "min_leaf_weight": 1.0,
            "classes": ["a"],
            "root": root,
        }
        with pytest.raises(PredictError):
            DecisionTree.from_payload(payload)
