"""The online predictor: training, gating, corrections, persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PredictError
from repro.predict import PredictConfig, SelectionPredictor


def key(units: int, kernel: str = "k", kind: str = "cpu") -> str:
    """A minimal parseable workload-class key with one numeric feature."""
    return f"{kernel}|{kind}|units^2={units}"


def trained(config: PredictConfig, labels: dict) -> SelectionPredictor:
    """A predictor taught ``{units bucket: winner}``."""
    predictor = SelectionPredictor(config)
    for units, label in labels.items():
        assert predictor.learn(key(units), label)
    return predictor


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"confidence_threshold": 0.0},
            {"confidence_threshold": 1.5},
            {"min_examples": 0},
            {"max_examples": 2, "min_examples": 5},
            {"max_depth": 0},
            {"min_leaf_weight": 0.0},
            {"correction_weight": -1.0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(PredictError):
            PredictConfig(**kwargs)

    def test_defaults_are_valid(self):
        PredictConfig()


class TestTraining:
    def test_unparseable_key_learns_nothing(self):
        predictor = SelectionPredictor()
        assert not predictor.learn("just-a-kernel", "fast")
        assert len(predictor) == 0

    def test_non_positive_weight_learns_nothing(self):
        predictor = SelectionPredictor()
        assert not predictor.learn(key(4), "fast", weight=0.0)
        assert len(predictor) == 0

    def test_repeat_evidence_accumulates_weight(self):
        config = PredictConfig(min_examples=1)
        predictor = trained(config, {4: "fast"})
        predictor.learn(key(4), "fast")
        predictor.learn(key(4), "fast")
        assert len(predictor) == 1  # still one distinct class
        assert predictor.stats.examples == 3
        # 3 accumulated weight, one class: (3+1)/(3+1) = 1.0.
        assert predictor.predict(key(4)).confidence == 1.0

    def test_contradicting_evidence_replaces_the_label(self):
        config = PredictConfig(min_examples=1)
        predictor = trained(config, {4: "old"})
        predictor.learn(key(4), "new")
        assert predictor.predict(key(4)).variant == "new"

    def test_bounded_example_set_evicts_oldest(self):
        config = PredictConfig(min_examples=1, max_examples=3)
        predictor = trained(config, {1: "a", 2: "a", 3: "a"})
        predictor.learn(key(4), "a")
        assert len(predictor) == 3
        # The evicted class no longer matches any retained bucket; the
        # group still predicts (it has examples), so check the roster.
        assert predictor.stats.examples == 4

    def test_groups_split_per_kernel_and_kind(self):
        predictor = SelectionPredictor(PredictConfig(min_examples=1))
        predictor.learn(key(4, kernel="a"), "x")
        predictor.learn(key(4, kernel="b"), "y")
        predictor.learn(key(4, kernel="a", kind="gpu"), "z")
        assert predictor.groups() == (
            ("a", "cpu"), ("a", "gpu"), ("b", "cpu")
        )
        assert predictor.predict(key(4, kernel="a")).variant == "x"
        assert predictor.predict(key(4, kernel="b")).variant == "y"


class TestServing:
    def test_untrained_group_predicts_none(self):
        predictor = SelectionPredictor()
        assert predictor.predict(key(4)) is None

    def test_unparseable_key_predicts_none(self):
        predictor = trained(PredictConfig(min_examples=1), {4: "a"})
        assert predictor.predict("nokey") is None

    def test_min_examples_gates_prediction(self):
        config = PredictConfig(min_examples=3)
        predictor = trained(config, {1: "a", 2: "a"})
        assert predictor.predict(key(1)) is None
        predictor.learn(key(3), "a")
        assert predictor.predict(key(1)) is not None

    def test_confident_compares_against_threshold(self):
        config = PredictConfig(min_examples=1, confidence_threshold=0.9)
        predictor = trained(config, {4: "a"})
        sure = predictor.predict(key(4))
        assert sure.confidence == 1.0
        assert predictor.confident(sure)
        assert not predictor.confident(None)
        low = PredictConfig(min_examples=1, confidence_threshold=0.7)
        mixed = SelectionPredictor(low)
        mixed.learn(key(1), "a")
        mixed.learn(key(1000), "b")
        guess = mixed.predict(key(500))
        # A 1-weight pure leaf among 2 classes reads (1+1)/(1+2) ~ 0.67.
        assert guess.confidence == pytest.approx(2.0 / 3.0)
        assert not mixed.confident(guess)

    def test_refits_are_lazy(self):
        predictor = trained(
            PredictConfig(min_examples=1), {1: "a", 2: "b"}
        )
        predictor.predict(key(1))
        refits = predictor.stats.refits
        predictor.predict(key(2))  # no new evidence: no refit
        assert predictor.stats.refits == refits
        predictor.learn(key(3), "b")
        predictor.predict(key(3))
        assert predictor.stats.refits == refits + 1


class TestCorrections:
    def test_correction_replaces_and_outweighs(self):
        config = PredictConfig(min_examples=1, correction_weight=4.0)
        predictor = trained(config, {4: "stale"})
        assert predictor.correct(key(4), "fresh")
        assert predictor.stats.corrections == 1
        guess = predictor.predict(key(4))
        assert guess.variant == "fresh"
        # Correction weight drives calibration: (4+1)/(4+1) = 1.0.
        assert guess.confidence == 1.0

    def test_correction_on_unparseable_key_is_a_noop(self):
        predictor = SelectionPredictor()
        assert not predictor.correct("nokey", "fresh")
        assert predictor.stats.corrections == 0


class TestPersistence:
    def test_payload_round_trip_preserves_predictions_and_stats(self):
        config = PredictConfig(min_examples=2)
        predictor = trained(config, {1: "a", 10: "b"})
        predictor.correct(key(10), "b")
        payload = predictor.to_payload()
        clone = SelectionPredictor(config)
        clone.load_payload(payload)
        for units in (1, 10):
            assert clone.predict(key(units)) == predictor.predict(key(units))
        assert clone.stats.corrections == 1
        assert len(clone) == 2

    def test_from_payload_restores_the_snapshot_config(self):
        config = PredictConfig(min_examples=2, confidence_threshold=0.55)
        payload = trained(config, {1: "a", 10: "b"}).to_payload()
        clone = SelectionPredictor.from_payload(payload)
        assert clone.config == config

    def test_load_payload_keeps_own_config(self):
        snapshot = trained(
            PredictConfig(min_examples=1), {1: "a"}
        ).to_payload()
        mine = PredictConfig(min_examples=5)
        predictor = SelectionPredictor(mine)
        predictor.load_payload(snapshot)
        assert predictor.config == mine

    @pytest.mark.parametrize(
        "payload",
        [
            "nope",
            {"groups": "nope"},
            {"groups": [[]]},
            {"groups": [{"kernel": 1, "device_kind": "cpu"}]},
            {"groups": [{"kernel": "k", "device_kind": "cpu",
                         "examples": "nope"}]},
            {"groups": [{"kernel": "k", "device_kind": "cpu",
                         "examples": [{"vector": [1.0], "label": "a",
                                       "weight": -1.0}]}]},
            {"groups": [{"kernel": "k", "device_kind": "cpu",
                         "examples": [], "tree": "nope"}]},
            {"groups": [], "stats": "nope"},
            {"groups": [], "stats": {"examples": -3}},
        ],
    )
    def test_malformed_payload_rejected(self, payload):
        predictor = SelectionPredictor()
        with pytest.raises(PredictError):
            predictor.load_payload(payload)

    def test_rejected_load_is_all_or_nothing(self):
        predictor = trained(PredictConfig(min_examples=1), {4: "keep"})
        with pytest.raises(PredictError):
            predictor.load_payload(
                {"groups": [], "stats": {"examples": -1}}
            )
        # The failed load must not have wiped the live state.
        assert predictor.predict(key(4)).variant == "keep"

    def test_from_payload_rejects_malformed_config(self):
        with pytest.raises(PredictError):
            SelectionPredictor.from_payload(
                {"config": {"mystery_knob": 3}, "groups": []}
            )
        with pytest.raises(PredictError):
            SelectionPredictor.from_payload(
                {"config": {"min_examples": 0}, "groups": []}
            )
        with pytest.raises(PredictError):
            SelectionPredictor.from_payload({"config": "nope"})


class TestOracleAccuracy:
    """Synthetic-history property: a predictor trained on a noise-free
    threshold oracle must reproduce it exactly on its training classes —
    the store's accumulated history is precisely such an oracle when the
    regime boundary falls on a bucket edge."""

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=5, max_value=20),
        st.sets(st.integers(min_value=0, max_value=63), min_size=2,
                max_size=24),
    )
    def test_threshold_oracle_is_learned_exactly(self, boundary, buckets):
        def oracle(units: int) -> str:
            return "small-winner" if units < boundary else "large-winner"

        predictor = SelectionPredictor(PredictConfig(min_examples=1))
        for units in sorted(buckets):
            predictor.learn(key(units), oracle(units))
        correct = sum(
            predictor.predict(key(units)).variant == oracle(units)
            for units in buckets
        )
        assert correct == len(buckets)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=5, max_value=20))
    def test_extremes_generalize(self, boundary):
        def oracle(units: int) -> str:
            return "small-winner" if units < boundary else "large-winner"

        predictor = SelectionPredictor(PredictConfig(min_examples=1))
        for units in (boundary - 2, boundary - 1, boundary, boundary + 1):
            predictor.learn(key(units), oracle(units))
        # Unseen classes far from the boundary fall in pure leaves.
        assert predictor.predict(key(0)).variant == "small-winner"
        assert predictor.predict(key(63)).variant == "large-winner"
