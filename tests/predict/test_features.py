"""Key parsing: workload-class keys → fixed-width numeric vectors."""

import numpy as np

from repro.predict import FEATURE_NAMES, MISSING, parse_key
from repro.serve.signature import derive_signature
from tests.conftest import make_axpy_args
from repro.config import ReproConfig


def column(name: str) -> int:
    return FEATURE_NAMES.index(name)


class TestParseKey:
    def test_decodes_kernel_kind_and_features(self):
        parsed = parse_key("spmv|cpu|m.nnz^2=13|m.rows^2=11|units^2=9")
        assert parsed is not None
        assert parsed.kernel == "spmv"
        assert parsed.device_kind == "cpu"
        assert parsed.vector[column("units")] == 9.0
        assert parsed.vector[column("rows")] == 11.0
        assert parsed.vector[column("nnz")] == 13.0

    def test_vector_width_is_stable(self):
        parsed = parse_key("k|cpu|units^2=1")
        assert len(parsed.vector) == len(FEATURE_NAMES)

    def test_absent_features_read_missing(self):
        parsed = parse_key("k|cpu|units^2=4")
        assert parsed.vector[column("units")] == 4.0
        assert parsed.vector[column("nnz")] == MISSING
        assert parsed.vector[column("empty")] == MISSING

    def test_argument_prefix_is_dropped(self):
        a = parse_key("k|cpu|m.rows^2=7")
        b = parse_key("k|cpu|a.rows^2=7")
        assert a.vector == b.vector

    def test_first_argument_wins_on_duplicate_features(self):
        # Keys list features sorted, so "a." precedes "m.".
        parsed = parse_key("k|cpu|a.rows^2=3|m.rows^2=9")
        assert parsed.vector[column("rows")] == 3.0

    def test_unknown_and_malformed_parts_are_skipped(self):
        parsed = parse_key(
            "k|cpu|units^2=5|mystery^3=1|noequals|m.cv=oops"
        )
        assert parsed is not None
        assert parsed.vector[column("units")] == 5.0
        assert parsed.vector[column("cv")] == MISSING

    def test_empty_marker_maps_to_its_column(self):
        parsed = parse_key("spmv|cpu|m.empty=1|m.rows^2=6")
        assert parsed.vector[column("empty")] == 1.0

    def test_keys_without_identity_are_rejected(self):
        assert parse_key("") is None
        assert parse_key("kernel-only") is None
        assert parse_key("|cpu|units^2=1") is None
        assert parse_key("k||units^2=1") is None


class TestRealKeys:
    def test_derived_axpy_key_parses(self):
        config = ReproConfig()
        sig = derive_signature(
            "axpy", "cpu", make_axpy_args(512, config), 512
        )
        parsed = parse_key(sig.key)
        assert parsed is not None
        assert parsed.kernel == "axpy"
        assert parsed.device_kind == "cpu"
        assert parsed.vector[column("units")] == 9.0  # log2(512)
        assert parsed.vector[column("bytes")] != MISSING

    def test_degenerate_sparse_key_parses_with_empty_marker(self):
        class EmptyCSR:
            rows, cols, nnz = 0, 0, 0
            row_nnz = np.zeros(0)

        sig = derive_signature("spmv", "cpu", {"m": EmptyCSR()}, 256)
        parsed = parse_key(sig.key)
        assert parsed.vector[column("empty")] == 1.0
        assert parsed.vector[column("density")] == MISSING
