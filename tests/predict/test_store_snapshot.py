"""Predictor state riding inside SelectionStore snapshots."""

import json

import pytest

from repro.errors import StoreError, StoreSchemaError
from repro.predict import PredictConfig
from repro.serve.store import SCHEMA_VERSION, SelectionStore

KEY_A = "k|cpu|units^2=4"
KEY_B = "k|cpu|units^2=12"


def armed_store(**kwargs) -> SelectionStore:
    predict = kwargs.pop("predict", PredictConfig(min_examples=2))
    return SelectionStore(predict=predict, **kwargs)


class TestTraining:
    def test_measured_publish_trains(self):
        store = armed_store()
        store.publish(KEY_A, kernel="k", selected="fast",
                      cycles_per_unit=1.0)
        store.publish(KEY_B, kernel="k", selected="slow",
                      cycles_per_unit=9.0)
        assert len(store.predictor) == 2
        assert store.predictor.predict(KEY_A).variant == "fast"

    def test_predicted_publish_does_not_train(self):
        store = armed_store()
        store.publish(KEY_A, kernel="k", selected="fast",
                      cycles_per_unit=1.0, predicted=True)
        assert len(store.predictor) == 0
        entry = store.lookup(KEY_A)
        assert entry.predicted

    def test_unarmed_store_has_no_predictor(self):
        store = SelectionStore()
        assert store.predictor is None
        store.publish(KEY_A, kernel="k", selected="fast",
                      cycles_per_unit=1.0)  # must not raise


class TestSnapshotRoundTrip:
    def publish_history(self, store):
        store.publish(KEY_A, kernel="k", selected="fast",
                      cycles_per_unit=1.0)
        store.publish(KEY_B, kernel="k", selected="slow",
                      cycles_per_unit=9.0, predicted=False)

    def test_round_trip_restores_models_and_flags(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = armed_store()
        self.publish_history(store)
        store.publish("k|cpu|units^2=5", kernel="k", selected="fast",
                      cycles_per_unit=1.1, predicted=True)
        store.save(path)
        loaded = SelectionStore.load(path)
        # Auto-armed from the snapshot (caller passed no PredictConfig).
        assert loaded.predictor is not None
        assert loaded.predictor.config == store.predictor.config
        assert len(loaded.predictor) == 2
        assert loaded.predictor.predict(KEY_A).variant == "fast"
        assert loaded.lookup("k|cpu|units^2=5").predicted
        assert not loaded.lookup(KEY_A).predicted

    def test_caller_config_wins_over_snapshot(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = armed_store()
        self.publish_history(store)
        store.save(path)
        mine = PredictConfig(min_examples=7, confidence_threshold=0.95)
        loaded = SelectionStore.load(path, predict=mine)
        assert loaded.predictor.config == mine
        # The snapshot still contributed its history.
        assert len(loaded.predictor) == 2

    def test_unarmed_snapshot_stays_unarmed(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = SelectionStore()
        store.publish(KEY_A, kernel="k", selected="fast",
                      cycles_per_unit=1.0)
        store.save(path)
        assert SelectionStore.load(path).predictor is None

    def test_caller_can_arm_over_unarmed_snapshot(self, tmp_path):
        path = str(tmp_path / "store.json")
        SelectionStore().save(path)
        loaded = SelectionStore.load(
            path, predict=PredictConfig(min_examples=1)
        )
        assert loaded.predictor is not None
        assert len(loaded.predictor) == 0


class TestSchemaRejection:
    def test_old_schema_version_rejected(self, tmp_path):
        """v2 snapshots predate the key-space change (degenerate-input
        features) and the predictor payload; they must re-profile."""
        path = str(tmp_path / "store.json")
        store = armed_store()
        store.publish(KEY_A, kernel="k", selected="fast",
                      cycles_per_unit=1.0)
        store.save(path)
        doc = json.loads(open(path).read())
        doc["schema_version"] = 2
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(StoreSchemaError):
            SelectionStore.load(path)

    def test_current_schema_is_v4(self, tmp_path):
        path = str(tmp_path / "store.json")
        armed_store().save(path)
        doc = json.loads(open(path).read())
        assert doc["schema_version"] == SCHEMA_VERSION == 4

    @pytest.mark.parametrize(
        "predict_section",
        [
            [],
            {"groups": "nope"},
            {"groups": [{"kernel": "k", "device_kind": "cpu",
                         "examples": [{"vector": "x", "label": "a",
                                       "weight": 1.0}]}]},
            {"groups": [], "stats": {"examples": -1}},
        ],
    )
    def test_malformed_predict_section_rejected(
        self, tmp_path, predict_section
    ):
        path = str(tmp_path / "store.json")
        armed_store().save(path)
        doc = json.loads(open(path).read())
        doc["predict"] = predict_section
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(StoreError):
            SelectionStore.load(path)

    def test_malformed_predict_section_rejected_when_armed(self, tmp_path):
        """All-or-nothing also when the caller supplies a config."""
        path = str(tmp_path / "store.json")
        armed_store().save(path)
        doc = json.loads(open(path).read())
        doc["predict"] = {"groups": [None]}
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(StoreError):
            SelectionStore.load(path, predict=PredictConfig())
