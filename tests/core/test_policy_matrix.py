"""Exhaustive matrix over ``policy.decide``'s inputs.

Every combination of (activation flag x cache state x workload size x
pinned selection x drift re-arm x pool shape) is checked against an
independent oracle of the documented precedence, proving each
``LaunchDecision.reason`` branch reachable and the mapping stable.  A
directed section covers the quarantine interaction (the runtime filters
barred variants *before* ``decide`` sees the pool).
"""

import itertools

import pytest

from repro.compiler.variants import VariantPool
from repro.core import policy
from repro.core.runtime import DySelRuntime
from repro.core.selection import (
    SelectionCache,
    SelectionRecord,
    VariantMeasurement,
)
from repro.modes import OrchestrationFlow, ProfilingMode
from repro.predict import Prediction
from tests.conftest import axpy_signature, make_axpy_args, make_axpy_variant

# ----------------------------------------------------------------------
# The matrix axes
# ----------------------------------------------------------------------

FLAG = (True, False)
CACHE = ("empty", "cached", "stale")
SIZE = ("small", "large")
PINNED = (None, "slow", "gone")
DRIFT = (False, True)
POOL = ("multi", "single")

MATRIX = tuple(itertools.product(FLAG, CACHE, SIZE, PINNED, DRIFT, POOL))

#: Every reason category ``decide`` can produce.
CATEGORIES = (
    "drift re-activation",
    "profiling activated",
    "pinned reused",
    "cached reused",
    "default fallback",
    "small workload",
    "single variant",
)


def build_pool(shape):
    from repro.kernel import KernelSpec

    variants = (make_axpy_variant("fast"),)
    if shape == "multi":
        variants += (make_axpy_variant("slow"),)
    return VariantPool(
        spec=KernelSpec(signature=axpy_signature()), variants=variants
    )


def build_cache(state):
    cache = SelectionCache()
    if state == "empty":
        return cache
    selected = "fast" if state == "cached" else "evicted-variant"
    record = SelectionRecord(
        kernel="axpy", mode=ProfilingMode.FULLY, flow=OrchestrationFlow.SYNC
    )
    record.observe(
        VariantMeasurement(
            variant=selected,
            measured_cycles=10.0,
            profiled_units=4,
            productive=True,
        )
    )
    cache.record(record)
    return cache


def units_for(size, config):
    if size == "small":
        return max(1, config.small_workload_threshold // 4)
    return config.small_workload_threshold * 4


def categorize(reason):
    """Map a concrete reason string onto its category."""
    if reason == "drift re-activation":
        return "drift re-activation"
    if reason == "profiling activated":
        return "profiling activated"
    if reason == "profiling deactivated; pinned selection reused":
        return "pinned reused"
    if reason == "profiling deactivated; cached selection reused":
        return "cached reused"
    if reason.startswith("profiling deactivated;") and reason.endswith(
        "using default"
    ):
        return "default fallback"
    if reason.startswith("small workload ("):
        return "small workload"
    if reason == "single-variant pool; nothing to select":
        return "single variant"
    raise AssertionError(f"unrecognized reason {reason!r}")


def oracle(flag, cache_state, size, pinned, drift, pool_shape):
    """Independent restatement of the documented precedence order."""
    multi = pool_shape == "multi"
    large = size == "large"
    cached_valid = cache_state == "cached"
    # "slow" only exists in the multi pool; "gone" never does.
    pinned_valid = pinned == "slow" and multi
    if drift and not flag and multi and large:
        return "drift re-activation"
    if pinned is not None and not flag and pinned_valid:
        return "pinned reused"
    if not flag:
        return "cached reused" if cached_valid else "default fallback"
    if not large:
        return "small workload"
    if not multi:
        return "single variant"
    return "profiling activated"


@pytest.mark.parametrize(
    "flag,cache_state,size,pinned,drift,pool_shape", MATRIX
)
def test_matrix_cell(flag, cache_state, size, pinned, drift, pool_shape, config):
    pool = build_pool(pool_shape)
    units = units_for(size, config)
    decision = policy.decide(
        pool,
        units,
        flag,
        build_cache(cache_state),
        config,
        pinned_variant=pinned,
        drift_rearm=drift,
    )
    expected = oracle(flag, cache_state, size, pinned, drift, pool_shape)
    assert categorize(decision.reason) == expected

    # Structural invariants of every decision.
    if decision.profile:
        assert decision.variant_name is None
    else:
        assert decision.variant_name in pool.variant_names
    assert decision.profile == (
        expected in ("drift re-activation", "profiling activated")
    )

    # Stability: the same inputs produce the same decision (fresh cache,
    # because a stale entry is evicted on first sight by design).
    again = policy.decide(
        pool,
        units,
        flag,
        build_cache(cache_state),
        config,
        pinned_variant=pinned,
        drift_rearm=drift,
    )
    assert again == decision


def test_matrix_reaches_every_reason_category(config):
    reached = set()
    for flag, cache_state, size, pinned, drift, pool_shape in MATRIX:
        decision = policy.decide(
            build_pool(pool_shape),
            units_for(size, config),
            flag,
            build_cache(cache_state),
            config,
            pinned_variant=pinned,
            drift_rearm=drift,
        )
        reached.add(categorize(decision.reason))
    assert reached == set(CATEGORIES)


class TestPrecedenceEdges:
    """Directed checks of the orderings the matrix oracle encodes."""

    def test_drift_rearm_beats_pinned_and_cache(self, fast_slow_pool, config):
        decision = policy.decide(
            fast_slow_pool,
            config.small_workload_threshold * 4,
            False,
            build_cache("cached"),
            config,
            pinned_variant="slow",
            drift_rearm=True,
        )
        assert decision.profile
        assert decision.reason == "drift re-activation"

    def test_drift_rearm_never_overrides_small_workload(
        self, fast_slow_pool, config
    ):
        decision = policy.decide(
            fast_slow_pool,
            max(1, config.small_workload_threshold // 4),
            False,
            SelectionCache(),
            config,
            drift_rearm=True,
        )
        assert not decision.profile

    def test_drift_rearm_moot_on_single_variant(self, config):
        pool = build_pool("single")
        decision = policy.decide(
            pool,
            config.small_workload_threshold * 4,
            False,
            SelectionCache(),
            config,
            drift_rearm=True,
        )
        assert not decision.profile
        assert decision.variant_name == "fast"

    def test_explicit_profiling_ignores_drift_flag(
        self, fast_slow_pool, config
    ):
        """profiling=True already re-profiles; drift adds nothing."""
        decision = policy.decide(
            fast_slow_pool,
            config.small_workload_threshold * 4,
            True,
            SelectionCache(),
            config,
            drift_rearm=True,
        )
        assert decision.profile
        assert decision.reason == "profiling activated"

    def test_stale_pinned_and_stale_cache_both_noted(
        self, fast_slow_pool, config
    ):
        cache = build_cache("stale")
        decision = policy.decide(
            fast_slow_pool,
            config.small_workload_threshold * 4,
            False,
            cache,
            config,
            pinned_variant="gone",
        )
        assert not decision.profile
        assert decision.variant_name == "fast"  # pool default
        assert "evicted-variant" in decision.reason
        assert "'gone'" in decision.reason
        assert cache.lookup("axpy") is None  # stale entry evicted


class TestPredictionAxis:
    """The prediction input is the weakest in the precedence order: over
    the whole matrix it may only convert a would-be micro-profile into a
    profiling-off predicted run — every other gate's decision must be
    byte-identical with and without it."""

    PREDICTED = Prediction(variant="fast", confidence=0.91)

    def decide(self, cell, config, predicted):
        flag, cache_state, size, pinned, drift, pool_shape = cell
        return policy.decide(
            build_pool(pool_shape),
            units_for(size, config),
            flag,
            build_cache(cache_state),
            config,
            pinned_variant=pinned,
            drift_rearm=drift,
            predicted=predicted,
        )

    @pytest.mark.parametrize(
        "flag,cache_state,size,pinned,drift,pool_shape", MATRIX
    )
    def test_matrix_cell_with_prediction(
        self, flag, cache_state, size, pinned, drift, pool_shape, config
    ):
        cell = (flag, cache_state, size, pinned, drift, pool_shape)
        baseline = self.decide(cell, config, None)
        decision = self.decide(cell, config, self.PREDICTED)
        if (
            categorize(baseline.reason) == "profiling activated"
            and not drift
        ):
            assert not decision.profile
            assert decision.variant_name == "fast"
            assert decision.reason.startswith(
                "predicted selection ('fast', confidence 0.91)"
            )
        else:
            # Every other gate — small workload, single variant, pinned,
            # cached, drift re-arm — is untouched by the prediction.
            assert decision == baseline

    def test_prediction_never_overrides_drift_rearm(self, config):
        decision = self.decide(
            (True, "empty", "large", None, True, "multi"),
            config,
            self.PREDICTED,
        )
        assert decision.profile
        assert decision.reason == "profiling activated"

    def test_predicted_variant_missing_from_pool_falls_back(
        self, fast_slow_pool, config
    ):
        decision = policy.decide(
            fast_slow_pool,
            config.small_workload_threshold * 4,
            True,
            SelectionCache(),
            config,
            predicted=Prediction(variant="gone", confidence=0.99),
        )
        assert decision.profile
        assert "predicted 'gone' is not a profiling candidate" in (
            decision.reason
        )

    def test_prediction_only_chooses_among_dominance_survivors(
        self, config
    ):
        pool = build_pool("multi")  # fast + slow
        predicted_dominated = policy.decide(
            pool,
            config.small_workload_threshold * 4,
            True,
            SelectionCache(),
            config,
            dominated=("fast",),
            predicted=Prediction(variant="fast", confidence=0.99),
        )
        # Excluding 'fast' leaves a single survivor, which wins before
        # the prediction is even consulted.
        assert not predicted_dominated.profile
        assert predicted_dominated.variant_name == "slow"
        assert "statically dominated" in predicted_dominated.reason

    def test_prediction_notes_ride_along_with_dominance(self, config):
        from repro.kernel import KernelSpec

        pool = VariantPool(
            spec=KernelSpec(signature=axpy_signature()),
            variants=(
                make_axpy_variant("fast"),
                make_axpy_variant("slow"),
                make_axpy_variant("mid"),
            ),
        )
        decision = policy.decide(
            pool,
            config.small_workload_threshold * 4,
            True,
            SelectionCache(),
            config,
            dominated=("slow",),
            predicted=Prediction(variant="mid", confidence=0.88),
        )
        assert not decision.profile
        assert decision.variant_name == "mid"
        assert decision.reason.startswith("predicted selection ('mid'")
        assert "'slow' statically dominated" in decision.reason

    def test_quarantine_gate_beats_prediction(
        self, cpu, config, fast_slow_pool
    ):
        """A quarantined variant is filtered from the pool before
        ``decide`` runs, so predicting it falls back to profiling."""
        runtime = DySelRuntime(cpu, config)
        runtime.register_pool(fast_slow_pool)
        for _ in range(config.faults.quarantine_threshold):
            runtime.quarantine.note_fault("axpy", "slow", "test")
        units = config.small_workload_threshold * 4
        result = runtime.launch_kernel(
            "axpy",
            make_axpy_args(units, config),
            units,
            predicted=Prediction(variant="slow", confidence=0.99),
        )
        assert result.selected != "slow"
        assert not result.reason.startswith("predicted selection")


class TestPlacementAxis:
    """Matrix over ``policy.decide_placement``'s device-kind dimension.

    Fleet shape x placement policy x pinned kind x store warmth, checked
    against an independent oracle of the documented precedence.  The
    candidate loads/costs are chosen so the cold (static cost-bound) and
    warm (store-measured EWMA) winners *differ*, proving the basis is
    actually consulted rather than the reason merely relabelled.
    """

    FLEET = ("cpu-only", "gpu-only", "mixed", "gpu-quarantined")
    POLICY = ("cost-model", "dynamic-load")
    PIN = (None, "cpu", "gpu", "tpu")
    WARMTH = ("bare", "cold", "warm")

    PLACEMENT_MATRIX = tuple(
        itertools.product(FLEET, POLICY, PIN, WARMTH)
    )

    PLACEMENT_CATEGORIES = (
        "pinned", "single", "dynamic", "static", "measured"
    )

    def build_candidates(self, fleet, warmth):
        def bid(kind, load, static, measured, quarantined=False):
            return policy.PlacementCandidate(
                device_kind=kind,
                load_cycles=load,
                static_cycles=static if warmth == "cold" else None,
                measured_cycles=measured if warmth == "warm" else None,
                quarantined=quarantined,
            )

        # gpu is least loaded; gpu wins cold (static), cpu wins warm
        # (measured) — the EWMA contradicts the static prior on purpose.
        cpu = bid("cpu", load=100.0, static=500.0, measured=50.0)
        gpu = bid(
            "gpu",
            load=40.0,
            static=200.0,
            measured=300.0,
            quarantined=fleet == "gpu-quarantined",
        )
        if fleet == "cpu-only":
            return [cpu]
        if fleet == "gpu-only":
            return [gpu]
        return [cpu, gpu]

    @staticmethod
    def categorize(reason):
        for prefix, category in (
            ("pinned device kind", "pinned"),
            ("single eligible device kind", "single"),
            ("dynamic load placement", "dynamic"),
            ("static cost-bound placement", "static"),
            ("store-measured placement", "measured"),
        ):
            if reason.startswith(prefix):
                return category
        raise AssertionError(f"unrecognized placement reason {reason!r}")

    @staticmethod
    def oracle(fleet, placement_policy, pinned, warmth):
        """Independent restatement of the placement precedence."""
        eligible = {
            "cpu-only": {"cpu"},
            "gpu-only": {"gpu"},
            "mixed": {"cpu", "gpu"},
            "gpu-quarantined": {"cpu"},
        }[fleet]
        if pinned in eligible:
            return "pinned", pinned
        if len(eligible) == 1:
            return "single", next(iter(eligible))
        if placement_policy == "dynamic-load":
            return "dynamic", "gpu"  # load 40 < 100
        if warmth == "bare":
            return "dynamic", "gpu"  # cost-model degrades to load
        if warmth == "cold":
            return "static", "gpu"  # 40+200 < 100+500
        return "measured", "cpu"  # 100+50 < 40+300

    @pytest.mark.parametrize(
        "fleet,placement_policy,pinned,warmth", PLACEMENT_MATRIX
    )
    def test_matrix_cell(self, fleet, placement_policy, pinned, warmth):
        candidates = self.build_candidates(fleet, warmth)
        decision = policy.decide_placement(
            "axpy", candidates, policy=placement_policy, pinned_kind=pinned
        )
        category, kind = self.oracle(fleet, placement_policy, pinned, warmth)
        assert self.categorize(decision.reason) == category
        assert decision.device_kind == kind
        # Projected map covers exactly the eligible kinds.
        assert set(decision.projected) == {
            c.device_kind for c in candidates if not c.quarantined
        }
        # Quarantined kinds are always noted, never chosen.
        if fleet == "gpu-quarantined":
            assert decision.device_kind != "gpu"
            assert "'gpu' quarantined (excluded from placement)" in (
                decision.reason
            )
        # Stability.
        again = policy.decide_placement(
            "axpy", candidates, policy=placement_policy, pinned_kind=pinned
        )
        assert again == decision

    def test_matrix_reaches_every_reason_category(self):
        reached = set()
        for fleet, placement_policy, pinned, warmth in (
            self.PLACEMENT_MATRIX
        ):
            decision = policy.decide_placement(
                "axpy",
                self.build_candidates(fleet, warmth),
                policy=placement_policy,
                pinned_kind=pinned,
            )
            reached.add(self.categorize(decision.reason))
        assert reached == set(self.PLACEMENT_CATEGORIES)

    def test_pinned_quarantined_kind_ignored_with_note(self):
        decision = policy.decide_placement(
            "axpy",
            self.build_candidates("gpu-quarantined", "warm"),
            pinned_kind="gpu",
        )
        assert decision.device_kind == "cpu"
        assert "pinned device kind 'gpu' is quarantined (ignored)" in (
            decision.reason
        )

    def test_pinned_unknown_kind_ignored_with_note(self):
        decision = policy.decide_placement(
            "axpy",
            self.build_candidates("mixed", "warm"),
            pinned_kind="tpu",
        )
        assert "pinned device kind 'tpu' is unknown (ignored)" in (
            decision.reason
        )
        assert self.categorize(decision.reason) == "measured"

    def test_all_kinds_quarantined_raises(self):
        from repro.errors import LaunchError

        candidates = [
            policy.PlacementCandidate(device_kind=k, quarantined=True)
            for k in ("cpu", "gpu")
        ]
        with pytest.raises(LaunchError, match="placement impossible"):
            policy.decide_placement("axpy", candidates)

    def test_no_candidates_raises(self):
        from repro.errors import LaunchError

        with pytest.raises(LaunchError, match="no device-kind candidates"):
            policy.decide_placement("axpy", [])

    def test_unknown_policy_raises(self):
        from repro.errors import LaunchError

        with pytest.raises(LaunchError, match="unknown placement policy"):
            policy.decide_placement(
                "axpy",
                self.build_candidates("mixed", "warm"),
                policy="round-robin",
            )

    def test_projected_tie_breaks_lexicographically(self):
        candidates = [
            policy.PlacementCandidate(device_kind=k, load_cycles=10.0)
            for k in ("gpu", "cpu")
        ]
        decision = policy.decide_placement("axpy", candidates)
        assert decision.device_kind == "cpu"


class TestQuarantineInteraction:
    """The runtime bars quarantined variants before ``decide`` runs, so
    the policy sees a restricted pool (and stale winners self-evict)."""

    def quarantine(self, runtime, variant):
        for _ in range(runtime.config.faults.quarantine_threshold):
            runtime.quarantine.note_fault("axpy", variant, "test")
        assert runtime.quarantine.is_quarantined("axpy", variant)

    def test_quarantined_winner_is_not_replayed(
        self, cpu, config, fast_slow_pool
    ):
        runtime = DySelRuntime(cpu, config)
        runtime.register_pool(fast_slow_pool)
        units = config.small_workload_threshold * 4
        first = runtime.launch_kernel(
            "axpy", make_axpy_args(units, config), units
        )
        assert first.profiled
        self.quarantine(runtime, first.selected)
        replay = runtime.launch_kernel(
            "axpy", make_axpy_args(units, config), units, profiling=False
        )
        assert replay.selected != first.selected

    def test_quarantine_to_single_variant_stops_profiling(
        self, cpu, config, fast_slow_pool
    ):
        runtime = DySelRuntime(cpu, config)
        runtime.register_pool(fast_slow_pool)
        self.quarantine(runtime, "slow")
        units = config.small_workload_threshold * 4
        result = runtime.launch_kernel(
            "axpy", make_axpy_args(units, config), units
        )
        assert not result.profiled
        assert result.selected == "fast"
        assert "single-variant pool" in result.reason


class TestBackpressureAxis:
    """The serving layer's ``deferred`` flag (profiling backpressure,
    :mod:`repro.serve.qos`) may only convert a would-be profile — a cold
    micro-profile or a drift re-profile — into a profiling-off launch on
    the best-known variant.  Every branch that was not going to profile
    anyway must be byte-identical with and without it."""

    DEFERRED_CATEGORIES = (
        "micro-profile deferred",
        "drift re-profile deferred",
    )

    @staticmethod
    def categorize_deferred(reason):
        """``categorize`` extended with the two backpressure reasons."""
        if reason.startswith("micro-profile deferred by backpressure;"):
            return "micro-profile deferred"
        if reason.startswith("drift re-profile deferred by backpressure;"):
            return "drift re-profile deferred"
        return categorize(reason)

    def decide(self, cell, config, deferred):
        flag, cache_state, size, pinned, drift, pool_shape = cell
        return policy.decide(
            build_pool(pool_shape),
            units_for(size, config),
            flag,
            build_cache(cache_state),
            config,
            pinned_variant=pinned,
            drift_rearm=drift,
            deferred=deferred,
        )

    @pytest.mark.parametrize(
        "flag,cache_state,size,pinned,drift,pool_shape", MATRIX
    )
    def test_matrix_cell_with_backpressure(
        self, flag, cache_state, size, pinned, drift, pool_shape, config
    ):
        cell = (flag, cache_state, size, pinned, drift, pool_shape)
        baseline = self.decide(cell, config, False)
        decision = self.decide(cell, config, True)
        base_category = categorize(baseline.reason)
        if base_category == "profiling activated":
            expected = "micro-profile deferred"
        elif base_category == "drift re-activation":
            expected = "drift re-profile deferred"
        else:
            # Small workload, single variant, pinned, cached, default:
            # none of these profile, so backpressure changes nothing.
            assert decision == baseline
            return
        assert not decision.profile
        assert self.categorize_deferred(decision.reason) == expected
        # The fallback basis is oracle-checked, not just relabelled:
        # a valid cached selection serves; anything else (empty or
        # stale cache) drops to the pool default.
        if cache_state == "cached":
            assert "using cached selection" in decision.reason
        else:
            assert "using pool default" in decision.reason
        if cache_state == "stale":
            assert "evicted-variant" in decision.reason
        pool = build_pool(pool_shape)
        assert decision.variant_name in pool.variant_names

    def test_matrix_reaches_both_deferred_categories(self, config):
        reached = set()
        for cell in MATRIX:
            decision = self.decide(cell, config, True)
            reached.add(self.categorize_deferred(decision.reason))
        assert set(self.DEFERRED_CATEGORIES) <= reached

    def test_prediction_beats_deferral(self, config):
        """A confident prediction costs no profiling, so backpressure
        has nothing to defer — the predicted serve goes through."""
        predicted = Prediction(variant="fast", confidence=0.93)
        decision = policy.decide(
            build_pool("multi"),
            units_for("large", config),
            True,
            SelectionCache(),
            config,
            predicted=predicted,
            deferred=True,
        )
        assert not decision.profile
        assert decision.reason.startswith("predicted selection ('fast'")
        assert "deferred" not in decision.reason

    def test_deferral_unused_when_dominance_leaves_one_survivor(
        self, config
    ):
        decision = policy.decide(
            build_pool("multi"),
            units_for("large", config),
            True,
            SelectionCache(),
            config,
            dominated=("fast",),
            deferred=True,
        )
        assert not decision.profile
        assert decision.variant_name == "slow"
        assert "statically dominated" in decision.reason
        assert "deferred" not in decision.reason

    def test_deferred_drift_rearm_leaves_cached_serving(self, config):
        """A deferred drift re-profile keeps serving the (possibly
        drifted) cached selection — stale-but-correct beats unprofiled."""
        decision = policy.decide(
            build_pool("multi"),
            units_for("large", config),
            False,
            build_cache("cached"),
            config,
            drift_rearm=True,
            deferred=True,
        )
        assert not decision.profile
        assert decision.reason == (
            "drift re-profile deferred by backpressure; "
            "using cached selection"
        )
        assert decision.variant_name == "fast"

    def test_deferred_cold_class_exact_reason(self, config):
        decision = policy.decide(
            build_pool("multi"),
            units_for("large", config),
            True,
            SelectionCache(),
            config,
            deferred=True,
        )
        assert decision.reason == (
            "micro-profile deferred by backpressure; using pool default"
        )
        assert decision.variant_name == "fast"
