"""Runtime integration of dominance pruning (analyze → core).

With ``analyze.dominance`` on, the runtime statically prunes hopeless
variants from the *profiling* candidate set before the first launch: the
decision reason records the exclusion, a ``DOMINANCE_PRUNE`` trace event
is emitted, and the winner is always a survivor.  The correctness pool
is untouched — pruned variants remain pinnable and verifiable.
"""

import dataclasses

import pytest

from repro.compiler.variants import VariantPool
from repro.config import AnalyzeSettings, ReproConfig
from repro.core import DySelRuntime
from repro.core.policy import SelectionCache, decide
from repro.device import make_cpu
from repro.kernel import KernelSpec
from repro.obs.events import EventKind
from tests.conftest import (
    axpy_output_ok,
    axpy_signature,
    make_axpy_args,
    make_axpy_variant,
)

UNITS = 512


def dominance_config() -> ReproConfig:
    """Noise-free config with pruning and tracing enabled."""
    return dataclasses.replace(
        ReproConfig().without_noise(),
        analyze=AnalyzeSettings(dominance=True),
        trace=True,
    )


def spread_pool(*scales: float) -> VariantPool:
    """Variants whose static compute differs by the given factors."""
    return VariantPool(
        spec=KernelSpec(signature=axpy_signature()),
        variants=tuple(
            make_axpy_variant(
                f"v_x{scale:g}", flops_per_trip=4096.0 * scale
            )
            for scale in scales
        ),
    )


def make_runtime(config: ReproConfig, pool: VariantPool) -> DySelRuntime:
    runtime = DySelRuntime(make_cpu(config), config)
    runtime.register_pool(pool)
    return runtime


class TestPrunedProfiling:
    def test_profiled_launch_skips_dominated_variants(self):
        config = dominance_config()
        runtime = make_runtime(config, spread_pool(1.0, 1.1, 100.0))
        args = make_axpy_args(UNITS, config)
        result = runtime.launch_kernel("axpy", args, UNITS, profiling=True)
        assert result.profiled
        assert "statically dominated" in result.reason
        assert "'v_x100'" in result.reason
        assert result.selected in ("v_x1", "v_x1.1")
        assert axpy_output_ok(args)

    def test_prune_event_is_traced(self):
        config = dominance_config()
        runtime = make_runtime(config, spread_pool(1.0, 1.1, 100.0))
        runtime.launch_kernel(
            "axpy", make_axpy_args(UNITS, config), UNITS, profiling=True
        )
        prunes = [
            e
            for e in runtime.tracer.events
            if e.kind is EventKind.DOMINANCE_PRUNE
        ]
        assert len(prunes) == 1
        assert prunes[0].args["pruned"] == ["v_x100"]
        assert set(prunes[0].args["survivors"]) == {"v_x1", "v_x1.1"}
        assert prunes[0].args["margin"] == config.analyze.dominance_margin

    def test_single_survivor_skips_profiling_outright(self):
        config = dominance_config()
        runtime = make_runtime(config, spread_pool(1.0, 100.0, 200.0))
        result = runtime.launch_kernel(
            "axpy", make_axpy_args(UNITS, config), UNITS, profiling=True
        )
        assert not result.profiled
        assert result.selected == "v_x1"
        assert "profiling skipped" in result.reason
        assert "statically dominated" in result.reason

    def test_pruned_variant_stays_pinnable(self):
        # The correctness pool is untouched: serving can still pin a
        # dominated variant explicitly (profiling off).
        config = dominance_config()
        runtime = make_runtime(config, spread_pool(1.0, 1.1, 100.0))
        args = make_axpy_args(UNITS, config)
        result = runtime.launch_kernel(
            "axpy",
            args,
            UNITS,
            profiling=False,
            pinned_variant="v_x100",
        )
        assert result.selected == "v_x100"
        assert axpy_output_ok(args)

    def test_dominance_off_is_inert(self):
        config = dataclasses.replace(
            ReproConfig().without_noise(), trace=True
        )
        runtime = make_runtime(config, spread_pool(1.0, 1.1, 100.0))
        result = runtime.launch_kernel(
            "axpy", make_axpy_args(UNITS, config), UNITS, profiling=True
        )
        assert "statically dominated" not in result.reason
        assert not any(
            e.kind is EventKind.DOMINANCE_PRUNE
            for e in runtime.tracer.events
        )

    def test_verdict_is_cached_per_pool(self):
        config = dominance_config()
        runtime = make_runtime(config, spread_pool(1.0, 1.1, 100.0))
        for _ in range(3):
            runtime.launch_kernel(
                "axpy", make_axpy_args(UNITS, config), UNITS, profiling=True
            )
        key = ("axpy", ("v_x1", "v_x1.1", "v_x100"))
        assert key in runtime._dominance_pools


class TestDecideWithDominated:
    def _decide(self, pool, dominated):
        return decide(
            pool,
            workload_units=UNITS,
            profiling_requested=True,
            cache=SelectionCache(),
            config=ReproConfig(),
            dominated=dominated,
        )

    def test_exclusions_are_recorded_in_the_reason(self):
        pool = spread_pool(1.0, 1.1, 100.0)
        decision = self._decide(pool, ("v_x100",))
        assert decision.profile
        assert "'v_x100' statically dominated" in decision.reason

    def test_single_survivor_short_circuits(self):
        pool = spread_pool(1.0, 100.0, 200.0)
        decision = self._decide(pool, ("v_x100", "v_x200"))
        assert not decision.profile
        assert decision.variant_name == "v_x1"
        assert "profiling skipped" in decision.reason

    def test_stale_dominated_names_are_ignored(self):
        pool = spread_pool(1.0, 1.1)
        decision = self._decide(pool, ("not-in-pool",))
        assert decision.profile
        assert "statically dominated" not in decision.reason


class TestSelectionQuality:
    @pytest.mark.parametrize("units", (256, 512))
    def test_pruning_never_changes_the_selection(self, units):
        base_config = dataclasses.replace(
            ReproConfig().without_noise(),
            analyze=AnalyzeSettings(dominance=False),
        )
        dom_config = dataclasses.replace(
            base_config, analyze=AnalyzeSettings(dominance=True)
        )
        scales = (1.0, 1.05, 1.2, 3.0, 10.0)
        base = make_runtime(base_config, spread_pool(*scales)).launch_kernel(
            "axpy", make_axpy_args(units, base_config), units, profiling=True
        )
        dom = make_runtime(dom_config, spread_pool(*scales)).launch_kernel(
            "axpy", make_axpy_args(units, dom_config), units, profiling=True
        )
        assert dom.selected == base.selected
        assert dom.profiling_latency_cycles < base.profiling_latency_cycles
