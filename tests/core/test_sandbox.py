"""Unit tests for sandbox / private-output management."""

import numpy as np
import pytest

from repro.core.sandbox import SandboxAllocator
from repro.errors import SandboxError
from repro.kernel.buffers import Buffer
from repro.kernel.launch import LaunchConfig
from tests.conftest import axpy_signature, make_axpy_args


@pytest.fixture
def launch(config):
    return LaunchConfig.create(axpy_signature(), make_axpy_args(8, config), 8)


class TestAllocator:
    def test_sandbox_args_replace_outputs(self, launch):
        allocator = SandboxAllocator()
        outputs = launch.output_buffers()
        args = allocator.sandbox_args(launch, outputs, label="s")
        assert args["y"] is not launch.args["y"]
        assert args["x"] is launch.args["x"]
        assert allocator.live_copies == 1
        assert allocator.allocated_bytes == launch.args["y"].nbytes

    def test_private_outputs(self, launch):
        allocator = SandboxAllocator()
        outputs = launch.output_buffers()
        privates = allocator.private_outputs(launch, outputs, label="p")
        assert set(privates) == {"y"}
        assert privates["y"].data is not launch.args["y"].data

    def test_swap_in(self, launch):
        allocator = SandboxAllocator()
        outputs = launch.output_buffers()
        privates = allocator.private_outputs(launch, outputs, label="p")
        privates["y"].data[:] = 9.0
        allocator.swap_in(outputs, privates)
        assert (launch.args["y"].data == 9.0).all()

    def test_swap_in_missing_output(self, launch):
        allocator = SandboxAllocator()
        with pytest.raises(SandboxError, match="no private copy"):
            allocator.swap_in(launch.output_buffers(), {})

    def test_release_all(self, launch):
        allocator = SandboxAllocator()
        allocator.sandbox_args(launch, launch.output_buffers(), label="s")
        allocator.release_all()
        assert allocator.live_copies == 0
        # Accounting of total allocation persists for reporting.
        assert allocator.allocated_bytes > 0
