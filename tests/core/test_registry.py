"""Unit tests for the kernel pool registry."""

import pytest

from repro.core.registry import DySelKernelRegistry
from repro.errors import RegistrationError
from repro.modes import ProfilingMode
from tests.conftest import make_axpy_variant


class TestRegistry:
    def test_declare_then_add(self, axpy_spec):
        registry = DySelKernelRegistry()
        registry.declare(axpy_spec)
        registry.add_kernel("axpy", make_axpy_variant("a"))
        registry.add_kernel("axpy", make_axpy_variant("b"))
        pool = registry.pool("axpy")
        assert pool.variant_names == ("a", "b")
        assert "axpy" in registry
        assert list(registry) == ["axpy"]

    def test_double_declare_rejected(self, axpy_spec):
        registry = DySelKernelRegistry()
        registry.declare(axpy_spec)
        with pytest.raises(RegistrationError):
            registry.declare(axpy_spec)

    def test_add_without_declare_rejected(self):
        registry = DySelKernelRegistry()
        with pytest.raises(RegistrationError, match="declare"):
            registry.add_kernel("axpy", make_axpy_variant("a"))

    def test_duplicate_variant_rejected(self, axpy_spec):
        registry = DySelKernelRegistry()
        registry.declare(axpy_spec)
        registry.add_kernel("axpy", make_axpy_variant("a"))
        with pytest.raises(RegistrationError, match="already"):
            registry.add_kernel("axpy", make_axpy_variant("a"))

    def test_empty_pool_rejected(self, axpy_spec):
        registry = DySelKernelRegistry()
        registry.declare(axpy_spec)
        with pytest.raises(RegistrationError, match="no registered"):
            registry.pool("axpy")

    def test_unknown_pool_rejected(self):
        registry = DySelKernelRegistry()
        with pytest.raises(RegistrationError):
            registry.pool("nope")

    def test_initial_default_marker(self, axpy_spec):
        registry = DySelKernelRegistry()
        registry.declare(axpy_spec)
        registry.add_kernel("axpy", make_axpy_variant("a"))
        registry.add_kernel("axpy", make_axpy_variant("b"), initial_default=True)
        assert registry.pool("axpy").initial_default == "b"

    def test_mode_override(self, axpy_spec):
        registry = DySelKernelRegistry()
        registry.declare(axpy_spec)
        registry.add_kernel("axpy", make_axpy_variant("a"))
        registry.set_mode("axpy", ProfilingMode.SWAP)
        assert registry.pool("axpy").mode is ProfilingMode.SWAP

    def test_register_pool_roundtrip(self, fast_slow_pool):
        registry = DySelKernelRegistry()
        registry.register_pool(fast_slow_pool)
        pool = registry.pool("axpy")
        assert pool.variant_names == ("fast", "slow")
        assert dict(registry.items())["axpy"].variant_names == ("fast", "slow")


class TestReRegistration:
    """Regression: re-registering a signature replaces the old pool."""

    def test_register_pool_replaces_existing(self, axpy_spec, fast_slow_pool):
        from repro.compiler.variants import VariantPool

        registry = DySelKernelRegistry()
        registry.register_pool(fast_slow_pool)
        replacement = VariantPool(
            spec=axpy_spec,
            variants=(make_axpy_variant("v2a"), make_axpy_variant("v2b")),
        )
        registry.register_pool(replacement)
        pool = registry.pool("axpy")
        assert pool.variant_names == ("v2a", "v2b")
        assert list(registry) == ["axpy"]

    def test_replacement_resets_defaults_and_modes(self, axpy_spec, fast_slow_pool):
        from repro.compiler.variants import VariantPool

        registry = DySelKernelRegistry()
        registry.register_pool(fast_slow_pool)
        registry.set_mode("axpy", ProfilingMode.SWAP)
        replacement = VariantPool(
            spec=axpy_spec, variants=(make_axpy_variant("v2a"),)
        )
        registry.register_pool(replacement)
        pool = registry.pool("axpy")
        assert pool.initial_default == "v2a"
        assert pool.mode is not ProfilingMode.SWAP

    def test_replaced_pool_accepts_new_variants(self, axpy_spec, fast_slow_pool):
        """The old pool's names no longer collide after replacement."""
        from repro.compiler.variants import VariantPool

        registry = DySelKernelRegistry()
        registry.register_pool(fast_slow_pool)
        replacement = VariantPool(
            spec=axpy_spec, variants=(make_axpy_variant("v2a"),)
        )
        registry.register_pool(replacement)
        registry.add_kernel("axpy", make_axpy_variant("fast"))
        assert registry.pool("axpy").variant_names == ("v2a", "fast")
