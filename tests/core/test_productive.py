"""Unit tests for the three productive profiling plans (paper §2.2/Fig 3)."""

import numpy as np
import pytest

from repro.compiler.analyses.safe_point import safe_point_plan
from repro.core.productive import plan_profiling
from repro.errors import ProfilingError
from repro.kernel.launch import LaunchConfig
from repro.modes import ProfilingMode
from tests.conftest import (
    AXPY_UNIT,
    axpy_signature,
    make_axpy_args,
)

UNITS = 512


@pytest.fixture
def launch(config):
    return LaunchConfig.create(
        axpy_signature(), make_axpy_args(UNITS, config), UNITS
    )


@pytest.fixture
def safe(fast_slow_pool, cpu):
    return safe_point_plan(
        fast_slow_pool.variants,
        compute_units=cpu.spec.compute_units,
        workload_units=UNITS,
    )


class TestFullyProductive:
    def test_distinct_slices_all_productive(self, fast_slow_pool, launch, safe):
        plan = plan_profiling(fast_slow_pool, ProfilingMode.FULLY, launch, safe)
        assert plan.productive_task_count == 2
        assert plan.extra_copies == 0
        ranges = [(t.units.start, t.units.end) for t in plan.tasks]
        assert ranges[0][1] == ranges[1][0]  # adjacent, disjoint
        assert plan.remainder.start == ranges[1][1]
        assert plan.remainder.end == UNITS
        for task in plan.tasks:
            assert task.args is launch.args  # real output binding

    def test_workload_too_small_rejected(self, fast_slow_pool, config, cpu):
        tiny = LaunchConfig.create(
            axpy_signature(), make_axpy_args(1, config), 1
        )
        safe = safe_point_plan(
            fast_slow_pool.variants, cpu.spec.compute_units, 1
        )
        with pytest.raises(ProfilingError):
            plan_profiling(fast_slow_pool, ProfilingMode.FULLY, tiny, safe)

    def test_profiled_writes_land_in_output(self, fast_slow_pool, launch, safe):
        plan = plan_profiling(fast_slow_pool, ProfilingMode.FULLY, launch, safe)
        for task in plan.tasks:
            task.variant.execute(task.args, task.units)
        y = launch.args["y"].data
        x = launch.args["x"].data
        covered = slice(0, 2 * plan.units_per_variant * AXPY_UNIT)
        assert np.allclose(y[covered], 2.0 * x[covered])


class TestHybrid:
    def test_shared_slice_one_productive(self, fast_slow_pool, launch, safe):
        plan = plan_profiling(fast_slow_pool, ProfilingMode.HYBRID, launch, safe)
        assert plan.productive_task_count == 1
        assert plan.extra_copies == len(fast_slow_pool.variants) - 1
        spans = {(t.units.start, t.units.end) for t in plan.tasks}
        assert len(spans) == 1  # same slice for everyone
        assert plan.remainder.start == plan.units_per_variant

    def test_sandbox_absorbs_nonfirst_writes(self, fast_slow_pool, launch, safe):
        plan = plan_profiling(fast_slow_pool, ProfilingMode.HYBRID, launch, safe)
        committing, sandboxed = plan.tasks
        sandboxed.variant.execute(sandboxed.args, sandboxed.units)
        # Nothing reached the real output yet.
        assert (launch.args["y"].data == 0).all()
        committing.variant.execute(committing.args, committing.units)
        span = slice(0, plan.units_per_variant * AXPY_UNIT)
        assert np.allclose(
            launch.args["y"].data[span], 2.0 * launch.args["x"].data[span]
        )

    def test_finalize_releases_copies(self, fast_slow_pool, launch, safe):
        plan = plan_profiling(fast_slow_pool, ProfilingMode.HYBRID, launch, safe)
        plan.finalize("fast", launch)
        assert plan.allocator.live_copies == 0


class TestSwap:
    def test_private_outputs_per_variant(self, fast_slow_pool, launch, safe):
        plan = plan_profiling(fast_slow_pool, ProfilingMode.SWAP, launch, safe)
        assert plan.productive_task_count == 1  # after finalize
        assert plan.extra_copies == len(fast_slow_pool.variants)
        for task in plan.tasks:
            assert task.private_outputs is not None
            assert task.args["y"] is task.private_outputs["y"]

    def test_finalize_swaps_winner(self, fast_slow_pool, launch, safe):
        plan = plan_profiling(fast_slow_pool, ProfilingMode.SWAP, launch, safe)
        for task in plan.tasks:
            task.variant.execute(task.args, task.units)
        assert (launch.args["y"].data == 0).all()
        plan.finalize("slow", launch)
        span = slice(0, plan.units_per_variant * AXPY_UNIT)
        assert np.allclose(
            launch.args["y"].data[span], 2.0 * launch.args["x"].data[span]
        )

    def test_unknown_winner_rejected(self, fast_slow_pool, launch, safe):
        plan = plan_profiling(fast_slow_pool, ProfilingMode.SWAP, launch, safe)
        with pytest.raises(ProfilingError):
            plan.finalize("nope", launch)


class TestAlignment:
    def test_slices_aligned_for_coarsened_variants(self, axpy_spec, config, cpu):
        from repro.compiler.variants import VariantPool
        from tests.conftest import make_axpy_variant

        pool = VariantPool(
            spec=axpy_spec,
            variants=(
                make_axpy_variant("fine", wa_factor=3),
                make_axpy_variant("coarse", wa_factor=4),
            ),
        )
        launch = LaunchConfig.create(
            axpy_signature(), make_axpy_args(1024, config), 1024
        )
        safe = safe_point_plan(pool.variants, cpu.spec.compute_units, 1024)
        plan = plan_profiling(pool, ProfilingMode.FULLY, launch, safe)
        for task in plan.tasks:
            # Must not raise: units align to each variant's factor.
            task.variant.groups_for_units(task.units)
