"""Unit tests for the launch-time profiling policy."""

from repro.core import policy
from repro.core.selection import (
    SelectionCache,
    SelectionRecord,
    VariantMeasurement,
)
from repro.modes import OrchestrationFlow, ProfilingMode


def cached(kernel="axpy", selected="slow"):
    cache = SelectionCache()
    record = SelectionRecord(
        kernel=kernel, mode=ProfilingMode.FULLY, flow=OrchestrationFlow.SYNC
    )
    record.observe(
        VariantMeasurement(
            variant=selected, measured_cycles=10.0, profiled_units=4, productive=True
        )
    )
    cache.record(record)
    return cache


class TestDecide:
    def test_profiles_large_workload(self, fast_slow_pool, config):
        decision = policy.decide(
            fast_slow_pool, 100000, True, SelectionCache(), config
        )
        assert decision.profile

    def test_small_workload_deactivates(self, fast_slow_pool, config):
        decision = policy.decide(fast_slow_pool, 16, True, SelectionCache(), config)
        assert not decision.profile
        assert decision.variant_name == "fast"  # pool default
        assert "small workload" in decision.reason

    def test_small_workload_uses_cache_if_present(self, fast_slow_pool, config):
        decision = policy.decide(fast_slow_pool, 16, True, cached(), config)
        assert not decision.profile
        assert decision.variant_name == "slow"

    def test_flag_off_uses_cached_selection(self, fast_slow_pool, config):
        decision = policy.decide(fast_slow_pool, 100000, False, cached(), config)
        assert not decision.profile
        assert decision.variant_name == "slow"

    def test_flag_off_without_cache_uses_default(self, fast_slow_pool, config):
        decision = policy.decide(
            fast_slow_pool, 100000, False, SelectionCache(), config
        )
        assert not decision.profile
        assert decision.variant_name == "fast"

    def test_reprofiling_allowed_with_cache(self, fast_slow_pool, config):
        """An explicit profiling=True re-profiles even with a cache entry
        (how callers handle changed inputs)."""
        decision = policy.decide(fast_slow_pool, 100000, True, cached(), config)
        assert decision.profile

    def test_single_variant_never_profiles(self, axpy_spec, config):
        from repro.compiler.variants import VariantPool
        from tests.conftest import make_axpy_variant

        pool = VariantPool(spec=axpy_spec, variants=(make_axpy_variant("only"),))
        decision = policy.decide(pool, 100000, True, SelectionCache(), config)
        assert not decision.profile
        assert decision.variant_name == "only"

    def test_stale_cached_variant_falls_back_to_default(
        self, fast_slow_pool, config
    ):
        """Regression: a cached winner that no longer names a pool variant
        must not launch — fall back to the default, with the reason."""
        cache = cached(selected="removed-by-reregistration")
        decision = policy.decide(fast_slow_pool, 100000, False, cache, config)
        assert not decision.profile
        assert decision.variant_name == "fast"  # pool default
        assert "not in the current pool" in decision.reason
        # The stale entry is evicted, not merely ignored.
        assert cache.lookup("axpy") is None

    def test_stale_cache_small_workload_uses_default(
        self, fast_slow_pool, config
    ):
        cache = cached(selected="gone")
        decision = policy.decide(fast_slow_pool, 16, True, cache, config)
        assert not decision.profile
        assert decision.variant_name == "fast"
        assert cache.lookup("axpy") is None

    def test_stale_cache_emits_invalidate_event(self, fast_slow_pool, config):
        from repro.obs import EventKind, RecordingTracer

        tracer = RecordingTracer()
        cache = cached(selected="gone")
        policy.decide(
            fast_slow_pool, 100000, False, cache, config, tracer, 7.0
        )
        (event,) = [
            e for e in tracer.events if e.kind is EventKind.CACHE_INVALIDATE
        ]
        assert event.args["stale_variant"] == "gone"
        assert event.start_cycles == 7.0

    def test_cache_hit_emits_event(self, fast_slow_pool, config):
        from repro.obs import EventKind, RecordingTracer

        tracer = RecordingTracer()
        policy.decide(fast_slow_pool, 100000, False, cached(), config, tracer)
        (event,) = [
            e for e in tracer.events if e.kind is EventKind.CACHE_HIT
        ]
        assert event.args["selected"] == "slow"

    def test_threshold_respects_coarsening(self, axpy_spec, config):
        """The threshold counts base work-groups (finest variant)."""
        from repro.compiler.variants import VariantPool
        from tests.conftest import make_axpy_variant

        pool = VariantPool(
            spec=axpy_spec,
            variants=(
                make_axpy_variant("fine", wa_factor=1),
                make_axpy_variant("coarse", wa_factor=64),
            ),
        )
        # 200 units = 200 fine groups (>128): profiling stays on.
        assert policy.decide(pool, 200, True, SelectionCache(), config).profile
