"""Unit tests for the mixed-execution extension (paper §4.1 future work)."""

import pytest

from repro.core.mixed import MixedPlan, build_mixed_plan, execute_mixed
from repro.device.engine import ExecutionEngine
from repro.errors import ProfilingError
from repro.kernel import WorkRange
from tests.conftest import axpy_output_ok, make_axpy_args


class TestMixedPlan:
    def test_contiguity_enforced(self):
        with pytest.raises(ProfilingError, match="contiguous"):
            MixedPlan(
                segments=(
                    (WorkRange(0, 4), "a"),
                    (WorkRange(8, 12), "b"),
                )
            )

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            MixedPlan(segments=())

    def test_variant_lookup(self):
        plan = MixedPlan(
            segments=((WorkRange(0, 4), "a"), (WorkRange(4, 10), "b"))
        )
        assert plan.variant_for(0) == "a"
        assert plan.variant_for(4) == "b"
        assert plan.span.end == 10
        with pytest.raises(ProfilingError):
            plan.variant_for(10)


class TestBuildAndExecute:
    def test_plan_covers_workload_and_computes(self, fast_slow_pool, cpu, config):
        engine = ExecutionEngine(cpu, config)
        args = make_axpy_args(256, config)
        plan = build_mixed_plan(fast_slow_pool, engine, args, 256, num_slices=4)
        assert plan.span.start == 0
        assert plan.span.end == 256
        execute_mixed(plan, fast_slow_pool, engine, args)
        assert axpy_output_ok(args)

    def test_uniform_workload_collapses_to_one_segment(
        self, fast_slow_pool, cpu, quiet_config
    ):
        """With one globally-best variant, merging yields a single
        segment — mixed execution degenerates to the oracle."""
        engine = ExecutionEngine(cpu, quiet_config)
        args = make_axpy_args(256, quiet_config)
        plan = build_mixed_plan(
            fast_slow_pool, engine, args, 256, num_slices=4
        )
        assert len(plan.segments) == 1
        assert plan.segments[0][1] == "fast"

    def test_invalid_slices(self, fast_slow_pool, cpu, config):
        engine = ExecutionEngine(cpu, config)
        args = make_axpy_args(64, config)
        with pytest.raises(ProfilingError):
            build_mixed_plan(fast_slow_pool, engine, args, 64, num_slices=0)
