"""Unit tests for the paper-faithful functional facade (Fig 6)."""

import pytest

from repro.core.api import DySelContext, parse_mode
from repro.errors import LaunchError, RegistrationError
from repro.modes import OrchestrationFlow, ProfilingMode
from tests.conftest import (
    axpy_output_ok,
    axpy_signature,
    make_axpy_args,
    make_axpy_variant,
)
from repro.kernel import AccessPattern


class TestParseMode:
    @pytest.mark.parametrize(
        "spelling, expected",
        [
            ("fully_sync", (ProfilingMode.FULLY, OrchestrationFlow.SYNC)),
            ("fully_async", (ProfilingMode.FULLY, OrchestrationFlow.ASYNC)),
            ("hybrid_sync", (ProfilingMode.HYBRID, OrchestrationFlow.SYNC)),
            ("hybrid_async", (ProfilingMode.HYBRID, OrchestrationFlow.ASYNC)),
            ("swap_sync", (ProfilingMode.SWAP, OrchestrationFlow.SYNC)),
        ],
    )
    def test_known_modes(self, spelling, expected):
        assert parse_mode(spelling) == expected

    def test_swap_async_names_rule_and_nearest_legal_mode(self):
        # Table 1: swap×async is structurally well-formed but illegal;
        # the rejection must teach, not just refuse.
        with pytest.raises(LaunchError) as excinfo:
            parse_mode("swap_async")
        message = str(excinfo.value)
        assert "DYSEL-ASYNC-001" in message
        assert "Table 1" in message
        assert "'swap_sync'" in message  # nearest legal mode

    def test_typo_gets_a_suggestion(self):
        with pytest.raises(LaunchError, match="did you mean 'fully_async'"):
            parse_mode("fully_asink")
        with pytest.raises(LaunchError, match="did you mean 'hybrid_sync'"):
            parse_mode("hybrid-sync")

    def test_garbage_lists_accepted_spellings(self):
        with pytest.raises(LaunchError, match="expected one of"):
            parse_mode("???")


class TestContext:
    def _context(self, cpu, config):
        context = DySelContext(cpu, config)
        sig = axpy_signature()
        context.DySelAddKernel(sig, make_axpy_variant("fast"))
        context.DySelAddKernel(
            sig,
            make_axpy_variant("slow", AccessPattern.STRIDED),
        )
        return context

    def test_add_and_launch(self, cpu, config):
        context = self._context(cpu, config)
        args = make_axpy_args(512, config)
        result = context.DySelLaunchKernel("axpy", args, 512)
        assert result.selected == "fast"
        assert axpy_output_ok(args)

    def test_profiling_flag(self, cpu, config):
        context = self._context(cpu, config)
        args = make_axpy_args(512, config)
        context.DySelLaunchKernel("axpy", args, 512)
        result = context.DySelLaunchKernel("axpy", args, 512, profiling=False)
        assert not result.profiled

    def test_mode_string_controls_flow(self, cpu, config):
        context = self._context(cpu, config)
        args = make_axpy_args(512, config)
        result = context.DySelLaunchKernel(
            "axpy", args, 512, mode="fully_sync"
        )
        assert result.flow is OrchestrationFlow.SYNC

    def test_wa_factor_override(self, cpu, config):
        context = DySelContext(cpu, config)
        sig = axpy_signature()
        context.DySelAddKernel(sig, make_axpy_variant("v"), wa_factor=4)
        pool = context.runtime.registry.pool("axpy")
        assert pool.variant("v").wa_factor == 4

    def test_late_sandbox_index_rejected(self, cpu, config):
        context = self._context(cpu, config)
        with pytest.raises(RegistrationError, match="first"):
            context.DySelAddKernel(
                axpy_signature(),
                make_axpy_variant("late"),
                sandbox_index=("y",),
            )

    def test_initial_default_marker(self, cpu, config):
        context = DySelContext(cpu, config)
        sig = axpy_signature()
        context.DySelAddKernel(sig, make_axpy_variant("a"))
        context.DySelAddKernel(
            sig, make_axpy_variant("b"), initial_default=True
        )
        assert context.runtime.registry.pool("axpy").initial_default == "b"
