"""Unit tests for the sync/async orchestration flows."""

import pytest

from repro.compiler.analyses.safe_point import safe_point_plan
from repro.core.orchestrator import run_async, run_sync
from repro.core.productive import plan_profiling
from repro.device.engine import ExecutionEngine
from repro.errors import ProfilingError
from repro.kernel.launch import LaunchConfig
from repro.modes import OrchestrationFlow, ProfilingMode
from tests.conftest import axpy_output_ok, axpy_signature, make_axpy_args

UNITS = 512


def setup(pool, device, config, mode=ProfilingMode.FULLY):
    engine = ExecutionEngine(device, config)
    args = make_axpy_args(UNITS, config)
    launch = LaunchConfig.create(axpy_signature(), args, UNITS)
    safe = safe_point_plan(
        pool.variants, device.spec.compute_units, UNITS
    )
    plan = plan_profiling(pool, mode, launch, safe)
    return engine, launch, plan


class TestSync:
    def test_selects_and_completes(self, fast_slow_pool, cpu, config):
        engine, launch, plan = setup(fast_slow_pool, cpu, config)
        outcome = run_sync(engine, fast_slow_pool, plan, launch, config)
        assert outcome.record.selected == "fast"
        assert outcome.eager_chunks == 0
        assert outcome.end_cycles > outcome.profiling_done_cycles
        assert axpy_output_ok(launch.args)

    def test_measurements_for_every_candidate(self, fast_slow_pool, cpu, config):
        engine, launch, plan = setup(fast_slow_pool, cpu, config)
        outcome = run_sync(engine, fast_slow_pool, plan, launch, config)
        assert {m.variant for m in outcome.record.measurements} == {
            "fast",
            "slow",
        }

    def test_empty_remainder_ok(self, fast_slow_pool, cpu, config):
        engine = ExecutionEngine(cpu, config)
        args = make_axpy_args(UNITS, config)
        launch = LaunchConfig.create(axpy_signature(), args, UNITS)
        safe = safe_point_plan(
            fast_slow_pool.variants, cpu.spec.compute_units, UNITS,
            max_workload_fraction=1.0,
        )
        plan = plan_profiling(fast_slow_pool, ProfilingMode.FULLY, launch, safe)
        # Force-profile everything by shrinking the remainder manually.
        outcome = run_sync(engine, fast_slow_pool, plan, launch, config)
        assert outcome.record.selected is not None


class TestAsync:
    def test_selects_and_completes(self, fast_slow_pool, cpu, config):
        engine, launch, plan = setup(fast_slow_pool, cpu, config)
        outcome = run_async(engine, fast_slow_pool, plan, launch, config)
        assert outcome.record.selected == "fast"
        assert axpy_output_ok(launch.args)

    def test_eager_chunks_dispatch_on_cpu(self, fast_slow_pool, cpu, config):
        engine, launch, plan = setup(fast_slow_pool, cpu, config)
        outcome = run_async(engine, fast_slow_pool, plan, launch, config)
        assert outcome.eager_chunks > 0
        assert outcome.eager_units > 0

    def test_gpu_barely_eager_dispatches(self, fast_slow_pool, gpu, config):
        """§5.1: host query latency exceeds micro-profile time on GPU."""
        engine, launch, plan = setup(fast_slow_pool, gpu, config)
        outcome = run_async(engine, fast_slow_pool, plan, launch, config)
        assert outcome.eager_chunks <= 2
        assert axpy_output_ok(launch.args)

    def test_initial_variant_override(self, fast_slow_pool, cpu, config):
        engine, launch, plan = setup(fast_slow_pool, cpu, config)
        outcome = run_async(
            engine, fast_slow_pool, plan, launch, config, initial_variant="slow"
        )
        assert outcome.record.selected == "fast"
        assert axpy_output_ok(launch.args)

    def test_bad_initial_name_rejected(self, fast_slow_pool, cpu, config):
        from repro.errors import RegistrationError

        engine, launch, plan = setup(fast_slow_pool, cpu, config)
        with pytest.raises(RegistrationError):
            run_async(
                engine,
                fast_slow_pool,
                plan,
                launch,
                config,
                initial_variant="nope",
            )

    def test_swap_mode_rejected(self, fast_slow_pool, cpu, config):
        engine, launch, plan = setup(
            fast_slow_pool, cpu, config, mode=ProfilingMode.SWAP
        )
        with pytest.raises(ProfilingError, match="asynchronously"):
            run_async(engine, fast_slow_pool, plan, launch, config)

    def test_async_not_slower_than_sync_much(self, fast_slow_pool, cpu, config):
        sync_engine, sync_launch, sync_plan = setup(fast_slow_pool, cpu, config)
        sync = run_sync(sync_engine, fast_slow_pool, sync_plan, sync_launch, config)
        async_engine, async_launch, async_plan = setup(fast_slow_pool, cpu, config)
        asyn = run_async(
            async_engine, fast_slow_pool, async_plan, async_launch, config
        )
        assert asyn.elapsed_cycles <= sync.elapsed_cycles * 1.1
