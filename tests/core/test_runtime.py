"""Integration tests for DySelRuntime: launches across modes and flows."""

import dataclasses

import numpy as np
import pytest

from repro.core import DySelRuntime
from repro.core.runtime import ProfilingDemotionWarning
from repro.errors import LaunchError, ProfilingError
from repro.modes import OrchestrationFlow, ProfilingMode
from tests.conftest import (
    axpy_output_ok,
    make_axpy_args,
    make_axpy_variant,
)

UNITS = 512


@pytest.fixture
def runtime(cpu, config, fast_slow_pool):
    rt = DySelRuntime(cpu, config)
    rt.register_pool(fast_slow_pool)
    return rt


class TestLaunchBasics:
    def test_selects_fast_and_computes(self, runtime, config):
        args = make_axpy_args(UNITS, config)
        result = runtime.launch_kernel("axpy", args, UNITS)
        assert result.selected == "fast"
        assert result.profiled
        assert result.elapsed_cycles > 0
        assert axpy_output_ok(args)

    def test_unknown_kernel(self, runtime, config):
        with pytest.raises(LaunchError):
            runtime.launch_kernel("nope", {}, 10)

    def test_all_modes_produce_correct_output(self, runtime, config):
        for mode in ProfilingMode:
            args = make_axpy_args(UNITS, config)
            result = runtime.launch_kernel(
                "axpy", args, UNITS, mode=mode, flow=OrchestrationFlow.SYNC
            )
            assert result.selected == "fast", mode
            assert axpy_output_ok(args), mode

    def test_async_flows_produce_correct_output(self, runtime, config):
        for mode in (ProfilingMode.FULLY, ProfilingMode.HYBRID):
            args = make_axpy_args(UNITS, config)
            result = runtime.launch_kernel(
                "axpy", args, UNITS, mode=mode, flow=OrchestrationFlow.ASYNC
            )
            assert result.flow is OrchestrationFlow.ASYNC
            assert axpy_output_ok(args), mode

    def test_swap_falls_back_to_sync(self, runtime, config):
        args = make_axpy_args(UNITS, config)
        result = runtime.launch_kernel(
            "axpy",
            args,
            UNITS,
            mode=ProfilingMode.SWAP,
            flow=OrchestrationFlow.ASYNC,
        )
        assert result.flow is OrchestrationFlow.SYNC
        assert "forced synchronous" in result.reason
        assert axpy_output_ok(args)


class TestActivationFlag:
    def test_cached_selection_reused(self, runtime, config):
        args = make_axpy_args(UNITS, config)
        first = runtime.launch_kernel("axpy", args, UNITS)
        assert first.profiled
        args2 = make_axpy_args(UNITS, config)
        second = runtime.launch_kernel("axpy", args2, UNITS, profiling=False)
        assert not second.profiled
        assert second.selected == first.selected
        assert axpy_output_ok(args2)

    def test_iterative_time_accumulates(self, runtime, config):
        args = make_axpy_args(UNITS, config)
        runtime.launch_kernel("axpy", args, UNITS)
        t1 = runtime.engine.now
        runtime.launch_kernel("axpy", args, UNITS, profiling=False)
        assert runtime.engine.now > t1

    def test_profiled_iteration_slower_than_cached(self, cpu, config, fast_slow_pool):
        """The amortization story: later iterations are cheaper."""
        rt = DySelRuntime(cpu, config)
        rt.register_pool(fast_slow_pool)
        args = make_axpy_args(UNITS, config)
        first = rt.launch_kernel("axpy", args, UNITS)
        second = rt.launch_kernel("axpy", args, UNITS, profiling=False)
        assert second.elapsed_cycles < first.elapsed_cycles


class TestSmallWorkload:
    def test_small_launch_skips_profiling(self, runtime, config):
        args = make_axpy_args(16, config)
        result = runtime.launch_kernel("axpy", args, 16)
        assert not result.profiled
        assert "small workload" in result.reason
        assert axpy_output_ok(args)

    def test_zero_units(self, runtime, config):
        args = make_axpy_args(1, config)
        result = runtime.launch_kernel("axpy", args, 0)
        assert not result.profiled


class TestSelectionQuality:
    def test_picks_true_best_without_noise(self, cpu, quiet_config, fast_slow_pool):
        rt = DySelRuntime(cpu, quiet_config)
        rt.register_pool(fast_slow_pool)
        args = make_axpy_args(UNITS, quiet_config)
        result = rt.launch_kernel("axpy", args, UNITS)
        assert result.selected == "fast"
        record = result.record
        assert record is not None
        assert len(record.measurements) == 2

    def test_initial_variant_override(self, runtime, config):
        args = make_axpy_args(UNITS, config)
        result = runtime.launch_kernel(
            "axpy",
            args,
            UNITS,
            flow=OrchestrationFlow.ASYNC,
            initial_variant="slow",
        )
        # Even with the worst initial default, the final pick is right.
        assert result.selected == "fast"
        assert axpy_output_ok(args)

    def test_overhead_near_oracle(self, cpu, config, fast_slow_pool):
        """DySel's elapsed time must stay close to a pure-best run."""
        from repro.device.engine import ExecutionEngine, Priority
        from repro.kernel import WorkRange

        engine = ExecutionEngine(cpu, config)
        args = make_axpy_args(UNITS, config)
        task = engine.submit(
            fast_slow_pool.variant("fast"),
            args,
            WorkRange(0, UNITS),
            priority=Priority.BATCH,
        )
        engine.wait(task)
        oracle = engine.now

        rt = DySelRuntime(cpu, config)
        rt.register_pool(fast_slow_pool)
        args2 = make_axpy_args(UNITS, config)
        result = rt.launch_kernel("axpy", args2, UNITS)
        assert result.elapsed_cycles / oracle < 1.15


class TestStaleSelectionCache:
    """Regression: re-registration must never launch a stale cached pick."""

    def replacement_pool(self, axpy_spec):
        from repro.compiler.variants import VariantPool

        return VariantPool(
            spec=axpy_spec,
            variants=(make_axpy_variant("v2a"), make_axpy_variant("v2b")),
        )

    def test_reregistration_invalidates_cached_selection(
        self, runtime, config, axpy_spec
    ):
        args = make_axpy_args(UNITS, config)
        first = runtime.launch_kernel("axpy", args, UNITS)
        assert first.selected == "fast"
        assert "axpy" in runtime.cache

        runtime.register_pool(self.replacement_pool(axpy_spec))
        assert "axpy" not in runtime.cache

        args2 = make_axpy_args(UNITS, config)
        second = runtime.launch_kernel("axpy", args2, UNITS, profiling=False)
        assert second.selected == "v2a"  # new pool's default, never "fast"
        assert "no cached selection" in second.reason
        assert axpy_output_ok(args2)

    def test_add_kernel_invalidates_cached_selection(self, runtime, config):
        args = make_axpy_args(UNITS, config)
        runtime.launch_kernel("axpy", args, UNITS)
        assert "axpy" in runtime.cache
        runtime.add_kernel("axpy", make_axpy_variant("extra"))
        # The cached winner was chosen against the old candidate set.
        assert "axpy" not in runtime.cache

    def test_bare_registry_replacement_still_safe(
        self, runtime, config, axpy_spec
    ):
        """Defense in depth: even a registry mutated behind the runtime's
        back cannot launch a variant the current pool does not have."""
        args = make_axpy_args(UNITS, config)
        runtime.launch_kernel("axpy", args, UNITS)  # caches "fast"
        runtime.registry.register_pool(self.replacement_pool(axpy_spec))
        assert "axpy" in runtime.cache  # facade bypassed: still stale

        args2 = make_axpy_args(UNITS, config)
        second = runtime.launch_kernel("axpy", args2, UNITS, profiling=False)
        assert second.selected == "v2a"
        assert "not in the current pool" in second.reason
        assert "axpy" not in runtime.cache  # policy evicted it


class TestPlanDemotion:
    """Regression: an infeasible profiling plan demotes, never raises."""

    def coprime_pool(self, axpy_spec, spec=None):
        """wa factors 7/11/13: the fair slice is LCM = 1001 units, so a
        1024-unit launch fits one slice (hybrid) but not three (fully)."""
        from repro.compiler.variants import VariantPool

        return VariantPool(
            spec=spec if spec is not None else axpy_spec,
            variants=(
                make_axpy_variant("w7", wa_factor=7),
                make_axpy_variant("w11", wa_factor=11),
                make_axpy_variant("w13", wa_factor=13),
            ),
        )

    def test_infeasible_fully_demotes_to_hybrid(self, cpu, config, axpy_spec):
        rt = DySelRuntime(cpu, config)
        rt.register_pool(self.coprime_pool(axpy_spec))
        args = make_axpy_args(1024, config)
        with pytest.warns(ProfilingDemotionWarning, match="demoted to hybrid"):
            result = rt.launch_kernel(
                "axpy",
                args,
                1024,
                mode=ProfilingMode.FULLY,
                flow=OrchestrationFlow.SYNC,
            )
        assert result.profiled
        assert result.mode is ProfilingMode.HYBRID
        assert "demoted to hybrid" in result.reason
        assert "infeasible" in result.reason
        assert axpy_output_ok(args)

    def test_workload_below_fair_slice_demotes_to_profiling_off(
        self, cpu, config, axpy_spec
    ):
        """960 units pass the small-workload policy (137 base groups) but
        cannot host even one 1001-unit fair slice."""
        rt = DySelRuntime(cpu, config)
        rt.register_pool(self.coprime_pool(axpy_spec))
        args = make_axpy_args(960, config)
        with pytest.warns(ProfilingDemotionWarning):
            result = rt.launch_kernel(
                "axpy",
                args,
                960,
                mode=ProfilingMode.FULLY,
                flow=OrchestrationFlow.SYNC,
            )
        assert not result.profiled
        assert result.selected == "w7"  # pool default
        assert "demoted to profiling-off" in result.reason
        assert axpy_output_ok(args)

    def test_unsandboxable_pool_demotes_to_profiling_off(self, config):
        """When the hybrid fallback is impossible too (no declared outputs
        to sandbox), the launch still completes with the pool default."""
        from repro.device import make_cpu
        from repro.kernel import ArgSpec, KernelSignature, KernelSpec

        spec = KernelSpec(
            signature=KernelSignature(
                "axpy", (ArgSpec("x"), ArgSpec("y"))  # no outputs declared
            )
        )
        cfg = dataclasses.replace(config, verify="off")
        rt = DySelRuntime(make_cpu(cfg), cfg)
        rt.register_pool(self.coprime_pool(None, spec=spec))
        args = make_axpy_args(1024, cfg)
        with pytest.warns(
            ProfilingDemotionWarning, match="profiling-off"
        ):
            result = rt.launch_kernel(
                "axpy",
                args,
                1024,
                mode=ProfilingMode.FULLY,
                flow=OrchestrationFlow.SYNC,
            )
        assert not result.profiled
        assert result.selected == "w7"
        assert "demoted to profiling-off" in result.reason


class TestLargePoolStress:
    def test_ten_variant_pool(self, cpu, config, axpy_spec):
        """The paper's 2-10 candidate regime, at the top end."""
        from repro.compiler.variants import VariantPool
        from repro.kernel import AccessPattern

        variants = [make_axpy_variant("v0", AccessPattern.UNIT_STRIDE)]
        for i in range(1, 10):
            variants.append(
                make_axpy_variant(
                    f"v{i}", AccessPattern.STRIDED, stride_bytes=64 + 8 * i
                )
            )
        pool = VariantPool(spec=axpy_spec, variants=tuple(variants))
        rt = DySelRuntime(cpu, config)
        rt.register_pool(pool)
        args = make_axpy_args(2048, config)
        result = rt.launch_kernel("axpy", args, 2048)
        assert result.selected == "v0"
        assert axpy_output_ok(args)
