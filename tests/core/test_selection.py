"""Unit tests for selection records and the cross-launch cache."""

import pytest

from repro.core.selection import (
    SelectionCache,
    SelectionRecord,
    VariantMeasurement,
)
from repro.errors import ProfilingError
from repro.modes import OrchestrationFlow, ProfilingMode


def measurement(name, cycles, units=8):
    return VariantMeasurement(
        variant=name, measured_cycles=cycles, profiled_units=units, productive=True
    )


def record():
    return SelectionRecord(
        kernel="k", mode=ProfilingMode.FULLY, flow=OrchestrationFlow.SYNC
    )


class TestSelectionRecord:
    def test_running_minimum(self):
        rec = record()
        rec.observe(measurement("a", 100.0))
        assert rec.selected == "a"
        rec.observe(measurement("b", 50.0))
        assert rec.selected == "b"
        rec.observe(measurement("c", 75.0))
        assert rec.selected == "b"

    def test_ties_keep_first(self):
        rec = record()
        rec.observe(measurement("a", 100.0))
        rec.observe(measurement("b", 100.0))
        assert rec.selected == "a"

    def test_best_measurement(self):
        rec = record()
        rec.observe(measurement("a", 100.0))
        rec.observe(measurement("b", 50.0))
        assert rec.best_measurement().variant == "b"

    def test_ranking_sorted(self):
        rec = record()
        for name, cycles in (("a", 30.0), ("b", 10.0), ("c", 20.0)):
            rec.observe(measurement(name, cycles))
        assert [m.variant for m in rec.ranking()] == ["b", "c", "a"]

    def test_empty_record_raises(self):
        with pytest.raises(ProfilingError):
            record().best_measurement()

    def test_cycles_per_unit(self):
        m = measurement("a", 100.0, units=4)
        assert m.cycles_per_unit == 25.0


class TestHistoryLimit:
    """The serving-longevity bugfix: measurement history is bounded."""

    def test_history_is_bounded(self):
        rec = record()
        rec.history_limit = 8
        for i in range(1000):
            rec.observe(measurement(f"v{i}", 1000.0 + i))
        assert len(rec.measurements) == 8

    def test_best_survives_trimming(self):
        rec = record()
        rec.history_limit = 4
        rec.observe(measurement("champ", 1.0))
        for i in range(100):
            rec.observe(measurement(f"v{i}", 1000.0 + i))
        assert rec.selected == "champ"
        assert rec.best_measurement().measured_cycles == 1.0
        assert len(rec.measurements) == 4

    def test_oldest_dropped_first(self):
        rec = record()
        rec.history_limit = 3
        for name, cycles in (
            ("a", 40.0),
            ("b", 30.0),
            ("c", 20.0),
            ("d", 10.0),
        ):
            rec.observe(measurement(name, cycles))
        assert [m.variant for m in rec.measurements] == ["b", "c", "d"]
        assert rec.selected == "d"

    def test_limit_never_binds_for_normal_pools(self):
        rec = record()
        for name, cycles in (("a", 30.0), ("b", 10.0), ("c", 20.0)):
            rec.observe(measurement(name, cycles))
        assert len(rec.measurements) == 3
        assert [m.variant for m in rec.ranking()] == ["b", "c", "a"]
        empty = VariantMeasurement("a", 100.0, 0, True)
        assert empty.cycles_per_unit == float("inf")


class TestTieBreaking:
    """Regression: ties resolve by registration order, not arrival order."""

    def order_record(self, order=("a", "b", "c")):
        return SelectionRecord(
            kernel="k",
            mode=ProfilingMode.FULLY,
            flow=OrchestrationFlow.SYNC,
            variant_order=order,
        )

    def test_tie_prefers_earlier_registered_variant(self):
        rec = self.order_record()
        rec.observe(measurement("c", 100.0))
        rec.observe(measurement("a", 100.0))
        assert rec.selected == "a"

    def test_tie_break_is_order_independent(self):
        """Async completion order must not change the winner."""
        import itertools

        ties = [measurement(name, 100.0) for name in ("a", "b", "c")]
        winners = set()
        for perm in itertools.permutations(ties):
            rec = self.order_record()
            for m in perm:
                rec.observe(m)
            winners.add(rec.selected)
        assert winners == {"a"}

    def test_strictly_faster_still_wins(self):
        rec = self.order_record()
        rec.observe(measurement("a", 100.0))
        rec.observe(measurement("c", 50.0))
        assert rec.selected == "c"

    def test_without_order_first_observation_wins(self):
        """Legacy behaviour when no registration order is attached."""
        rec = record()
        rec.observe(measurement("c", 100.0))
        rec.observe(measurement("a", 100.0))
        assert rec.selected == "c"


class TestSelectionCache:
    def test_record_and_lookup(self):
        cache = SelectionCache()
        rec = record()
        rec.observe(measurement("a", 10.0))
        cache.record(rec)
        assert cache.lookup("k").selected == "a"
        assert "k" in cache

    def test_empty_selection_rejected(self):
        cache = SelectionCache()
        with pytest.raises(ProfilingError):
            cache.record(record())

    def test_invalidate(self):
        cache = SelectionCache()
        rec = record()
        rec.observe(measurement("a", 10.0))
        cache.record(rec)
        cache.invalidate("k")
        assert cache.lookup("k") is None
        cache.invalidate("never-seen")  # no-op

    def test_overwrite(self):
        cache = SelectionCache()
        first = record()
        first.observe(measurement("a", 10.0))
        cache.record(first)
        second = record()
        second.observe(measurement("b", 5.0))
        cache.record(second)
        assert cache.lookup("k").selected == "b"
