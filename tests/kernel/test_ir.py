"""Unit tests for the kernel IR: loops, bounds, accesses, evaluation."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.kernel import (
    AccessPattern,
    AtomicKind,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)


def simple_ir(**overrides):
    defaults = dict(
        loops=(
            Loop("outer", LoopBound(static_trips=4), is_work_item_loop=True),
            Loop("inner", LoopBound(static_trips=10)),
        ),
        accesses=(
            MemoryAccess("x", False, AccessPattern.UNIT_STRIDE, 4.0, loop="inner"),
            MemoryAccess("y", True, AccessPattern.UNIT_STRIDE, 4.0, loop="outer"),
        ),
        flops_per_trip=2.0,
    )
    defaults.update(overrides)
    return KernelIR(**defaults)


class TestLoopBound:
    def test_static_trips(self):
        bound = LoopBound(static_trips=5)
        assert not bound.is_data_dependent
        trips = bound.trips({}, np.arange(3))
        assert (trips == 5.0).all()

    def test_evaluator(self):
        bound = LoopBound(evaluator=lambda args, ids: ids.astype(float) + 1)
        assert bound.is_data_dependent
        trips = bound.trips({}, np.arange(3))
        assert list(trips) == [1.0, 2.0, 3.0]

    def test_exactly_one_source_required(self):
        with pytest.raises(IRError):
            LoopBound()
        with pytest.raises(IRError):
            LoopBound(static_trips=1, evaluator=lambda a, i: i)

    def test_negative_static_rejected(self):
        with pytest.raises(IRError):
            LoopBound(static_trips=-1)

    def test_evaluator_shape_checked(self):
        bound = LoopBound(evaluator=lambda args, ids: np.zeros(1))
        with pytest.raises(IRError, match="shape"):
            bound.trips({}, np.arange(3))


class TestValidation:
    def test_duplicate_loop_names(self):
        with pytest.raises(IRError, match="duplicate"):
            simple_ir(
                loops=(
                    Loop("a", LoopBound(static_trips=1)),
                    Loop("a", LoopBound(static_trips=1)),
                )
            )

    def test_unknown_loop_reference(self):
        with pytest.raises(IRError, match="unknown loop"):
            simple_ir(
                accesses=(
                    MemoryAccess("x", False, AccessPattern.GATHER, 4.0, loop="nope"),
                )
            )

    def test_unknown_scope_reference(self):
        with pytest.raises(IRError, match="scope"):
            simple_ir(
                accesses=(
                    MemoryAccess(
                        "x",
                        False,
                        AccessPattern.GATHER,
                        4.0,
                        scope=("nope",),
                    ),
                )
            )

    def test_strided_needs_stride(self):
        with pytest.raises(IRError, match="stride"):
            MemoryAccess("x", False, AccessPattern.STRIDED, 4.0)

    def test_divergence_range(self):
        with pytest.raises(IRError):
            simple_ir(divergence=1.5)

    def test_vector_width_positive(self):
        with pytest.raises(IRError):
            simple_ir(vector_width=0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(IRError):
            MemoryAccess("x", False, AccessPattern.GATHER, -1.0)


class TestStructureQueries:
    def test_loop_classification(self):
        ir = simple_ir()
        assert [l.name for l in ir.work_item_loops] == ["outer"]
        assert [l.name for l in ir.in_kernel_loops] == ["inner"]

    def test_loop_depth(self):
        ir = simple_ir()
        assert ir.loop_depth("outer") == 0
        assert ir.loop_depth("inner") == 1
        with pytest.raises(IRError):
            ir.loop_depth("nope")

    def test_global_atomics_detection(self):
        ir = simple_ir()
        assert not ir.has_global_atomics
        atomic = simple_ir(
            accesses=(
                MemoryAccess(
                    "h",
                    True,
                    AccessPattern.GATHER,
                    4.0,
                    atomic=AtomicKind.GLOBAL,
                ),
            )
        )
        assert atomic.has_global_atomics

    def test_local_atomics_do_not_trigger(self):
        ir = simple_ir(
            accesses=(
                MemoryAccess(
                    "h", True, AccessPattern.GATHER, 4.0, atomic=AtomicKind.LOCAL
                ),
            )
        )
        assert not ir.has_global_atomics

    def test_data_dependence_flags(self):
        ir = simple_ir()
        assert not ir.has_data_dependent_bounds
        dyn = simple_ir(
            loops=(
                Loop("d", LoopBound(evaluator=lambda a, i: np.ones(len(i)))),
            ),
            accesses=(),
        )
        assert dyn.has_data_dependent_bounds

    def test_early_exit_flag(self):
        ir = simple_ir(
            loops=(
                Loop("outer", LoopBound(static_trips=4)),
                Loop("inner", LoopBound(static_trips=10), has_early_exit=True),
            )
        )
        assert ir.has_early_exit


class TestQuantities:
    def test_site_trips_nesting(self):
        ir = simple_ir()
        ids = np.arange(2)
        assert list(ir.site_trips("inner", {}, ids)) == [40.0, 40.0]
        assert list(ir.site_trips("outer", {}, ids)) == [4.0, 4.0]
        assert list(ir.site_trips(None, {}, ids)) == [1.0, 1.0]

    def test_access_trips_scope_is_order_independent(self):
        access = MemoryAccess(
            "y", True, AccessPattern.UNIT_STRIDE, 4.0, scope=("outer",)
        )
        ir = simple_ir(accesses=(access,))
        reordered = ir.with_(loops=tuple(reversed(ir.loops)))
        ids = np.arange(3)
        assert list(ir.access_trips(access, {}, ids)) == [4.0] * 3
        assert list(reordered.access_trips(access, {}, ids)) == [4.0] * 3

    def test_total_flops(self):
        ir = simple_ir(flops_fixed=10.0)
        ids = np.arange(2)
        assert list(ir.total_flops({}, ids)) == [90.0, 90.0]

    def test_innermost_trips_empty_nest(self):
        ir = simple_ir(loops=(), accesses=())
        assert list(ir.innermost_trips({}, np.arange(2))) == [1.0, 1.0]

    def test_with_note_appends(self):
        ir = simple_ir().with_note("hello")
        assert "hello" in ir.notes
