"""Unit tests for kernel signatures and argument validation."""

import numpy as np
import pytest

from repro.errors import SignatureError
from repro.kernel import ArgSpec, KernelSignature
from repro.kernel.buffers import Buffer


def sig():
    return KernelSignature(
        "k",
        (
            ArgSpec("n", is_buffer=False),
            ArgSpec("x"),
            ArgSpec("y", is_output=True),
        ),
    )


class TestDeclaration:
    def test_output_names(self):
        assert sig().output_names == ("y",)

    def test_buffer_names(self):
        assert sig().buffer_names == ("x", "y")

    def test_scalar_output_rejected(self):
        with pytest.raises(SignatureError):
            ArgSpec("n", is_buffer=False, is_output=True)

    def test_duplicate_args_rejected(self):
        with pytest.raises(SignatureError):
            KernelSignature("k", (ArgSpec("x"), ArgSpec("x")))

    def test_empty_name_rejected(self):
        with pytest.raises(SignatureError):
            KernelSignature("", ())

    def test_arg_lookup(self):
        assert sig().arg("y").is_output
        with pytest.raises(SignatureError):
            sig().arg("missing")


class TestValidation:
    def _args(self, **overrides):
        args = {
            "n": 4,
            "x": Buffer("x", np.zeros(4), writable=False),
            "y": Buffer("y", np.zeros(4)),
        }
        args.update(overrides)
        return args

    def test_valid(self):
        validated = sig().validate(self._args())
        assert set(validated) == {"n", "x", "y"}

    def test_missing_argument(self):
        args = self._args()
        del args["x"]
        with pytest.raises(SignatureError, match="missing argument"):
            sig().validate(args)

    def test_unknown_argument(self):
        with pytest.raises(SignatureError, match="unknown"):
            sig().validate(self._args(extra=1))

    def test_buffer_type_enforced(self):
        with pytest.raises(SignatureError, match="must be a Buffer"):
            sig().validate(self._args(x=np.zeros(4)))

    def test_readonly_output_rejected(self):
        bad = Buffer("y", np.zeros(4), writable=False)
        with pytest.raises(SignatureError, match="read-only"):
            sig().validate(self._args(y=bad))
