"""Unit tests for NDRange and work-group decomposition."""

import pytest

from repro.errors import NDRangeError
from repro.kernel import NDRange


class TestConstruction:
    def test_linear(self):
        nd = NDRange.linear(100, 64)
        assert nd.total_groups == 100
        assert nd.work_group_size == 64
        assert nd.total_work_items == 6400

    def test_grid2d(self):
        nd = NDRange.grid2d(8, 4, 16, 16)
        assert nd.total_groups == 32
        assert nd.work_group_size == 256

    def test_full_3d(self):
        nd = NDRange(groups=(4, 3, 2), local_size=(8, 8, 1))
        assert nd.total_groups == 24
        assert nd.work_group_size == 64

    def test_rejects_zero_groups(self):
        with pytest.raises(NDRangeError):
            NDRange(groups=(0, 1, 1))

    def test_rejects_zero_local(self):
        with pytest.raises(NDRangeError):
            NDRange(groups=(1, 1, 1), local_size=(0, 1, 1))

    def test_rejects_wrong_arity(self):
        with pytest.raises(NDRangeError):
            NDRange(groups=(1, 1))  # type: ignore[arg-type]


class TestIndexing:
    def test_roundtrip_all_ids(self):
        nd = NDRange(groups=(3, 4, 2))
        for gid in nd.iter_group_ids():
            x, y, z = nd.group_coords(gid)
            assert nd.linear_id(x, y, z) == gid

    def test_x_fastest(self):
        nd = NDRange(groups=(4, 2, 1))
        assert nd.group_coords(0) == (0, 0, 0)
        assert nd.group_coords(1) == (1, 0, 0)
        assert nd.group_coords(4) == (0, 1, 0)

    def test_out_of_range_id(self):
        nd = NDRange.linear(10)
        with pytest.raises(NDRangeError):
            nd.group_coords(10)

    def test_out_of_range_coords(self):
        nd = NDRange(groups=(2, 2, 2))
        with pytest.raises(NDRangeError):
            nd.linear_id(2, 0, 0)

    def test_with_groups_relinearizes(self):
        nd = NDRange(groups=(4, 4, 1), local_size=(8, 8, 1))
        flat = nd.with_groups(5)
        assert flat.total_groups == 5
        assert flat.work_group_size == 64
