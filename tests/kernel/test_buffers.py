"""Unit tests for device buffers and sandbox/swap mechanics."""

import numpy as np
import pytest

from repro.errors import BufferError_
from repro.kernel.buffers import Buffer, MemorySpace


class TestConstruction:
    def test_defaults(self):
        buf = Buffer("b", np.zeros(8, dtype=np.float32))
        assert buf.space is MemorySpace.GLOBAL
        assert buf.writable
        assert buf.nbytes == 32
        assert buf.shape == (8,)
        assert buf.dtype == np.float32

    def test_requires_ndarray(self):
        with pytest.raises(BufferError_):
            Buffer("b", [1, 2, 3])  # type: ignore[arg-type]

    def test_texture_must_be_readonly(self):
        with pytest.raises(BufferError_):
            Buffer("b", np.zeros(4), space=MemorySpace.TEXTURE, writable=True)

    def test_constant_must_be_readonly(self):
        with pytest.raises(BufferError_):
            Buffer("b", np.zeros(4), space=MemorySpace.CONSTANT, writable=True)


class TestPlacement:
    def test_replaced_shares_data(self):
        data = np.arange(4, dtype=np.float32)
        buf = Buffer("b", data)
        moved = buf.replaced(space=MemorySpace.TEXTURE, writable=False)
        assert moved.space is MemorySpace.TEXTURE
        assert moved.data is data

    def test_replaced_keeps_fields_by_default(self):
        buf = Buffer("b", np.zeros(4))
        copy = buf.replaced()
        assert copy.space is buf.space
        assert copy.writable == buf.writable


class TestSandbox:
    def test_sandbox_copy_is_independent(self):
        buf = Buffer("out", np.zeros(4, dtype=np.float32))
        sandbox = buf.sandbox_copy()
        sandbox.data[:] = 7.0
        assert (buf.data == 0.0).all()
        assert sandbox.name.startswith("out.")

    def test_sandbox_of_readonly_rejected(self):
        buf = Buffer("in", np.zeros(4), writable=False)
        with pytest.raises(BufferError_):
            buf.sandbox_copy()


class TestSwap:
    def test_swap_installs_contents(self):
        final = Buffer("out", np.zeros(4, dtype=np.float32))
        private = Buffer("priv", np.full(4, 3.0, dtype=np.float32))
        final.swap_contents(private)
        assert (final.data == 3.0).all()

    def test_swap_shape_mismatch(self):
        final = Buffer("out", np.zeros(4, dtype=np.float32))
        private = Buffer("priv", np.zeros(5, dtype=np.float32))
        with pytest.raises(BufferError_):
            final.swap_contents(private)

    def test_swap_dtype_mismatch(self):
        final = Buffer("out", np.zeros(4, dtype=np.float32))
        private = Buffer("priv", np.zeros(4, dtype=np.int32))
        with pytest.raises(BufferError_):
            final.swap_contents(private)

    def test_swap_into_readonly_rejected(self):
        final = Buffer("out", np.zeros(4, dtype=np.float32), writable=False)
        private = Buffer("priv", np.zeros(4, dtype=np.float32))
        with pytest.raises(BufferError_):
            final.swap_contents(private)
