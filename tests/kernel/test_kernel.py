"""Unit tests for KernelVariant / WorkRange / KernelSpec geometry."""

import numpy as np
import pytest

from repro.errors import KernelError, NDRangeError
from repro.kernel import KernelSpec, KernelSignature, ArgSpec, WorkRange
from tests.conftest import AXPY_UNIT, make_axpy_args, make_axpy_variant


class TestWorkRange:
    def test_length(self):
        assert len(WorkRange(3, 10)) == 7
        assert WorkRange(5, 5).empty

    def test_invalid(self):
        with pytest.raises(NDRangeError):
            WorkRange(5, 3)
        with pytest.raises(NDRangeError):
            WorkRange(-1, 3)

    def test_take_splits(self):
        first, rest = WorkRange(0, 10).take(4)
        assert (first.start, first.end) == (0, 4)
        assert (rest.start, rest.end) == (4, 10)

    def test_take_clamps(self):
        first, rest = WorkRange(0, 3).take(100)
        assert len(first) == 3
        assert rest.empty

    def test_take_negative_is_empty(self):
        first, rest = WorkRange(2, 5).take(-1)
        assert first.empty
        assert (rest.start, rest.end) == (2, 5)

    def test_intersect(self):
        a = WorkRange(0, 10)
        b = WorkRange(5, 20)
        c = a.intersect(b)
        assert (c.start, c.end) == (5, 10)
        assert a.intersect(WorkRange(20, 30)).empty


class TestVariantGeometry:
    def test_num_groups_rounds_up(self):
        variant = make_axpy_variant("v", wa_factor=4)
        assert variant.num_groups(8) == 2
        assert variant.num_groups(9) == 3
        assert variant.num_groups(0) == 0

    def test_units_for_groups_clamps_tail(self):
        variant = make_axpy_variant("v", wa_factor=4)
        units = variant.units_for_groups(2, 4, workload_units=10)
        assert (units.start, units.end) == (8, 10)

    def test_groups_for_units_alignment(self):
        variant = make_axpy_variant("v", wa_factor=4)
        assert variant.groups_for_units(WorkRange(4, 12)) == (1, 3)
        with pytest.raises(KernelError, match="aligned"):
            variant.groups_for_units(WorkRange(2, 12))

    def test_unaligned_tail_allowed(self):
        variant = make_axpy_variant("v", wa_factor=4)
        assert variant.groups_for_units(WorkRange(8, 10)) == (2, 3)

    def test_invalid_construction(self):
        with pytest.raises(KernelError):
            make_axpy_variant("v", wa_factor=0)
        with pytest.raises(KernelError):
            make_axpy_variant("")


class TestExecution:
    def test_execute_writes_range(self, config):
        variant = make_axpy_variant("v")
        args = make_axpy_args(4, config)
        variant.execute(args, WorkRange(1, 3))
        y = args["y"].data
        assert (y[:AXPY_UNIT] == 0).all()
        assert np.allclose(
            y[AXPY_UNIT : 3 * AXPY_UNIT],
            2.0 * args["x"].data[AXPY_UNIT : 3 * AXPY_UNIT],
        )
        assert (y[3 * AXPY_UNIT :] == 0).all()

    def test_execute_empty_range_is_noop(self, config):
        variant = make_axpy_variant("v")
        args = make_axpy_args(2, config)
        variant.execute(args, WorkRange(1, 1))
        assert (args["y"].data == 0).all()


class TestKernelSpec:
    def test_sandbox_outputs_default_to_declared(self, axpy_spec):
        assert axpy_spec.effective_sandbox_outputs == ("y",)

    def test_explicit_sandbox_outputs_validated(self):
        sig = KernelSignature("k", (ArgSpec("a"), ArgSpec("b", is_output=True)))
        spec = KernelSpec(signature=sig, sandbox_outputs=("b",))
        assert spec.effective_sandbox_outputs == ("b",)
        with pytest.raises(KernelError):
            KernelSpec(signature=sig, sandbox_outputs=("a",))
