"""Unit tests for LaunchConfig."""

import numpy as np
import pytest

from repro.errors import LaunchError, SignatureError
from repro.kernel.buffers import Buffer
from repro.kernel.launch import LaunchConfig
from tests.conftest import axpy_signature, make_axpy_args


class TestLaunchConfig:
    def test_create_validates(self, config):
        launch = LaunchConfig.create(axpy_signature(), make_axpy_args(4, config), 4)
        assert launch.workload_units == 4

    def test_rejects_negative_units(self, config):
        with pytest.raises(LaunchError):
            LaunchConfig.create(axpy_signature(), make_axpy_args(1, config), -1)

    def test_rejects_bad_args(self):
        with pytest.raises(SignatureError):
            LaunchConfig.create(axpy_signature(), {"x": 1, "y": 2}, 4)

    def test_output_buffers(self, config):
        launch = LaunchConfig.create(axpy_signature(), make_axpy_args(2, config), 2)
        outputs = launch.output_buffers()
        assert set(outputs) == {"y"}
        assert isinstance(outputs["y"], Buffer)

    def test_with_args_rebinds(self, config):
        launch = LaunchConfig.create(axpy_signature(), make_axpy_args(2, config), 2)
        replacement = Buffer("y2", np.zeros_like(launch.args["y"].data))
        rebound = launch.with_args({"y": replacement})
        assert rebound.args["y"] is replacement
        assert launch.args["y"] is not replacement
