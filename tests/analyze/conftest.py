"""Fixtures for the static pool verifier: pools that break known rules.

Each builder produces a small synthetic pool violating exactly one family
of legality rules, so pass tests can assert rule ids precisely.
"""

from __future__ import annotations

import pytest

from repro.compiler.variants import VariantPool
from repro.kernel import (
    AccessPattern,
    ArgSpec,
    AtomicKind,
    KernelIR,
    KernelSignature,
    KernelSpec,
    KernelVariant,
    Loop,
    LoopBound,
    MemoryAccess,
)
from tests.conftest import AXPY_UNIT, axpy_executor, make_axpy_variant


def atomic_axpy_variant(name: str) -> KernelVariant:
    """An axpy variant whose output commit is a *global atomic*."""
    ir = KernelIR(
        loops=(Loop("k", LoopBound(static_trips=16)),),
        accesses=(
            MemoryAccess(
                "x",
                False,
                AccessPattern.UNIT_STRIDE,
                4.0 * AXPY_UNIT / 16,
                loop="k",
            ),
            MemoryAccess(
                "y",
                True,
                AccessPattern.UNIT_STRIDE,
                4.0 * AXPY_UNIT / 16,
                loop="k",
                atomic=AtomicKind.GLOBAL,
            ),
        ),
        flops_per_trip=32.0,
        work_group_threads=AXPY_UNIT,
    )
    return KernelVariant(
        name=name,
        ir=ir,
        executor=axpy_executor,
        wa_factor=1,
        work_group_size=AXPY_UNIT,
    )


def make_pool(*variants: KernelVariant, spec: KernelSpec = None) -> VariantPool:
    """Pool over the axpy signature (or a custom spec)."""
    if spec is None:
        spec = KernelSpec(
            signature=KernelSignature(
                "axpy", (ArgSpec("x"), ArgSpec("y", is_output=True))
            )
        )
    return VariantPool(spec=spec, variants=tuple(variants))


@pytest.fixture
def clean_pool() -> VariantPool:
    """Two regular variants; every mode except swap_async is legal."""
    return make_pool(
        make_axpy_variant("fast"),
        make_axpy_variant("slow", AccessPattern.STRIDED),
    )


@pytest.fixture
def atomic_pool() -> VariantPool:
    """Both variants commit through global atomics (forces swap)."""
    return make_pool(
        atomic_axpy_variant("atomic_a"), atomic_axpy_variant("atomic_b")
    )


@pytest.fixture
def no_output_pool() -> VariantPool:
    """Signature declares no outputs; partial modes cannot sandbox."""
    spec = KernelSpec(
        signature=KernelSignature("sink", (ArgSpec("x"), ArgSpec("y")))
    )
    return make_pool(
        make_axpy_variant("a"), make_axpy_variant("b"), spec=spec
    )
