"""Property-based soundness of the static cost intervals.

Two properties the whole dominance design rests on:

1. **Containment** — for any synthesizable variant, the noise-free cost
   model's measured launch cycles lie inside the static interval
   computed by :func:`repro.analyze.costbound.variant_cost_bound`, on
   every known device kind.
2. **Winner survival** — in any pool, the variant the noise-free cost
   model would pick is never in the dominance verdict's pruned set.

The oracle is :meth:`repro.device.cost.CostModel.launch_cycles` rather
than the engine because the engine adds a *variant-independent* launch
overhead plus jitter on top of the model; both cancel when comparing
variants, so they are deliberately out of the interval's scope (see
``docs/analysis.md``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analyze.costbound import WideningPolicy, variant_cost_bound
from repro.analyze.dominance import pool_cost_bounds
from repro.config import ReproConfig
from repro.device import make_cpu, make_gpu
from repro.device.cost import CostModel
from repro.kernel import (
    AccessPattern,
    KernelIR,
    KernelVariant,
    Loop,
    LoopBound,
    MemoryAccess,
    WorkRange,
)
from repro.kernel.buffers import Buffer

from .conftest import make_pool
from tests.conftest import AXPY_UNIT, axpy_executor

_QUIET = ReproConfig().without_noise()
_MODELS = {
    "cpu": CostModel(make_cpu(_QUIET)),
    "gpu": CostModel(make_gpu(_QUIET)),
}
_PATTERNS = (
    AccessPattern.UNIT_STRIDE,
    AccessPattern.STRIDED,
    AccessPattern.GATHER,
    AccessPattern.BROADCAST,
)


@st.composite
def synthetic_variants(draw) -> KernelVariant:
    """A random but well-formed streaming variant."""
    pattern = draw(st.sampled_from(_PATTERNS))
    trips = draw(st.integers(min_value=1, max_value=64))
    data_dependent = draw(st.booleans())
    flops = draw(
        st.floats(min_value=0.0, max_value=8192.0, allow_nan=False)
    )
    bytes_per_trip = draw(
        st.floats(min_value=1.0, max_value=512.0, allow_nan=False)
    )
    stride = draw(st.sampled_from((32, 64, 256)))
    wa_factor = draw(st.integers(min_value=1, max_value=4))

    if data_dependent:
        # The constant stays inside the default widening bounds
        # (0, 4096), so the widened interval must still contain it.
        bound = LoopBound(
            evaluator=lambda args, ids, c=trips: np.full(len(ids), float(c)),
            description=f"constant {trips} trips",
        )
    else:
        bound = LoopBound(static_trips=trips)

    ir = KernelIR(
        loops=(Loop("k", bound),),
        accesses=(
            MemoryAccess(
                "x",
                False,
                pattern,
                bytes_per_trip,
                loop="k",
                stride_bytes=stride if pattern is AccessPattern.STRIDED else 0,
            ),
            MemoryAccess(
                "y",
                True,
                AccessPattern.UNIT_STRIDE,
                bytes_per_trip,
                loop="k",
            ),
        ),
        flops_per_trip=flops,
        work_group_threads=AXPY_UNIT,
    )
    return KernelVariant(
        name=f"synth_{draw(st.integers(min_value=0, max_value=10**9))}",
        ir=ir,
        executor=axpy_executor,
        wa_factor=wa_factor,
        work_group_size=AXPY_UNIT,
    )


def launch_args(units: int):
    """Buffers large enough for any drawn launch."""
    n = units * AXPY_UNIT
    return {
        "x": Buffer("x", np.zeros(n, dtype=np.float32)),
        "y": Buffer("y", np.zeros(n, dtype=np.float32), writable=True),
    }


class TestContainment:
    @settings(max_examples=40, deadline=None)
    @given(
        variant=synthetic_variants(),
        units=st.integers(min_value=1, max_value=32),
    )
    def test_measured_cost_inside_static_interval(self, variant, units):
        args = launch_args(units)
        work = WorkRange(0, units)
        for kind, model in _MODELS.items():
            measured = model.launch_cycles(variant, args, work)
            interval = variant_cost_bound(variant, kind).launch_interval(
                units
            )
            assert interval.contains(measured, slack=1e-6), (
                f"{kind}: measured {measured} outside {interval} "
                f"for {variant.name}"
            )

    @settings(max_examples=40, deadline=None)
    @given(
        variant=synthetic_variants(),
        units=st.integers(min_value=1, max_value=32),
    )
    def test_per_unit_interval_brackets_any_launch(self, variant, units):
        # The asymptotic per-unit interval is what dominance prunes
        # with when the workload size is unknown; it must bracket the
        # exact launch interval at every unit count.
        bound = variant_cost_bound(variant, "cpu")
        launch = bound.launch_interval(units)
        per_unit = bound.per_unit_interval
        assert launch.lo >= per_unit.lo * units - 1e-6 * max(1.0, launch.lo)
        assert launch.hi <= per_unit.hi * units + 1e-6 * max(1.0, launch.hi)

    @settings(max_examples=20, deadline=None)
    @given(variant=synthetic_variants())
    def test_custom_widening_still_contains_constant_trips(self, variant):
        # A tighter-but-still-correct widening policy keeps soundness.
        policy = WideningPolicy(data_trip_bounds=(0.0, 64.0))
        args = launch_args(4)
        measured = _MODELS["cpu"].launch_cycles(
            variant, args, WorkRange(0, 4)
        )
        interval = variant_cost_bound(
            variant, "cpu", policy=policy
        ).launch_interval(4)
        assert interval.contains(measured, slack=1e-6)


class TestWinnerSurvival:
    @settings(max_examples=40, deadline=None)
    @given(
        variants=st.lists(
            synthetic_variants(), min_size=2, max_size=6
        ),
        units=st.integers(min_value=1, max_value=32),
    )
    def test_pruned_variant_is_never_the_measured_winner(
        self, variants, units
    ):
        named = tuple(
            KernelVariant(
                name=f"v{i}",
                ir=v.ir,
                executor=v.executor,
                wa_factor=v.wa_factor,
                work_group_size=v.work_group_size,
            )
            for i, v in enumerate(variants)
        )
        pool = make_pool(*named)
        args = launch_args(units)
        work = WorkRange(0, units)
        for kind, model in _MODELS.items():
            verdict = pool_cost_bounds(pool, kind)
            costs = {
                v.name: model.launch_cycles(v, args, work) for v in named
            }
            winner = min(costs, key=costs.get)
            assert winner not in verdict.pruned, (
                f"{kind}: measured winner {winner} "
                f"({costs[winner]:.1f} cycles) was statically pruned; "
                f"verdict={verdict.as_dict()}"
            )
