"""CLI tests: ``python -m repro.analyze`` exit codes and rendering."""

import json

import pytest

from repro.analyze.cli import run
from repro.analyze.registry import RULES


class TestCli:
    def test_list_names_catalog_pools(self, capsys):
        assert run(["--list"]) == 0
        out = capsys.readouterr().out
        assert "histogram/swap" in out
        assert "sgemm/vectorization" in out

    def test_legal_pool_verifies_clean(self, capsys):
        assert run(["--pool", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "== kmeans/schedules ==" in out
        assert "OK: 1 pool(s) verified" in out
        # The matrix still flags the one universally illegal combo.
        assert "ILLEGAL (DYSEL-ASYNC-001)" in out

    def test_illegal_pool_is_flagged_but_defaults_demote(self, capsys):
        # histogram is the known-illegal pool (global atomics): fully and
        # hybrid are ILLEGAL in the matrix, but swap_sync is legal, so the
        # pool still verifies with exit 0 — the verifier's job is to
        # surface the facts the gate demotes on.
        assert run(["--pool", "histogram"]) == 0
        out = capsys.readouterr().out
        assert "DYSEL-MODE-001" in out
        assert "default launch: swap_sync" in out

    def test_requested_illegal_combo_fails(self, capsys):
        assert run(
            ["--pool", "histogram", "--mode", "fully", "--flow", "sync"]
        ) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "fully_sync is illegal" in out
        assert "DYSEL-MODE-001" in out

    def test_swap_async_illegal_everywhere(self, capsys):
        assert run(
            ["--pool", "kmeans", "--mode", "swap", "--flow", "async"]
        ) == 1
        out = capsys.readouterr().out
        assert "swap_async is illegal (DYSEL-ASYNC-001)" in out

    def test_mode_requires_flow(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["--pool", "kmeans", "--mode", "fully"])
        assert excinfo.value.code == 2
        assert "together" in capsys.readouterr().err

    def test_unmatched_filter_is_usage_error(self, capsys):
        assert run(["--pool", "no-such-pool"]) == 2

    def test_unmatched_filter_named_even_when_others_match(self, capsys):
        # A matching filter must not mask a typo'd one.
        assert run(["--pool", "kmeans", "--pool", "nope"]) == 2
        err = capsys.readouterr().err
        assert "'nope'" in err
        assert "kmeans" not in err
        assert "--list" in err

    def test_verbose_includes_info_findings(self, capsys):
        run(["--pool", "kmeans", "--verbose"])
        out = capsys.readouterr().out
        assert "DYSEL-SANDBOX-003" in out

    def test_override_atomics_relaxes_histogram(self, capsys):
        # With the programmer override, the atomics findings downgrade;
        # what keeps fully illegal for histogram is the non-overridable
        # overlap/uniformity facts — they must survive the override.
        assert run(
            [
                "--pool",
                "histogram",
                "--override-atomics",
                "--mode",
                "hybrid",
                "--flow",
                "sync",
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "overridden" in out  # downgraded findings stay visible
        assert "DYSEL-MODE-002" in out  # overlap still blocks hybrid


class TestDominanceFlag:
    def test_dominance_renders_interval_table(self, capsys):
        assert run(["--pool", "sgemm", "--dominance"]) == 0
        out = capsys.readouterr().out
        assert "cost bounds" in out
        assert "PRUNED" in out

    def test_dominance_json_embeds_verdicts(self, capsys):
        assert run(["--all-examples", "--dominance", "--strict",
                    "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["dominance"] is True
        verdicts = [p["dominance"] for p in doc["pools"]]
        assert all("pruned" in v and "survivors" in v for v in verdicts)
        # The synthetic catalog has at least one statically hopeless
        # variant somewhere, or the flag is not exercising anything.
        assert any(v["pruned"] for v in verdicts)


class TestExplain:
    def test_explain_known_rule(self, capsys):
        assert run(["--explain", "DYSEL-DOM-001"]) == 0
        out = capsys.readouterr().out
        assert "DYSEL-DOM-001" in out
        assert "remedy" in out

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert run(["--explain", "DYSEL-DOM-999"]) == 2
        # The error suggests nearby registered ids.
        assert "DYSEL-DOM-001" in capsys.readouterr().err

    def test_explain_json_round_trips(self, capsys):
        assert run(["--explain", "DYSEL-COST-002", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["id"] == "DYSEL-COST-002"
        assert set(doc) == {"id", "pass", "severity", "summary", "remedy"}


class TestJsonReport:
    def test_document_carries_the_rule_catalog(self, capsys):
        assert run(["--all-examples", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["checked"] == len(doc["pools"])
        assert len(doc["rules"]) == len(RULES)
        ids = {r["id"] for r in doc["rules"]}
        assert "DYSEL-DOM-001" in ids

    def test_strict_run_is_clean(self, capsys):
        assert run(["--all-examples", "--strict"]) == 0
