"""Configured severity adjustments and the pyproject loader."""

import pytest

from repro.analyze.diagnostics import Diagnostic, Severity
from repro.analyze.overrides import (
    apply_adjustments,
    load_pyproject_settings,
    tomllib,
    validate_settings,
)
from repro.config import AnalyzeSettings, RuleAdjustment
from repro.errors import ConfigurationError


def finding(rule_id="DYSEL-MODE-001", severity=Severity.ERROR):
    return Diagnostic(
        rule_id=rule_id, severity=severity, message="finding"
    )


class TestValidateSettings:
    def test_known_ids_pass_through(self):
        settings = AnalyzeSettings(
            rules=(RuleAdjustment("DYSEL-MODE-001"),)
        )
        assert validate_settings(settings) is settings

    def test_unknown_id_raises_and_is_named(self):
        settings = AnalyzeSettings(
            rules=(RuleAdjustment("DYSEL-TYPO-001"),)
        )
        with pytest.raises(ConfigurationError) as excinfo:
            validate_settings(settings)
        assert "DYSEL-TYPO-001" in str(excinfo.value)


class TestApplyAdjustments:
    def test_no_rules_is_identity(self):
        found = (finding(),)
        assert apply_adjustments(found, "axpy", AnalyzeSettings()) == found

    def test_suppress_drops_the_finding(self):
        settings = AnalyzeSettings(
            rules=(RuleAdjustment("DYSEL-MODE-001", action="suppress"),)
        )
        assert apply_adjustments((finding(),), "axpy", settings) == ()

    def test_pool_substring_scopes_the_adjustment(self):
        settings = AnalyzeSettings(
            rules=(
                RuleAdjustment(
                    "DYSEL-MODE-001", action="suppress", pools=("sgemm",)
                ),
            )
        )
        kept = apply_adjustments((finding(),), "axpy/schedules", settings)
        dropped = apply_adjustments((finding(),), "sgemm/mixed", settings)
        assert len(kept) == 1
        assert dropped == ()

    def test_downgrade_turns_error_into_warning(self):
        settings = AnalyzeSettings(
            rules=(RuleAdjustment("DYSEL-MODE-001", action="downgrade"),)
        )
        (adjusted,) = apply_adjustments((finding(),), "axpy", settings)
        assert adjusted.severity is Severity.WARNING
        assert "[overridden: configured downgrade]" in adjusted.message

    def test_downgrade_leaves_non_error_untouched(self):
        settings = AnalyzeSettings(
            rules=(RuleAdjustment("DYSEL-MODE-001", action="downgrade"),)
        )
        warning = finding(severity=Severity.WARNING)
        (adjusted,) = apply_adjustments((warning,), "axpy", settings)
        assert adjusted is warning

    def test_other_rule_ids_are_untouched(self):
        settings = AnalyzeSettings(
            rules=(RuleAdjustment("DYSEL-SIG-001", action="suppress"),)
        )
        assert len(apply_adjustments((finding(),), "axpy", settings)) == 1


needs_tomllib = pytest.mark.skipif(
    tomllib is None, reason="tomllib requires Python >= 3.11"
)


class TestLoadPyprojectSettings:
    def test_missing_file_returns_base(self, tmp_path):
        base = AnalyzeSettings(dominance=True)
        loaded = load_pyproject_settings(
            tmp_path / "pyproject.toml", base=base
        )
        assert loaded is base

    @needs_tomllib
    def test_missing_table_returns_base(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text("[tool.other]\nx = 1\n")
        assert load_pyproject_settings(path) == AnalyzeSettings()

    @needs_tomllib
    def test_full_table_parses(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(
            "[tool.repro.analyze]\n"
            "dominance = true\n"
            "dominance_margin = 1.5\n"
            "data_trip_bounds = [1, 2048]\n"
            "[[tool.repro.analyze.rules]]\n"
            'id = "DYSEL-MODE-001"\n'
            'action = "downgrade"\n'
            'pools = ["axpy"]\n'
        )
        loaded = load_pyproject_settings(path)
        assert loaded.dominance is True
        assert loaded.dominance_margin == 1.5
        assert loaded.data_trip_bounds == (1.0, 2048.0)
        assert loaded.rules == (
            RuleAdjustment(
                "DYSEL-MODE-001", action="downgrade", pools=("axpy",)
            ),
        )

    @needs_tomllib
    def test_unknown_table_key_raises(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text("[tool.repro.analyze]\ndominence = true\n")
        with pytest.raises(ConfigurationError) as excinfo:
            load_pyproject_settings(path)
        assert "dominence" in str(excinfo.value)

    @needs_tomllib
    def test_rule_entry_without_id_raises(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(
            "[[tool.repro.analyze.rules]]\naction = \"suppress\"\n"
        )
        with pytest.raises(ConfigurationError):
            load_pyproject_settings(path)

    @needs_tomllib
    def test_rule_entry_unknown_key_raises(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(
            "[[tool.repro.analyze.rules]]\n"
            'id = "DYSEL-MODE-001"\nseverity = "warning"\n'
        )
        with pytest.raises(ConfigurationError) as excinfo:
            load_pyproject_settings(path)
        assert "severity" in str(excinfo.value)

    @needs_tomllib
    def test_unknown_rule_id_raises(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(
            "[[tool.repro.analyze.rules]]\nid = \"DYSEL-NOPE-123\"\n"
        )
        with pytest.raises(ConfigurationError) as excinfo:
            load_pyproject_settings(path)
        assert "DYSEL-NOPE-123" in str(excinfo.value)

    @needs_tomllib
    def test_malformed_trip_bounds_raise(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(
            "[tool.repro.analyze]\ndata_trip_bounds = [1, 2, 3]\n"
        )
        with pytest.raises(ConfigurationError):
            load_pyproject_settings(path)
