"""The rule registry: one authoritative catalog every emission obeys."""

import pytest

from repro.analyze.manager import PassManager
from repro.analyze.passes import PoolContext
from repro.analyze.registry import (
    RULE_IDS,
    RULES,
    explain,
    find_rule,
)
from repro.config import AnalyzeSettings

from .conftest import make_pool
from tests.conftest import make_axpy_variant


class TestCatalog:
    def test_rule_ids_are_unique(self):
        assert len(RULE_IDS) == len(set(RULE_IDS)) == len(RULES)

    def test_new_cost_and_dominance_rules_registered(self):
        for rule_id in (
            "DYSEL-COST-001",
            "DYSEL-COST-002",
            "DYSEL-COST-003",
            "DYSEL-DOM-001",
            "DYSEL-DOM-002",
        ):
            assert rule_id in RULE_IDS

    def test_every_rule_has_summary_and_remedy(self):
        for rule in RULES:
            assert rule.summary
            assert rule.remedy
            assert rule.rule_id.startswith("DYSEL-")

    def test_as_dict_is_json_ready(self):
        doc = RULES[0].as_dict()
        assert set(doc) == {
            "id",
            "pass",
            "severity",
            "summary",
            "remedy",
        }

    def test_find_rule_and_explain(self):
        rule = find_rule("DYSEL-DOM-001")
        assert rule is not None
        assert explain("DYSEL-DOM-001") is rule
        assert find_rule("DYSEL-NOPE-999") is None

    def test_explain_unknown_id_suggests_by_prefix(self):
        with pytest.raises(KeyError) as excinfo:
            explain("DYSEL-DOM-999")
        assert "DYSEL-DOM-001" in str(excinfo.value)

    def test_format_renders_summary_and_remedy(self):
        text = find_rule("DYSEL-COST-003").format()
        assert "DYSEL-COST-003" in text
        assert "summary" in text
        assert "remedy" in text


class TestEmissionsMatchRegistry:
    def _diagnostics(self, pool, settings=None):
        ctx = PoolContext(
            pool=pool,
            compute_units=4,
            workload_units=4096,
            settings=settings or AnalyzeSettings(),
        )
        return PassManager().run(ctx).diagnostics

    def test_all_emitted_rule_ids_are_registered(
        self, clean_pool, atomic_pool, no_output_pool
    ):
        settings = AnalyzeSettings(dominance=True)
        for pool in (clean_pool, atomic_pool, no_output_pool):
            for diagnostic in self._diagnostics(pool, settings):
                assert diagnostic.rule_id in RULE_IDS, diagnostic.rule_id

    def test_emitted_severities_match_registry_defaults(self, atomic_pool):
        # Without overrides or configured adjustments, every finding
        # carries its registry default severity.
        for diagnostic in self._diagnostics(atomic_pool):
            rule = find_rule(diagnostic.rule_id)
            assert diagnostic.severity is rule.severity, diagnostic.rule_id

    def test_dominance_rules_only_fire_when_opted_in(self):
        pool = make_pool(
            make_axpy_variant("fast", flops_per_trip=64.0),
            make_axpy_variant("slow", flops_per_trip=64000.0),
        )
        default = {d.rule_id for d in self._diagnostics(pool)}
        assert not any(
            rid.startswith(("DYSEL-COST-", "DYSEL-DOM-")) for rid in default
        )
        opted = {
            d.rule_id
            for d in self._diagnostics(pool, AnalyzeSettings(dominance=True))
        }
        assert "DYSEL-COST-001" in opted
