"""Dominance pruning over static cost intervals (repro.analyze.dominance)."""

import dataclasses

import numpy as np
import pytest

from repro.analyze.costbound import WideningPolicy
from repro.analyze.dominance import (
    DEFAULT_MARGIN,
    CostBoundPass,
    DominancePass,
    cold_start_estimate,
    policy_from_settings,
    pool_cost_bounds,
    prune_pool,
)
from repro.analyze.passes import PoolContext
from repro.config import AnalyzeSettings
from repro.kernel import Loop, LoopBound

from .conftest import make_pool
from tests.conftest import make_axpy_variant


def spread_pool(slow_scale: float = 1000.0):
    """Two close contenders plus one statically hopeless variant."""
    return make_pool(
        make_axpy_variant("fast", flops_per_trip=4096.0),
        make_axpy_variant("close", flops_per_trip=4096.0 * 1.05),
        make_axpy_variant("slow", flops_per_trip=4096.0 * slow_scale),
    )


def data_dependent_variant(name: str, trips: float = 16.0):
    """A variant whose inner loop bound is only known at runtime."""
    base = make_axpy_variant(name)
    ir = base.ir.with_(
        loops=(
            Loop(
                "k",
                LoopBound(
                    evaluator=lambda args, ids: np.full(len(ids), trips),
                    description=f"runtime rows ({name})",
                ),
            ),
        )
    )
    return dataclasses.replace(base, ir=ir)


class TestPoolCostBounds:
    def test_hopeless_variant_is_pruned(self):
        verdict = pool_cost_bounds(spread_pool(), "cpu")
        assert "slow" in verdict.pruned
        assert "fast" in verdict.survivors
        assert "close" in verdict.survivors

    def test_best_upper_bound_always_survives(self):
        verdict = pool_cost_bounds(spread_pool(), "cpu")
        assert verdict.best_name in verdict.survivors

    def test_margin_below_one_is_rejected(self):
        with pytest.raises(ValueError):
            pool_cost_bounds(spread_pool(), "cpu", margin=0.9)

    def test_larger_margin_prunes_less(self):
        tight = pool_cost_bounds(spread_pool(slow_scale=3.0), "cpu")
        loose = pool_cost_bounds(
            spread_pool(slow_scale=3.0), "cpu", margin=1e9
        )
        assert len(loose.pruned) <= len(tight.pruned)
        assert not loose.pruned

    def test_single_variant_pool_never_prunes(self):
        verdict = pool_cost_bounds(
            make_pool(make_axpy_variant("only")), "cpu"
        )
        assert not verdict.pruned
        assert verdict.survivors == ("only",)

    def test_unknown_device_kind_prunes_nothing(self):
        # Unbounded intervals cannot dominate anything.
        verdict = pool_cost_bounds(spread_pool(), "tpu")
        assert not verdict.pruned

    def test_workload_units_sharpen_the_comparison(self):
        with_units = pool_cost_bounds(
            spread_pool(), "cpu", workload_units=256
        )
        assert "slow" in with_units.pruned

    def test_format_table_and_as_dict(self):
        verdict = pool_cost_bounds(spread_pool(), "cpu")
        table = verdict.format_table()
        assert "PRUNED" in table
        assert "slow" in table
        doc = verdict.as_dict()
        assert doc["pruned"] == list(verdict.pruned)
        assert doc["margin"] == DEFAULT_MARGIN
        assert len(doc["bounds"]) == 3

    def test_all_data_dependent_pool_widens_and_prunes_nothing(self):
        # The degenerate case: every interval spans the full widened
        # trip range, so no best case can beat another's worst case.
        pool = make_pool(
            data_dependent_variant("rows_a", trips=8.0),
            data_dependent_variant("rows_b", trips=512.0),
        )
        verdict = pool_cost_bounds(pool, "cpu")
        assert not verdict.pruned
        assert set(verdict.survivors) == {"rows_a", "rows_b"}
        for variant_verdict in verdict.verdicts:
            assert variant_verdict.bound.widened

    def test_policy_from_settings_respects_bounds(self):
        settings = AnalyzeSettings(data_trip_bounds=(1.0, 7.0))
        assert policy_from_settings(settings) == WideningPolicy(
            data_trip_bounds=(1.0, 7.0)
        )


class TestPrunePool:
    def test_no_pruning_returns_same_pool_object(self):
        pool = make_pool(
            make_axpy_variant("a", flops_per_trip=64.0),
            make_axpy_variant("b", flops_per_trip=64.0),
        )
        verdict = pool_cost_bounds(pool, "cpu")
        pruned_pool, dominated = prune_pool(pool, verdict)
        assert pruned_pool is pool
        assert dominated == ()

    def test_pruned_pool_drops_dominated_variants(self):
        pool = spread_pool()
        verdict = pool_cost_bounds(pool, "cpu")
        pruned_pool, dominated = prune_pool(pool, verdict)
        assert dominated == ("slow",)
        assert pruned_pool.variant_names == ("fast", "close")
        # The correctness pool is untouched.
        assert pool.variant_names == ("fast", "close", "slow")

    def test_initial_default_remaps_when_pruned(self):
        pool = spread_pool()
        pool.initial_default = "slow"
        verdict = pool_cost_bounds(pool, "cpu")
        pruned_pool, _ = prune_pool(pool, verdict)
        assert pruned_pool.initial_default == verdict.best_name


class TestPasses:
    def _run(self, verifier_pass, pool, settings):
        ctx = PoolContext(
            pool=pool,
            compute_units=4,
            workload_units=4096,
            settings=settings,
        )
        return list(verifier_pass.run(ctx))

    def test_passes_are_inert_by_default(self):
        settings = AnalyzeSettings()
        assert not self._run(CostBoundPass(), spread_pool(), settings)
        assert not self._run(DominancePass(), spread_pool(), settings)

    def test_cost_bound_pass_emits_interval_per_variant(self):
        found = self._run(
            CostBoundPass(), spread_pool(), AnalyzeSettings(dominance=True)
        )
        ids = [d.rule_id for d in found]
        assert ids.count("DYSEL-COST-001") == 3
        # The axpy fixtures stream through caches of unknown working
        # set, so each interval reports its widening too.
        assert "DYSEL-COST-002" in ids

    def test_cost_bound_pass_flags_unbounded_intervals(self):
        ctx = PoolContext(
            pool=spread_pool(),
            compute_units=4,
            workload_units=4096,
            device_kind="tpu",
            settings=AnalyzeSettings(dominance=True),
        )
        ids = [d.rule_id for d in CostBoundPass().run(ctx)]
        assert "DYSEL-COST-003" in ids

    def test_dominance_pass_names_pruned_variants(self):
        found = self._run(
            DominancePass(), spread_pool(), AnalyzeSettings(dominance=True)
        )
        pruned = [d for d in found if d.rule_id == "DYSEL-DOM-001"]
        assert [d.variant for d in pruned] == ["slow"]
        assert "statically dominated" in pruned[0].message

    def test_dominance_pass_warns_on_single_survivor(self):
        pool = make_pool(
            make_axpy_variant("fast", flops_per_trip=4096.0),
            make_axpy_variant("slow", flops_per_trip=4096.0 * 1000),
        )
        found = self._run(
            DominancePass(), pool, AnalyzeSettings(dominance=True)
        )
        assert "DYSEL-DOM-002" in [d.rule_id for d in found]


class TestColdStartEstimate:
    def test_default_variant_midpoint(self):
        pool = spread_pool()
        estimate = cold_start_estimate(pool, "cpu")
        assert estimate is not None and estimate > 0

    def test_unbounded_interval_yields_none(self):
        assert cold_start_estimate(spread_pool(), "tpu") is None
