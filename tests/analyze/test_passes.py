"""Pass-level tests: each rule family against a pool built to trip it."""

import dataclasses

from repro.analyze.manager import PoolVerifier, verify_pool
from repro.analyze.passes import VerifyOverrides
from repro.kernel import (
    ArgSpec,
    KernelSignature,
    KernelSpec,
)
from repro.modes import OrchestrationFlow, ProfilingMode
from tests.analyze.conftest import atomic_axpy_variant, make_pool
from tests.conftest import make_axpy_variant

FULLY, HYBRID, SWAP = (
    ProfilingMode.FULLY,
    ProfilingMode.HYBRID,
    ProfilingMode.SWAP,
)
SYNC, ASYNC = OrchestrationFlow.SYNC, OrchestrationFlow.ASYNC


def error_rules(report):
    return {d.rule_id for d in report.errors}


class TestCleanPool:
    def test_only_swap_async_is_illegal(self, clean_pool):
        report = verify_pool(clean_pool)
        assert error_rules(report) == {"DYSEL-ASYNC-001"}
        illegal = [c for c in report.legal_combos()]
        assert (SWAP, ASYNC) not in illegal
        assert report.is_legal(FULLY, ASYNC)
        assert report.is_legal(SWAP, SYNC)

    def test_default_combo_is_recommended_mode_async(self, clean_pool):
        report = verify_pool(clean_pool)
        assert report.recommended_mode is FULLY
        assert report.default_combo == (FULLY, ASYNC)


class TestModeEligibility:
    def test_global_atomics_block_committing_modes(self, atomic_pool):
        report = verify_pool(atomic_pool)
        mode_errors = [
            d for d in report.errors if d.rule_id == "DYSEL-MODE-001"
        ]
        assert {d.variant for d in mode_errors} == {"atomic_a", "atomic_b"}
        for mode in (FULLY, HYBRID):
            for flow in (SYNC, ASYNC):
                assert not report.is_legal(mode, flow)
        assert report.is_legal(SWAP, SYNC)
        assert report.default_combo == (SWAP, SYNC)

    def test_hints_name_the_fix(self, atomic_pool):
        report = verify_pool(atomic_pool)
        finding = report.by_rule("DYSEL-MODE-001")[0]
        assert "swap_sync" in finding.hint
        assert "override" in finding.hint

    def test_override_downgrades_atomics_to_warning(self, atomic_pool):
        report = verify_pool(
            atomic_pool, overrides=VerifyOverrides(atomics_race_free=True)
        )
        assert "DYSEL-MODE-001" not in error_rules(report)
        downgraded = report.by_rule("DYSEL-MODE-001")
        assert downgraded  # still visible, as WARNINGs
        assert all(d.severity.value == "warning" for d in downgraded)
        assert all("overridden" in d.message for d in downgraded)
        assert report.is_legal(FULLY, SYNC)

    def test_override_does_not_erase_non_atomic_findings(self):
        overlapping = dataclasses.replace(
            make_axpy_variant("overlap"),
            ir=make_axpy_variant("overlap").ir.with_(
                output_ranges_overlap=True
            ),
        )
        pool = make_pool(overlapping, make_axpy_variant("plain"))
        report = verify_pool(
            pool, overrides=VerifyOverrides(atomics_race_free=True)
        )
        assert "DYSEL-MODE-002" in error_rules(report)
        assert not report.is_legal(FULLY, SYNC)

    def test_data_dependent_bound_blocks_fully_only(self):
        from repro.kernel import KernelIR, Loop, LoopBound

        base = make_axpy_variant("dd")
        dd_ir = KernelIR(
            loops=(
                Loop(
                    "k",
                    LoopBound(
                        evaluator=lambda args, ids: ids * 0.0 + 4.0,
                        description="row length",
                    ),
                ),
            ),
            accesses=base.ir.accesses,
            flops_per_trip=base.ir.flops_per_trip,
            work_group_threads=base.ir.work_group_threads,
        )
        pool = make_pool(
            dataclasses.replace(base, ir=dd_ir), make_axpy_variant("plain")
        )
        report = verify_pool(pool)
        assert "DYSEL-MODE-004" in error_rules(report)
        assert not report.is_legal(FULLY, SYNC)
        assert report.is_legal(HYBRID, SYNC)
        relaxed = verify_pool(
            pool, overrides=VerifyOverrides(uniform_workload=True)
        )
        assert "DYSEL-MODE-004" not in error_rules(relaxed)
        assert relaxed.is_legal(FULLY, SYNC)


class TestAsyncLegality:
    def test_swap_async_always_flagged(self, clean_pool):
        report = verify_pool(clean_pool)
        (finding,) = report.by_rule("DYSEL-ASYNC-001")
        assert finding.covers(SWAP, ASYNC)
        assert not finding.covers(SWAP, SYNC)
        assert not finding.covers(FULLY, ASYNC)

    def test_atomics_warn_under_async_commit(self, atomic_pool):
        report = verify_pool(atomic_pool)
        (finding,) = report.by_rule("DYSEL-ASYNC-002")
        assert finding.severity.value == "warning"
        assert finding.covers(FULLY, ASYNC)
        assert not finding.covers(FULLY, SYNC)


class TestSandboxCapacity:
    def test_no_outputs_blocks_partial_modes(self, no_output_pool):
        report = verify_pool(no_output_pool)
        (finding,) = report.by_rule("DYSEL-SANDBOX-001")
        assert finding.severity.value == "error"
        assert finding.covers(HYBRID, SYNC)
        assert finding.covers(SWAP, SYNC)
        assert not finding.covers(FULLY, SYNC)

    def test_written_output_missing_from_sandbox_index(self):
        spec = KernelSpec(
            signature=KernelSignature(
                "two_out",
                (
                    ArgSpec("x"),
                    ArgSpec("y", is_output=True),
                    ArgSpec("z", is_output=True),
                ),
            ),
            sandbox_outputs=("z",),  # 'y' is written but not sandboxed
        )
        pool = make_pool(
            make_axpy_variant("a"), make_axpy_variant("b"), spec=spec
        )
        report = verify_pool(pool)
        (finding,) = report.by_rule("DYSEL-SANDBOX-002")
        assert "'y'" in finding.message
        assert finding.covers(HYBRID, SYNC)
        assert not finding.covers(FULLY, SYNC)

    def test_space_accounting_info(self, clean_pool):
        report = verify_pool(clean_pool)
        (info,) = report.by_rule("DYSEL-SANDBOX-003")
        assert info.severity.value == "info"
        assert "K=2" in info.message


class TestSignatureConsistency:
    def test_write_to_undeclared_buffer_is_pool_wide_error(self):
        rogue = make_axpy_variant("rogue")
        rogue_ir = rogue.ir.with_(
            accesses=rogue.ir.accesses
            + (
                dataclasses.replace(
                    rogue.ir.accesses[1], buffer="scratch"
                ),
            )
        )
        pool = make_pool(
            dataclasses.replace(rogue, ir=rogue_ir),
            make_axpy_variant("plain"),
        )
        report = verify_pool(pool)
        (finding,) = report.by_rule("DYSEL-SIG-001")
        assert finding.variant == "rogue"
        assert "scratch" in finding.message
        assert finding.scope is None  # pool-wide: blocks every combo
        assert not report.is_legal(SWAP, SYNC)

    def test_divergent_write_sets_block_fully(self):
        spec = KernelSpec(
            signature=KernelSignature(
                "two_out",
                (
                    ArgSpec("x"),
                    ArgSpec("y", is_output=True),
                    ArgSpec("z", is_output=True),
                ),
            ),
        )
        narrow = make_axpy_variant("narrow")
        wide = make_axpy_variant("wide")
        wide_ir = wide.ir.with_(
            accesses=wide.ir.accesses
            + (dataclasses.replace(wide.ir.accesses[1], buffer="z"),)
        )
        pool = make_pool(
            narrow, dataclasses.replace(wide, ir=wide_ir), spec=spec
        )
        report = verify_pool(pool)
        assert "DYSEL-SIG-002" in error_rules(report)
        (finding,) = report.by_rule("DYSEL-SIG-002")
        assert finding.covers(FULLY, SYNC)
        assert not finding.covers(HYBRID, SYNC)
        # 'z' written only by 'wide' → also the never-written warning is
        # *not* raised ('z' is written by at least one variant).
        assert not report.by_rule("DYSEL-SIG-003")

    def test_never_written_output_warns(self):
        spec = KernelSpec(
            signature=KernelSignature(
                "two_out",
                (
                    ArgSpec("x"),
                    ArgSpec("y", is_output=True),
                    ArgSpec("ghost", is_output=True),
                ),
            ),
        )
        pool = make_pool(
            make_axpy_variant("a"), make_axpy_variant("b"), spec=spec
        )
        report = verify_pool(pool)
        (finding,) = report.by_rule("DYSEL-SIG-003")
        assert finding.severity.value == "warning"
        assert "ghost" in finding.message

    def test_footprint_divergence_warns(self):
        fat = make_axpy_variant("fat")
        fat_ir = fat.ir.with_(
            accesses=(
                fat.ir.accesses[0],
                dataclasses.replace(
                    fat.ir.accesses[1],
                    bytes_per_trip=fat.ir.accesses[1].bytes_per_trip * 4,
                ),
            )
        )
        pool = make_pool(
            dataclasses.replace(fat, ir=fat_ir), make_axpy_variant("thin")
        )
        report = verify_pool(pool)
        (finding,) = report.by_rule("DYSEL-SIG-005")
        assert finding.severity.value == "warning"
        assert "fat" in finding.message and "thin" in finding.message


class TestSafePoint:
    def test_single_variant_pool_is_informational(self):
        report = verify_pool(make_pool(make_axpy_variant("only")))
        (info,) = report.by_rule("DYSEL-SAFEPOINT-003")
        assert info.severity.value == "info"

    def test_huge_lcm_warns(self):
        pool = make_pool(
            make_axpy_variant("a", wa_factor=(1 << 20) - 1),
            make_axpy_variant("b", wa_factor=2),
        )
        report = verify_pool(pool)
        (finding,) = report.by_rule("DYSEL-SAFEPOINT-002")
        assert finding.severity.value == "warning"

    def test_workload_too_small_for_any_slice(self):
        pool = make_pool(
            make_axpy_variant("a", wa_factor=8),
            make_axpy_variant("b", wa_factor=8),
        )
        report = verify_pool(pool, workload_units=4)
        (finding,) = report.by_rule("DYSEL-SAFEPOINT-001")
        assert finding.severity.value == "error"
        assert finding.scope is None
        assert not report.ok

    def test_fully_needs_k_slices(self, clean_pool):
        report = verify_pool(clean_pool, compute_units=1, workload_units=1)
        (finding,) = report.by_rule("DYSEL-SAFEPOINT-004")
        assert finding.covers(FULLY, SYNC)
        assert not finding.covers(HYBRID, SYNC)

    def test_workload_independent_run_skips_plan_checks(self, clean_pool):
        report = verify_pool(clean_pool)  # workload_units=None
        assert not report.by_rule("DYSEL-SAFEPOINT-001")
        assert not report.by_rule("DYSEL-SAFEPOINT-004")


class TestWriteSetRace:
    def test_atomic_pool_races_under_async_commit(self, atomic_pool):
        report = verify_pool(atomic_pool, compute_units=4)
        (finding,) = report.by_rule("DYSEL-RACE-001")
        assert finding.severity.value == "error"
        assert finding.covers(FULLY, ASYNC)
        assert finding.covers(HYBRID, ASYNC)
        assert not finding.covers(FULLY, SYNC)
        assert not finding.covers(SWAP, ASYNC)
        assert "eager chunks" in finding.message

    def test_clean_pool_has_no_race_finding(self, clean_pool):
        report = verify_pool(clean_pool)
        assert not report.by_rule("DYSEL-RACE-001")

    def test_atomic_only_race_downgrades_under_override(self, atomic_pool):
        report = verify_pool(
            atomic_pool, overrides=VerifyOverrides(atomics_race_free=True)
        )
        (finding,) = report.by_rule("DYSEL-RACE-001")
        assert finding.severity.value == "warning"


class TestPoolVerifierCache:
    def test_same_request_hits_cache(self, clean_pool):
        verifier = PoolVerifier()
        first = verifier.verify(clean_pool)
        second = verifier.verify(clean_pool)
        assert first is second
        assert verifier.cached_verdicts == 1

    def test_overrides_key_the_cache(self, atomic_pool):
        verifier = PoolVerifier()
        plain = verifier.verify(atomic_pool)
        relaxed = verifier.verify(
            atomic_pool, overrides=VerifyOverrides(atomics_race_free=True)
        )
        assert plain is not relaxed
        assert verifier.cached_verdicts == 2

    def test_clear_drops_verdicts(self, clean_pool):
        verifier = PoolVerifier()
        verifier.verify(clean_pool)
        verifier.clear()
        assert verifier.cached_verdicts == 0

    def test_distinct_pools_do_not_alias(self):
        verifier = PoolVerifier()
        pool_a = make_pool(make_axpy_variant("a"), make_axpy_variant("b"))
        report_a = verifier.verify(pool_a)
        pool_b = make_pool(atomic_axpy_variant("c"), atomic_axpy_variant("d"))
        report_b = verifier.verify(pool_b)
        assert error_rules(report_a) != error_rules(report_b)
