"""Interval arithmetic and static cost-bound units (repro.analyze.costbound)."""

import math

import pytest

from repro.analyze.costbound import (
    UNBOUNDED,
    ZERO,
    Interval,
    WideningPolicy,
    cache_size,
    clear_cache,
    ir_hash,
    point,
    variant_cost_bound,
)
from tests.conftest import make_axpy_variant


class TestInterval:
    def test_validation_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_validation_rejects_negative_lower_bound(self):
        with pytest.raises(ValueError):
            Interval(-1.0, 1.0)

    def test_validation_rejects_infinite_lower_bound(self):
        with pytest.raises(ValueError):
            Interval(float("inf"), float("inf"))

    def test_add_is_endpointwise(self):
        assert Interval(1, 2) + Interval(3, 5) == Interval(4, 7)

    def test_mul_takes_endpoint_extremes(self):
        assert Interval(1, 2) * Interval(3, 5) == Interval(3, 10)

    def test_scale(self):
        assert Interval(1, 2).scale(3.0) == Interval(3, 6)

    def test_max_with_is_endpointwise_max(self):
        assert Interval(1, 10).max_with(Interval(4, 6)) == Interval(4, 10)

    def test_union_hull(self):
        assert Interval(1, 2).union(Interval(5, 9)) == Interval(1, 9)

    def test_midpoint_and_width(self):
        assert Interval(2, 6).midpoint == 4.0
        assert Interval(2, 6).width == 4.0

    def test_unbounded_midpoint_is_infinite(self):
        assert math.isinf(UNBOUNDED.midpoint)
        assert not UNBOUNDED.is_bounded

    def test_point_contains_itself_only(self):
        p = point(5.0)
        assert p.is_point
        assert 5.0 in p
        assert 5.000001 not in p
        assert p.contains(5.0 + 1e-9, slack=1e-6)

    def test_zero_is_additive_identity(self):
        assert Interval(3, 4) + ZERO == Interval(3, 4)

    def test_str_renders_both_endpoints(self):
        assert "3" in str(Interval(3, 4)) and "4" in str(Interval(3, 4))


class TestWideningPolicy:
    def test_default_trip_interval(self):
        assert WideningPolicy().trip_interval == Interval(0.0, 4096.0)

    def test_custom_bounds(self):
        policy = WideningPolicy(data_trip_bounds=(2.0, 8.0))
        assert policy.trip_interval == Interval(2.0, 8.0)


class TestVariantCostBound:
    def test_static_pool_interval_is_bounded(self):
        bound = variant_cost_bound(make_axpy_variant("v"), "cpu")
        assert bound.unit_interval.is_bounded
        assert bound.unit_interval.lo > 0
        assert not bound.widened or all(
            isinstance(reason, str) for reason in bound.widened
        )

    def test_launch_interval_scales_with_units(self):
        bound = variant_cost_bound(make_axpy_variant("v"), "cpu")
        one = bound.launch_interval(1)
        many = bound.launch_interval(10)
        assert many.lo >= one.lo * 10 - 1e-9
        assert many.hi >= one.hi

    def test_per_unit_interval_brackets_launch_interval(self):
        # launch cost per unit always lies inside the asymptotic per-unit
        # interval, for any unit count (the bound dominance prunes with).
        bound = variant_cost_bound(
            make_axpy_variant("v", wa_factor=4), "cpu"
        )
        for units in (1, 3, 4, 7, 64):
            launch = bound.launch_interval(units)
            per_unit = bound.per_unit_interval
            assert launch.lo >= per_unit.lo * units - 1e-9
            assert launch.hi <= per_unit.hi * units + 1e-9

    def test_unknown_device_kind_widens_to_unbounded(self):
        bound = variant_cost_bound(make_axpy_variant("v"), "tpu")
        assert not bound.unit_interval.is_bounded
        assert bound.widened

    def test_gpu_and_cpu_bounds_differ(self):
        variant = make_axpy_variant("v")
        cpu = variant_cost_bound(variant, "cpu")
        gpu = variant_cost_bound(variant, "gpu")
        assert cpu.unit_interval != gpu.unit_interval


class TestIrHashAndCache:
    def test_hash_is_stable(self):
        ir = make_axpy_variant("v").ir
        assert ir_hash(ir) == ir_hash(ir)

    def test_hash_distinguishes_structural_changes(self):
        a = make_axpy_variant("v", flops_per_trip=32.0).ir
        b = make_axpy_variant("v", flops_per_trip=64.0).ir
        assert ir_hash(a) != ir_hash(b)

    def test_bounds_are_cached_by_ir_hash(self):
        clear_cache()
        variant = make_axpy_variant("cached")
        first = variant_cost_bound(variant, "cpu")
        size_after_first = cache_size()
        second = variant_cost_bound(variant, "cpu")
        assert first is second
        assert cache_size() == size_after_first

    def test_policy_changes_miss_the_cache(self):
        clear_cache()
        variant = make_axpy_variant("cached")
        default = variant_cost_bound(variant, "cpu")
        widened = variant_cost_bound(
            variant, "cpu", policy=WideningPolicy(data_trip_bounds=(0, 8))
        )
        assert default is not widened
