"""Gate tests: strict/warn/off behaviour and the runtime integration."""

import warnings

import pytest

from repro.analyze.diagnostics import (
    Diagnostic,
    Severity,
    VerificationReport,
    combos,
)
from repro.analyze.gate import VerificationWarning, gate_launch
from repro.analyze.manager import verify_pool
from repro.config import ReproConfig
from repro.core.runtime import DySelRuntime
from repro.device import make_cpu
from repro.errors import ConfigurationError, VerificationError
from repro.modes import OrchestrationFlow, ProfilingMode
from tests.conftest import make_axpy_args

FULLY, HYBRID, SWAP = (
    ProfilingMode.FULLY,
    ProfilingMode.HYBRID,
    ProfilingMode.SWAP,
)
SYNC, ASYNC = OrchestrationFlow.SYNC, OrchestrationFlow.ASYNC


def swap_async_report(pool="p", recommended=SWAP):
    return VerificationReport(
        pool=pool,
        diagnostics=(
            Diagnostic(
                rule_id="DYSEL-ASYNC-001",
                severity=Severity.ERROR,
                message="swap cannot run asynchronously",
                hint="use mode 'swap_sync'",
                scope=combos(modes=[SWAP], flows=[ASYNC]),
            ),
        ),
        recommended_mode=recommended,
    )


class TestGateLevels:
    def test_legal_request_passes_unchanged(self):
        decision = gate_launch(swap_async_report(), SWAP, SYNC, "strict")
        assert (decision.mode, decision.flow) == (SWAP, SYNC)
        assert not decision.demoted

    def test_off_bypasses_even_illegal_requests(self):
        decision = gate_launch(swap_async_report(), SWAP, ASYNC, "off")
        assert (decision.mode, decision.flow) == (SWAP, ASYNC)

    def test_strict_raises_with_structured_diagnostics(self):
        with pytest.raises(VerificationError) as excinfo:
            gate_launch(swap_async_report(), SWAP, ASYNC, "strict")
        error = excinfo.value
        assert "DYSEL-ASYNC-001" in str(error)
        assert "swap_sync" in str(error)  # legal alternative listed
        assert error.diagnostics
        assert error.diagnostics[0].rule_id == "DYSEL-ASYNC-001"

    def test_warn_demotes_and_warns(self):
        with pytest.warns(VerificationWarning, match="DYSEL-ASYNC-001"):
            decision = gate_launch(swap_async_report(), SWAP, ASYNC, "warn")
        assert (decision.mode, decision.flow) == (SWAP, SYNC)
        assert "forced synchronous" in decision.note
        assert decision.demoted

    def test_warn_with_nothing_legal_still_raises(self):
        hopeless = VerificationReport(
            pool="p",
            diagnostics=(
                Diagnostic(
                    rule_id="DYSEL-SAFEPOINT-001",
                    severity=Severity.ERROR,
                    message="no fair slice fits",
                ),
            ),
        )
        with pytest.raises(VerificationError):
            gate_launch(hopeless, FULLY, ASYNC, "warn")

    def test_warn_mode_demotion_note_names_rules(self):
        report = VerificationReport(
            pool="p",
            diagnostics=(
                Diagnostic(
                    rule_id="DYSEL-MODE-001",
                    severity=Severity.ERROR,
                    message="atomics",
                    scope=combos(modes=[FULLY, HYBRID]),
                ),
                swap_async_report().diagnostics[0],
            ),
        )
        with pytest.warns(VerificationWarning):
            decision = gate_launch(report, FULLY, ASYNC, "warn")
        assert (decision.mode, decision.flow) == (SWAP, SYNC)
        assert "demoted" in decision.note
        assert "DYSEL-MODE-001" in decision.note


class TestConfigValidation:
    def test_verify_levels_accepted(self):
        for level in ("strict", "warn", "off"):
            assert ReproConfig(verify=level).verify == level

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError, match="verify"):
            ReproConfig(verify="maybe")


class TestRuntimeGating:
    """End-to-end: the gate decides what launch_kernel may run."""

    def _runtime(self, atomic_pool, verify):
        config = ReproConfig(verify=verify)
        runtime = DySelRuntime(make_cpu(config), config)
        runtime.register_pool(atomic_pool)
        return runtime

    def test_strict_refuses_fully_on_atomic_pool(self, atomic_pool, config):
        runtime = self._runtime(atomic_pool, "strict")
        args = make_axpy_args(512, config)
        with pytest.raises(VerificationError) as excinfo:
            runtime.launch_kernel(
                "axpy", args, 512, mode=FULLY, flow=SYNC
            )
        assert "DYSEL-MODE-001" in str(excinfo.value)
        assert excinfo.value.diagnostics

    def test_strict_diagnostic_matches_static_report(self, atomic_pool, config):
        # The CLI's verdict and the runtime's refusal are the same facts.
        static = verify_pool(atomic_pool)
        runtime = self._runtime(atomic_pool, "strict")
        args = make_axpy_args(512, config)
        with pytest.raises(VerificationError) as excinfo:
            runtime.launch_kernel("axpy", args, 512, mode=FULLY, flow=SYNC)
        assert {d.rule_id for d in excinfo.value.diagnostics} == {
            d.rule_id for d in static.blocking(FULLY, SYNC)
        }

    def test_strict_allows_legal_swap_sync(self, atomic_pool, config):
        runtime = self._runtime(atomic_pool, "strict")
        args = make_axpy_args(512, config)
        result = runtime.launch_kernel("axpy", args, 512, mode=SWAP, flow=SYNC)
        assert result.profiled
        assert result.mode is SWAP

    def test_strict_override_permits_fully(self, atomic_pool, config):
        # Satellite: the programmer override downgrades the atomics ERROR
        # to WARNING, so the previously refused launch goes through.
        runtime = self._runtime(atomic_pool, "strict")
        args = make_axpy_args(512, config)
        result = runtime.launch_kernel(
            "axpy",
            args,
            512,
            mode=FULLY,
            flow=SYNC,
            override_side_effects=True,
        )
        assert result.profiled
        assert result.mode is FULLY

    def test_warn_demotes_fully_to_swap_sync(self, atomic_pool, config):
        runtime = self._runtime(atomic_pool, "warn")
        args = make_axpy_args(512, config)
        with pytest.warns(VerificationWarning):
            result = runtime.launch_kernel(
                "axpy", args, 512, mode=FULLY, flow=SYNC
            )
        assert result.mode is SWAP
        assert result.flow is SYNC
        assert "demoted" in result.reason

    def test_off_keeps_legacy_swap_fallback(self, clean_pool, config):
        runtime_config = ReproConfig(verify="off")
        runtime = DySelRuntime(make_cpu(runtime_config), runtime_config)
        runtime.register_pool(clean_pool)
        args = make_axpy_args(512, config)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no VerificationWarning allowed
            result = runtime.launch_kernel(
                "axpy", args, 512, mode=SWAP, flow=ASYNC
            )
        assert result.flow is SYNC
        assert "forced synchronous" in result.reason

    def test_gate_verdict_is_cached_across_launches(self, clean_pool, config):
        runtime = self._runtime(clean_pool, "warn")
        args = make_axpy_args(512, config)
        runtime.launch_kernel("axpy", args, 512)
        runtime.launch_kernel("axpy", args, 512)
        assert runtime.verifier.cached_verdicts == 1
