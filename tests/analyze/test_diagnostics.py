"""Unit tests for the diagnostics engine and the legality matrix."""

from repro.analyze.diagnostics import (
    ALL_COMBOS,
    Diagnostic,
    Severity,
    VerificationReport,
    combos,
    merge_reports,
)
from repro.modes import OrchestrationFlow, ProfilingMode

FULLY, HYBRID, SWAP = (
    ProfilingMode.FULLY,
    ProfilingMode.HYBRID,
    ProfilingMode.SWAP,
)
SYNC, ASYNC = OrchestrationFlow.SYNC, OrchestrationFlow.ASYNC


def error(rule="DYSEL-TEST-001", scope=None, **kwargs):
    return Diagnostic(
        rule_id=rule,
        severity=Severity.ERROR,
        message="boom",
        scope=scope,
        **kwargs,
    )


class TestCombos:
    def test_full_matrix(self):
        assert combos() == frozenset(ALL_COMBOS)
        assert len(ALL_COMBOS) == 6

    def test_cheapest_mode_first(self):
        assert ALL_COMBOS[0][0] is FULLY
        assert ALL_COMBOS[-1][0] is SWAP

    def test_axis_restriction(self):
        only_swap_async = combos(modes=[SWAP], flows=[ASYNC])
        assert only_swap_async == {(SWAP, ASYNC)}
        committing = combos(modes=[FULLY, HYBRID])
        assert (FULLY, SYNC) in committing
        assert (SWAP, SYNC) not in committing


class TestDiagnostic:
    def test_covers_pool_wide_by_default(self):
        d = error()
        for mode, flow in ALL_COMBOS:
            assert d.covers(mode, flow)

    def test_covers_respects_scope(self):
        d = error(scope=combos(modes=[SWAP], flows=[ASYNC]))
        assert d.covers(SWAP, ASYNC)
        assert not d.covers(SWAP, SYNC)
        assert not d.covers(FULLY, ASYNC)

    def test_downgraded_keeps_rule_and_scope(self):
        d = error(scope=combos(modes=[FULLY]))
        down = d.downgraded("programmer asserted race-free atomics")
        assert down.severity is Severity.WARNING
        assert down.rule_id == d.rule_id
        assert down.scope == d.scope
        assert "overridden" in down.message

    def test_format_includes_severity_rule_variant_hint(self):
        d = Diagnostic(
            rule_id="DYSEL-MODE-001",
            severity=Severity.ERROR,
            message="global atomic on 'hist'",
            variant="atomic",
            hint="use mode 'swap_sync'",
        )
        line = d.format()
        assert "ERROR" in line
        assert "DYSEL-MODE-001" in line
        assert "[atomic]" in line
        assert "hint: use mode 'swap_sync'" in line


class TestLegalityMatrix:
    def test_empty_report_all_legal(self):
        report = VerificationReport(pool="p")
        assert report.legal_combos() == ALL_COMBOS
        assert report.ok

    def test_error_blocks_only_its_scope(self):
        report = VerificationReport(
            pool="p",
            diagnostics=(error(scope=combos(modes=[SWAP], flows=[ASYNC])),),
        )
        assert not report.is_legal(SWAP, ASYNC)
        assert report.is_legal(SWAP, SYNC)
        assert report.is_legal(FULLY, ASYNC)

    def test_warning_never_blocks(self):
        warning = Diagnostic(
            rule_id="DYSEL-TEST-002",
            severity=Severity.WARNING,
            message="meh",
        )
        report = VerificationReport(pool="p", diagnostics=(warning,))
        assert report.legal_combos() == ALL_COMBOS

    def test_blocking_lists_covering_errors(self):
        scoped = error(rule="DYSEL-A-001", scope=combos(modes=[FULLY]))
        everywhere = error(rule="DYSEL-B-001")
        report = VerificationReport(pool="p", diagnostics=(scoped, everywhere))
        assert {d.rule_id for d in report.blocking(FULLY, SYNC)} == {
            "DYSEL-A-001",
            "DYSEL-B-001",
        }
        assert {d.rule_id for d in report.blocking(SWAP, SYNC)} == {
            "DYSEL-B-001"
        }

    def test_by_rule(self):
        report = VerificationReport(
            pool="p", diagnostics=(error(rule="DYSEL-A-001"),)
        )
        assert len(report.by_rule("DYSEL-A-001")) == 1
        assert report.by_rule("DYSEL-NOPE-001") == ()


class TestDemotion:
    def test_legal_request_unchanged(self):
        report = VerificationReport(pool="p")
        assert report.demote(FULLY, ASYNC) == (FULLY, ASYNC)

    def test_prefers_same_mode_sync_fallback(self):
        # The paper's Table 1 swap fallback: keep the mode, drop async.
        report = VerificationReport(
            pool="p",
            diagnostics=(error(scope=combos(flows=[ASYNC])),),
        )
        assert report.demote(SWAP, ASYNC) == (SWAP, SYNC)
        assert report.demote(FULLY, ASYNC) == (FULLY, SYNC)

    def test_falls_back_to_cheapest_mode_under_flow(self):
        # fully/hybrid blocked everywhere; swap_sync is the only way out.
        report = VerificationReport(
            pool="p",
            diagnostics=(
                error(scope=combos(modes=[FULLY, HYBRID])),
                error(
                    rule="DYSEL-ASYNC-001",
                    scope=combos(modes=[SWAP], flows=[ASYNC]),
                ),
            ),
        )
        assert report.demote(FULLY, ASYNC) == (SWAP, SYNC)

    def test_nothing_legal_returns_none(self):
        report = VerificationReport(pool="p", diagnostics=(error(),))
        assert report.demote(FULLY, ASYNC) is None
        assert not report.ok

    def test_default_combo_demotes_recommended_mode(self):
        report = VerificationReport(
            pool="p",
            diagnostics=(
                error(
                    rule="DYSEL-ASYNC-001",
                    scope=combos(modes=[SWAP], flows=[ASYNC]),
                ),
            ),
            recommended_mode=SWAP,
        )
        assert report.default_combo == (SWAP, SYNC)


class TestRendering:
    def test_explain_names_rules_and_legal_combos(self):
        report = VerificationReport(
            pool="hist",
            diagnostics=(
                error(
                    rule="DYSEL-MODE-001",
                    scope=combos(modes=[FULLY, HYBRID]),
                ),
            ),
        )
        text = report.explain(FULLY, ASYNC)
        assert "illegal launch" in text
        assert "DYSEL-MODE-001" in text
        assert "swap_sync" in text  # listed among the legal combinations

    def test_format_matrix_marks_illegal_cells(self):
        report = VerificationReport(
            pool="hist",
            diagnostics=(
                error(
                    rule="DYSEL-MODE-001",
                    scope=combos(modes=[FULLY, HYBRID]),
                ),
                error(
                    rule="DYSEL-ASYNC-001",
                    scope=combos(modes=[SWAP], flows=[ASYNC]),
                ),
            ),
            recommended_mode=SWAP,
        )
        text = report.format()
        assert "ILLEGAL (DYSEL-MODE-001)" in text
        assert "swap_sync" in text
        assert "default launch: swap_sync" in text

    def test_format_hides_info_unless_verbose(self):
        info = Diagnostic(
            rule_id="DYSEL-SANDBOX-003",
            severity=Severity.INFO,
            message="accounting",
        )
        report = VerificationReport(pool="p", diagnostics=(info,))
        assert "DYSEL-SANDBOX-003" not in report.format()
        assert "DYSEL-SANDBOX-003" in report.format(verbose=True)

    def test_format_reports_unlaunchable_pool(self):
        report = VerificationReport(pool="p", diagnostics=(error(),))
        assert "default launch: NONE" in report.format()


def test_merge_reports_indexes_by_pool():
    a = VerificationReport(pool="a")
    b = VerificationReport(pool="b")
    assert merge_reports([a, b]) == {"a": a, "b": b}
