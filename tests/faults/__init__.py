"""Fault injection, quarantine, and chaos tests."""
