"""FaultPlan / FaultRule unit tests: matching, budgets, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultRule,
    corrupt_once,
    crash_once,
)


class TestRuleValidation:
    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.CRASH, count=0)

    def test_negative_after_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.CRASH, after=-1)

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_bad_probability_rejected(self, p):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.CRASH, probability=p)

    def test_latency_magnitude_must_slow_down(self):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.LATENCY, magnitude=1.0)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([], seed=-1)


class TestMatching:
    def test_none_matchers_match_everything(self):
        rule = FaultRule(FaultKind.CRASH)
        assert rule.matches("any", "kernel")
        assert rule.matches("other", None)

    def test_variant_matcher(self):
        rule = FaultRule(FaultKind.CRASH, variant="fast")
        assert rule.matches("fast", None)
        assert not rule.matches("slow", None)

    def test_kernel_matcher_ignores_unknown_context(self):
        # A kernel-scoped rule still fires when the injector has no
        # launch context (None kernel): scoping narrows, never saves.
        rule = FaultRule(FaultKind.CRASH, kernel="axpy")
        assert rule.matches("fast", "axpy")
        assert rule.matches("fast", None)
        assert not rule.matches("fast", "sgemm")


class TestFiring:
    def test_count_budget_depletes(self):
        plan = FaultPlan([FaultRule(FaultKind.CRASH, count=2)])
        assert plan.decide("v") is not None
        assert plan.decide("v") is not None
        assert plan.decide("v") is None
        assert plan.total_injected == 2

    def test_after_skips_warmup_submissions(self):
        plan = FaultPlan([FaultRule(FaultKind.CRASH, after=2)])
        assert plan.decide("v") is None
        assert plan.decide("v") is None
        assert plan.decide("v") is not None

    def test_unlimited_count(self):
        plan = FaultPlan([FaultRule(FaultKind.CRASH, count=None)])
        for _ in range(10):
            assert plan.decide("v") is not None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [
                FaultRule(FaultKind.LATENCY, variant="fast", magnitude=4.0),
                FaultRule(FaultKind.CRASH, variant="fast"),
            ]
        )
        decision = plan.decide("fast")
        assert decision.kind is FaultKind.LATENCY
        assert decision.magnitude == 4.0

    def test_probability_draws_are_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule(FaultKind.CRASH, probability=0.5, count=None)],
                seed=seed,
            )
            return [plan.decide("v") is not None for _ in range(32)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_reset_replays_the_same_schedule(self):
        plan = FaultPlan(
            [FaultRule(FaultKind.CRASH, probability=0.5, count=None)],
            seed=3,
        )
        first = [plan.decide("v") is not None for _ in range(16)]
        plan.reset()
        assert plan.total_injected == 0
        second = [plan.decide("v") is not None for _ in range(16)]
        assert first == second

    def test_injection_ledger_keys(self):
        plan = FaultPlan([crash_once("fast", kernel="axpy")])
        plan.decide("fast", kernel="axpy")
        assert plan.injections == {("axpy", "fast", "crash"): 1}

    def test_helpers(self):
        assert crash_once("v").kind is FaultKind.CRASH
        assert corrupt_once("v").kind is FaultKind.CORRUPT
