"""FaultInjector unit tests: per-kind semantics at the execute boundary."""

import numpy as np
import pytest

from repro.errors import (
    TransientDeviceFault,
    VariantCorruptionFault,
    VariantCrashFault,
)
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    count_by_variant,
)
from repro.kernel.kernel import WorkRange

from tests.conftest import AXPY_UNIT, make_axpy_args, make_axpy_variant

from repro.config import ReproConfig


def fresh(units=4):
    config = ReproConfig()
    return make_axpy_variant("fast"), make_axpy_args(units, config)


def test_clean_plan_executes_normally():
    variant, args = fresh()
    injector = FaultInjector(FaultPlan([]))
    outcome = injector.intercept(variant, args, WorkRange(0, 4))
    assert outcome.executed and not outcome.hang
    assert np.array_equal(args["y"].data, 2.0 * args["x"].data)


def test_crash_raises_before_writing():
    variant, args = fresh()
    injector = FaultInjector(FaultPlan([FaultRule(FaultKind.CRASH)]))
    with pytest.raises(VariantCrashFault) as excinfo:
        injector.intercept(variant, args, WorkRange(0, 4))
    assert excinfo.value.variant == "fast"
    assert not args["y"].data.any()  # nothing was written


def test_transient_raises_before_writing():
    variant, args = fresh()
    injector = FaultInjector(FaultPlan([FaultRule(FaultKind.TRANSIENT)]))
    with pytest.raises(TransientDeviceFault):
        injector.intercept(variant, args, WorkRange(0, 4))
    assert not args["y"].data.any()


def test_corrupt_scribbles_written_elements_and_raises():
    variant, args = fresh()
    injector = FaultInjector(FaultPlan([FaultRule(FaultKind.CORRUPT)]))
    with pytest.raises(VariantCorruptionFault):
        injector.intercept(variant, args, WorkRange(0, 2))
    written = args["y"].data[: 2 * AXPY_UNIT]
    untouched = args["y"].data[2 * AXPY_UNIT :]
    # The damage is really in the buffer, confined to the written range.
    assert not np.allclose(written, 2.0 * args["x"].data[: 2 * AXPY_UNIT])
    assert not untouched.any()


def test_corrupt_never_touches_read_only_inputs():
    variant, args = fresh()
    x_before = args["x"].data.copy()
    injector = FaultInjector(FaultPlan([FaultRule(FaultKind.CORRUPT)]))
    with pytest.raises(VariantCorruptionFault):
        injector.intercept(variant, args, WorkRange(0, 4))
    assert np.array_equal(args["x"].data, x_before)


def test_corruption_is_seed_deterministic():
    def corrupted(seed):
        variant, args = fresh()
        injector = FaultInjector(
            FaultPlan([FaultRule(FaultKind.CORRUPT)], seed=seed)
        )
        with pytest.raises(VariantCorruptionFault):
            injector.intercept(variant, args, WorkRange(0, 4))
        return args["y"].data.copy()

    assert np.array_equal(corrupted(5), corrupted(5))
    assert not np.array_equal(corrupted(5), corrupted(6))


def test_hang_skips_execution():
    variant, args = fresh()
    injector = FaultInjector(FaultPlan([FaultRule(FaultKind.HANG)]))
    outcome = injector.intercept(variant, args, WorkRange(0, 4))
    assert outcome.hang and not outcome.executed
    assert not args["y"].data.any()


def test_latency_executes_with_slowdown():
    variant, args = fresh()
    injector = FaultInjector(
        FaultPlan([FaultRule(FaultKind.LATENCY, magnitude=8.0)])
    )
    outcome = injector.intercept(variant, args, WorkRange(0, 4))
    assert outcome.executed and outcome.latency_scale == 8.0
    assert np.array_equal(args["y"].data, 2.0 * args["x"].data)


def test_kernel_context_scopes_rules():
    variant, args = fresh()
    plan = FaultPlan([FaultRule(FaultKind.CRASH, kernel="other")])
    injector = FaultInjector(plan, kernel="axpy")
    outcome = injector.intercept(variant, args, WorkRange(0, 4))
    assert outcome.executed  # rule scoped to a different kernel


def test_count_by_variant_aggregates_kinds():
    plan = FaultPlan(
        [
            FaultRule(FaultKind.CRASH, variant="fast"),
            FaultRule(FaultKind.TRANSIENT, variant="fast"),
        ]
    )
    plan.decide("fast")
    plan.decide("fast")
    assert count_by_variant(plan) == {("*", "fast"): 2}
