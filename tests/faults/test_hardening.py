"""Runtime hardening under injected faults: retry, repair, quarantine,
degradation — including the acceptance scenario (crash the profiled
winner + corrupt a sibling in a hybrid launch, output stays
bit-identical)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.compiler.variants import VariantPool
from repro.config import FaultPolicy, ReproConfig
from repro.core.runtime import DySelRuntime, ProfilingDemotionWarning
from repro.device import make_cpu
from repro.errors import LaunchAbortedError
from repro.faults import FaultKind, FaultPlan, FaultRule
from repro.kernel import AccessPattern, KernelSpec
from repro.modes import OrchestrationFlow, ProfilingMode
from repro.obs.events import EventKind
from repro.obs.export import reconcile
from repro.serve import SelectionStore

from tests.conftest import (
    axpy_signature,
    make_axpy_args,
    make_axpy_variant,
)

UNITS = 256


def three_pool(mode=None):
    """fast < mid < slow by construction, shared functional semantics."""
    return VariantPool(
        spec=KernelSpec(signature=axpy_signature()),
        variants=(
            make_axpy_variant("fast", AccessPattern.UNIT_STRIDE),
            make_axpy_variant("mid", AccessPattern.STRIDED, stride_bytes=32),
            make_axpy_variant("slow", AccessPattern.STRIDED, stride_bytes=128),
        ),
        mode=mode,
    )


def make_runtime(rules, seed=0, threshold=2, trace=True, pool=None):
    config = replace(
        ReproConfig(),
        trace=trace,
        faults=FaultPolicy(quarantine_threshold=threshold),
    )
    runtime = DySelRuntime(make_cpu(config), config)
    runtime.register_pool(pool if pool is not None else three_pool())
    if rules is not None:
        runtime.install_faults(FaultPlan(rules, seed=seed))
    return runtime, config


def launch(runtime, config, flow=OrchestrationFlow.SYNC, mode=None, units=UNITS):
    args = make_axpy_args(units, config)
    result = runtime.launch_kernel(
        "axpy", args, units, mode=mode, flow=flow
    )
    return result, args


def assert_bit_identical(args):
    assert np.array_equal(args["y"].data, 2.0 * args["x"].data)


def event_kinds(runtime):
    return [e.kind for e in runtime.tracer.events]


class TestAcceptanceScenario:
    """ISSUE acceptance: crash the winner, corrupt a sibling, hybrid."""

    @pytest.mark.parametrize(
        "flow", [OrchestrationFlow.SYNC, OrchestrationFlow.ASYNC]
    )
    def test_hybrid_launch_survives_crash_plus_corruption(self, flow):
        # Reference: the same launch with no faults selects 'fast'.
        clean_rt, config = make_runtime(None)
        clean_result, clean_args = launch(
            clean_rt, config, flow=flow, mode=ProfilingMode.HYBRID
        )
        assert clean_result.selected == "fast"
        assert_bit_identical(clean_args)

        runtime, config = make_runtime(
            [
                FaultRule(FaultKind.CRASH, variant="fast"),
                FaultRule(FaultKind.CORRUPT, variant="mid"),
            ],
            threshold=1,
        )
        result, args = launch(
            runtime, config, flow=flow, mode=ProfilingMode.HYBRID
        )
        # The survivor wins and the committed output is bit-identical to
        # the no-fault reference (every committed element is 2*x).
        assert result.selected == "slow"
        assert_bit_identical(args)
        assert np.array_equal(args["y"].data, clean_args["y"].data)

        kinds = event_kinds(runtime)
        assert kinds.count(EventKind.FAULT_INJECT) >= 2
        assert EventKind.VARIANT_QUARANTINE in kinds
        assert runtime.quarantine.is_quarantined("axpy", "mid")
        assert runtime.quarantine.is_quarantined("axpy", "fast")
        # The chaos run's trace still reconciles: begin/end pair, spans
        # in-window, and unit accounting adds up despite the repairs.
        assert reconcile(runtime.tracer.events) == []

    def test_quarantine_ledger_persists_through_store(self, tmp_path):
        runtime, config = make_runtime(
            [FaultRule(FaultKind.CORRUPT, variant="mid")], threshold=1
        )
        store = SelectionStore()
        store.quarantine.policy = config.faults
        runtime.quarantine = store.quarantine
        launch(runtime, config, mode=ProfilingMode.HYBRID)
        assert store.quarantine.is_quarantined("axpy", "mid")

        path = str(tmp_path / "store.json")
        store.save(path)
        restored = SelectionStore.load(path)
        restored.quarantine.policy = config.faults
        assert restored.quarantine.is_quarantined("axpy", "mid")


class TestTransientRetry:
    def test_transient_faults_are_retried_to_success(self):
        # Two transients on 'fast', then clean: within the default retry
        # budget, so the launch completes with no permanent fault.
        runtime, config = make_runtime(
            [FaultRule(FaultKind.TRANSIENT, variant="fast", count=2)]
        )
        result, args = launch(runtime, config)
        assert_bit_identical(args)
        kinds = event_kinds(runtime)
        assert kinds.count(EventKind.FAULT_RETRY) == 2
        assert not runtime.quarantine.quarantined("axpy")

    def test_exhausted_retries_become_permanent_fault(self):
        runtime, config = make_runtime(
            [FaultRule(FaultKind.TRANSIENT, variant="fast", count=None)],
            threshold=1,
        )
        result, args = launch(runtime, config)
        assert result.selected != "fast"
        assert_bit_identical(args)
        assert runtime.quarantine.is_quarantined("axpy", "fast")

    def test_backoff_cycles_cap(self):
        policy = FaultPolicy(backoff_base_cycles=100.0, backoff_cap_cycles=350.0)
        assert policy.backoff_cycles(1) == 100.0
        assert policy.backoff_cycles(2) == 200.0
        assert policy.backoff_cycles(3) == 350.0  # capped


class TestHangs:
    @pytest.mark.parametrize(
        "flow", [OrchestrationFlow.SYNC, OrchestrationFlow.ASYNC]
    )
    def test_hung_candidate_is_cancelled_and_repaired(self, flow):
        runtime, config = make_runtime(
            [FaultRule(FaultKind.HANG, variant="mid")], threshold=1
        )
        result, args = launch(runtime, config, flow=flow)
        assert result.selected != "mid"
        assert_bit_identical(args)
        kinds = event_kinds(runtime)
        assert EventKind.TASK_CANCEL in kinds
        assert runtime.quarantine.is_quarantined("axpy", "mid")
        assert reconcile(runtime.tracer.events) == []


class TestDegradationLadder:
    def test_all_candidates_faulting_degrades_to_batch(self):
        # Every profiling submission crashes (3 candidates), then the
        # rule is exhausted: the degraded batch run completes cleanly.
        runtime, config = make_runtime(
            [FaultRule(FaultKind.CRASH, count=3)]
        )
        with pytest.warns(ProfilingDemotionWarning):
            result, args = launch(runtime, config)
        assert not result.profiled
        assert_bit_identical(args)
        assert EventKind.LAUNCH_DEGRADED in event_kinds(runtime)

    def test_unrunnable_launch_aborts(self):
        runtime, config = make_runtime(
            [FaultRule(FaultKind.CRASH, count=None)], threshold=1
        )
        with pytest.raises(LaunchAbortedError) as excinfo:
            launch(runtime, config)
        assert excinfo.value.kernel == "axpy"

    def test_fully_quarantined_pool_aborts_next_launch(self):
        runtime, config = make_runtime(
            [FaultRule(FaultKind.CRASH, count=None)], threshold=1
        )
        with pytest.raises(LaunchAbortedError):
            launch(runtime, config)
        # Every variant is now quarantined: the next launch aborts
        # before touching the device.
        with pytest.raises(LaunchAbortedError):
            launch(runtime, config)

    def test_quarantined_variant_filtered_from_next_launch(self):
        runtime, config = make_runtime(
            [FaultRule(FaultKind.CRASH, variant="fast", count=1)],
            threshold=1,
        )
        first, args1 = launch(runtime, config)
        assert first.selected != "fast"
        assert_bit_identical(args1)
        assert runtime.quarantine.is_quarantined("axpy", "fast")
        second, args2 = launch(runtime, config)
        assert second.selected != "fast"
        assert_bit_identical(args2)

    def test_profiling_off_batch_falls_back_over_faulty_default(self):
        pool = three_pool()
        runtime, config = make_runtime(
            [FaultRule(FaultKind.CRASH, variant="fast", count=1)],
            pool=pool,
        )
        args = make_axpy_args(UNITS, config)
        result = runtime.launch_kernel(
            "axpy", args, UNITS, profiling=False
        )
        # Pool default 'fast' crashed; the fallback chain completed the
        # whole batch with a sibling.
        assert result.selected != "fast"
        assert_bit_identical(args)


class TestNoInjectorIsInert:
    def test_clear_faults_restores_clean_runs(self):
        runtime, config = make_runtime(
            [FaultRule(FaultKind.CRASH, count=None)]
        )
        runtime.clear_faults()
        result, args = launch(runtime, config)
        assert result.profiled
        assert_bit_identical(args)
        kinds = event_kinds(runtime)
        assert EventKind.FAULT_INJECT not in kinds
        assert reconcile(runtime.tracer.events) == []
