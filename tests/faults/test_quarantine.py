"""VariantQuarantine unit tests: thresholds, parole, persistence."""

import pytest

from repro.config import FaultPolicy
from repro.errors import StoreError
from repro.faults import VariantQuarantine


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make_ledger(threshold=2, ttl=100.0, now=0.0):
    clock = FakeClock(now)
    policy = FaultPolicy(quarantine_threshold=threshold, parole_ttl=ttl)
    return VariantQuarantine(policy, clock=clock), clock


class TestThreshold:
    def test_quarantines_at_threshold(self):
        ledger, _ = make_ledger(threshold=2)
        assert not ledger.note_fault("k", "v", "crash")
        assert not ledger.is_quarantined("k", "v")
        assert ledger.note_fault("k", "v", "corrupt")
        assert ledger.is_quarantined("k", "v")

    def test_kernels_are_independent(self):
        ledger, _ = make_ledger(threshold=1)
        ledger.note_fault("k1", "v")
        assert ledger.is_quarantined("k1", "v")
        assert not ledger.is_quarantined("k2", "v")

    def test_quarantined_listing_sorted(self):
        ledger, _ = make_ledger(threshold=1)
        ledger.note_fault("k", "zeta")
        ledger.note_fault("k", "alpha")
        assert ledger.quarantined("k") == ("alpha", "zeta")

    def test_fault_count_and_len(self):
        ledger, _ = make_ledger(threshold=5)
        ledger.note_fault("k", "v")
        ledger.note_fault("k", "v")
        assert ledger.fault_count("k", "v") == 2
        assert ledger.fault_count("k", "other") == 0
        assert len(ledger) == 1


class TestParole:
    def test_ttl_paroles_and_resets_count(self):
        ledger, clock = make_ledger(threshold=1, ttl=50.0)
        ledger.note_fault("k", "v")
        assert ledger.is_quarantined("k", "v")
        clock.now = 49.0
        assert ledger.is_quarantined("k", "v")
        clock.now = 50.0
        assert not ledger.is_quarantined("k", "v")
        assert ledger.fault_count("k", "v") == 0

    def test_fault_during_parole_requarantines(self):
        ledger, clock = make_ledger(threshold=1, ttl=50.0)
        ledger.note_fault("k", "v")
        clock.now = 60.0
        assert not ledger.is_quarantined("k", "v")
        assert ledger.note_fault("k", "v")  # newly quarantined again
        assert ledger.is_quarantined("k", "v")

    def test_none_ttl_means_no_parole(self):
        ledger, clock = make_ledger(threshold=1, ttl=None)
        ledger.note_fault("k", "v")
        clock.now = 1e9
        assert ledger.is_quarantined("k", "v")

    def test_manual_release(self):
        ledger, _ = make_ledger(threshold=1)
        ledger.note_fault("k", "v")
        assert ledger.release("k", "v")
        assert not ledger.is_quarantined("k", "v")
        assert not ledger.release("k", "v")  # already free


class TestPersistence:
    def test_payload_round_trip(self):
        ledger, clock = make_ledger(threshold=2, ttl=100.0, now=10.0)
        ledger.note_fault("k", "bad", "crash")
        ledger.note_fault("k", "bad", "corrupt")
        ledger.note_fault("k", "meh")  # tracked but not quarantined

        clock.now = 30.0
        payload = ledger.to_payload()

        restored = VariantQuarantine(
            FaultPolicy(quarantine_threshold=2, parole_ttl=100.0),
            clock=FakeClock(1000.0),  # unrelated clock epoch
        )
        restored.load_payload(payload)
        assert restored.is_quarantined("k", "bad")
        assert not restored.is_quarantined("k", "meh")
        assert restored.fault_count("k", "meh") == 1

    def test_relative_age_survives_epoch_change(self):
        # Quarantined 20s ago with a 100s TTL: after restore on a new
        # clock the variant paroles 80s later, not 100s.
        ledger, clock = make_ledger(threshold=1, ttl=100.0, now=0.0)
        ledger.note_fault("k", "v")
        clock.now = 20.0
        payload = ledger.to_payload()

        new_clock = FakeClock(5000.0)
        restored = VariantQuarantine(
            FaultPolicy(quarantine_threshold=1, parole_ttl=100.0),
            clock=new_clock,
        )
        restored.load_payload(payload)
        new_clock.now = 5000.0 + 79.0
        assert restored.is_quarantined("k", "v")
        new_clock.now = 5000.0 + 81.0
        assert not restored.is_quarantined("k", "v")

    def test_malformed_payload_rejected(self):
        ledger, _ = make_ledger()
        with pytest.raises(StoreError):
            ledger.load_payload({"key": "not-an-object"})
        with pytest.raises(StoreError):
            ledger.load_payload({"key": {"kernel": "k"}})  # missing fields

    def test_clear(self):
        ledger, _ = make_ledger(threshold=1)
        ledger.note_fault("k", "v")
        ledger.clear()
        assert len(ledger) == 0
        assert not ledger.is_quarantined("k", "v")
