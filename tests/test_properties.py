"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.compiler.analyses.safe_point import lcm_of, safe_point_plan
from repro.config import ReproConfig
from repro.core.selection import SelectionRecord, VariantMeasurement
from repro.device.memory import CacheLevel, MemoryModel
from repro.harness.census import BUCKETS, bucket_of
from repro.harness.report import geomean
from repro.kernel import NDRange, WorkRange
from repro.kernel.buffers import Buffer
from repro.modes import OrchestrationFlow, ProfilingMode
from tests.conftest import make_axpy_variant

# ----------------------------------------------------------------------
# WorkRange
# ----------------------------------------------------------------------

ranges = st.tuples(
    st.integers(0, 10000), st.integers(0, 10000)
).map(lambda t: WorkRange(min(t), max(t)))


@given(ranges, st.integers(-100, 20000))
def test_workrange_take_partitions(rng, count):
    first, rest = rng.take(count)
    assert first.start == rng.start
    assert first.end == rest.start
    assert rest.end == rng.end
    assert len(first) + len(rest) == len(rng)
    assert len(first) <= max(count, 0)


@given(ranges, ranges)
def test_workrange_intersect_commutes_and_bounds(a, b):
    ab = a.intersect(b)
    ba = b.intersect(a)
    assert (ab.start, ab.end) == (ba.start, ba.end)
    assert len(ab) <= min(len(a), len(b))


# ----------------------------------------------------------------------
# NDRange
# ----------------------------------------------------------------------


@given(
    st.integers(1, 20), st.integers(1, 20), st.integers(1, 5),
    st.integers(0, 10**6),
)
def test_ndrange_roundtrip(gx, gy, gz, seed):
    nd = NDRange(groups=(gx, gy, gz))
    gid = seed % nd.total_groups
    assert nd.linear_id(*nd.group_coords(gid)) == gid


# ----------------------------------------------------------------------
# Variant geometry
# ----------------------------------------------------------------------


@given(st.integers(1, 64), st.integers(0, 5000))
def test_variant_units_partition_exactly(wa, units):
    variant = make_axpy_variant("v", wa_factor=wa)
    groups = variant.num_groups(units)
    covered = variant.units_for_groups(0, groups, units)
    assert covered.start == 0
    assert covered.end == units
    if units:
        assert (groups - 1) * wa < units <= groups * wa


@given(st.integers(1, 32), st.integers(1, 32), st.integers(1, 32))
def test_lcm_properties(a, b, c):
    result = lcm_of([a, b, c])
    for value in (a, b, c):
        assert result % value == 0
    assert result <= a * b * c


@given(
    st.lists(st.integers(1, 16), min_size=1, max_size=6),
    st.integers(2, 64),
)
def test_safe_point_fairness_invariant(factors, units_exp):
    """Every variant's profiled unit count is identical and aligned."""
    workload = 1 << units_exp
    variants = [
        make_axpy_variant(f"v{i}", wa_factor=f) for i, f in enumerate(factors)
    ]
    try:
        plan = safe_point_plan(variants, compute_units=4, workload_units=workload)
    except Exception:
        assume(False)
        return
    base = lcm_of(factors)
    assert plan.units_per_variant % base == 0 or plan.units_per_variant == workload
    assert plan.units_per_variant <= workload
    for variant in variants:
        groups = plan.groups_per_variant[variant.name]
        assert groups * variant.wa_factor >= plan.units_per_variant


# ----------------------------------------------------------------------
# Selection record: running minimum is a true minimum
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.1, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_selection_record_is_argmin(cycles):
    record = SelectionRecord(
        kernel="k", mode=ProfilingMode.FULLY, flow=OrchestrationFlow.SYNC
    )
    for index, value in enumerate(cycles):
        record.observe(
            VariantMeasurement(
                variant=f"v{index}",
                measured_cycles=value,
                profiled_units=4,
                productive=True,
            )
        )
    best_index = int(np.argmin(cycles))
    assert record.selected == f"v{best_index}"
    ranking = record.ranking()
    assert [m.measured_cycles for m in ranking] == sorted(
        m.measured_cycles for m in ranking
    )


# ----------------------------------------------------------------------
# Buffers: swap is involutive on contents
# ----------------------------------------------------------------------


@given(st.lists(st.floats(-1e6, 1e6, width=32), min_size=1, max_size=64))
def test_swap_installs_exact_contents(values):
    data = np.asarray(values, dtype=np.float32)
    final = Buffer("out", np.zeros_like(data))
    private = Buffer("priv", data.copy())
    final.swap_contents(private)
    assert np.array_equal(final.data, data)


# ----------------------------------------------------------------------
# Memory model: monotonicity invariants
# ----------------------------------------------------------------------


def _model():
    return MemoryModel(
        (
            CacheLevel("L1", 1 << 12, 64, 4.0, 32.0),
            CacheLevel("L2", 1 << 18, 64, 12.0, 16.0),
        ),
        CacheLevel("DRAM", float("inf"), 64, 200.0, 4.0),
    )


@given(
    st.lists(
        st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
        min_size=2,
        max_size=16,
    )
)
def test_gather_latency_monotone(working_sets):
    model = _model()
    ws = np.sort(np.asarray(working_sets))
    latency = model.gather_latency(ws)
    assert (np.diff(latency) >= -1e-9).all()


@given(
    st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
    st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
)
def test_stream_cycles_positive_and_monotone_in_bytes(useful, ws):
    model = _model()
    small = model.stream_cycles(np.array([useful]), np.array([ws]), 1e12)
    big = model.stream_cycles(np.array([useful * 2]), np.array([ws]), 1e12)
    assert float(small[0]) > 0
    assert float(big[0]) >= float(small[0])


@given(st.floats(min_value=1.0, max_value=1e10), st.floats(min_value=1.0, max_value=1e10))
def test_bandwidth_decreases_with_working_set(a, b):
    model = _model()
    lo, hi = sorted((a, b))
    assert float(model.stream_bandwidth(hi)) <= float(model.stream_bandwidth(lo))


# ----------------------------------------------------------------------
# Census / report helpers
# ----------------------------------------------------------------------


@given(st.integers(128, 10**6))
def test_bucket_of_is_floor_bucket(work_groups):
    bucket = bucket_of(work_groups)
    assert bucket in BUCKETS
    assert bucket <= work_groups
    larger = [b for b in BUCKETS if b > bucket]
    if larger and work_groups >= larger[0]:
        pytest.fail("bucket_of did not pick the tightest bucket")


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=10,
    )
)
def test_geomean_bounds(values):
    mean = geomean(values)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


# ----------------------------------------------------------------------
# Config RNG determinism
# ----------------------------------------------------------------------


@given(st.integers(0, 2**31), st.text(max_size=20))
def test_rng_streams_reproducible(seed, label):
    config = ReproConfig(seed=seed)
    a = config.rng("stream", label).standard_normal(4)
    b = ReproConfig(seed=seed).rng("stream", label).standard_normal(4)
    assert (a == b).all()
