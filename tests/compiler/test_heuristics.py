"""Unit tests for the static-selection baseline heuristics."""

import numpy as np
import pytest

from repro.compiler.heuristics import (
    GpuGeneration,
    intel_vector_width,
    jang_placement,
    lc_select_schedule,
    porple_placement,
)
from repro.errors import AnalysisError
from repro.kernel import (
    AccessPattern,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from repro.kernel.buffers import Buffer, MemorySpace


class TestIntelWidth:
    def test_regular_kernel_gets_4way(self):
        ir = KernelIR(divergence=0.0)
        assert intel_vector_width(ir) == 4

    def test_divergent_kernel_gets_8way(self):
        ir = KernelIR(divergence=0.3)
        assert intel_vector_width(ir) == 8


class TestLcSelect:
    def test_requires_candidates(self):
        with pytest.raises(AnalysisError):
            lc_select_schedule([])

    def test_picks_spmv_dfo(self):
        """The documented pick: DFO for spmv, right on random inputs,
        wrong on the diagonal matrix (Fig 8)."""
        from repro.compiler.transforms.schedule import reorder_loops
        from repro.workloads.spmv_csr import scalar_variant

        base = scalar_variant("cpu")
        family = [
            (("wi_r", "nnz"), reorder_loops(base, ("wi_r", "nnz"), label="DFO")),
            (("nnz", "wi_r"), reorder_loops(base, ("nnz", "wi_r"), label="BFO")),
        ]
        assert lc_select_schedule(family).name.endswith("DFO")


def _gather_ir(buffers):
    """Scalar-spmv-shaped IR: streams + one gather."""
    return KernelIR(
        loops=(Loop("k", LoopBound(static_trips=8)),),
        accesses=(
            MemoryAccess("val", False, AccessPattern.UNIT_STRIDE, 4.0, loop="k"),
            MemoryAccess("col", False, AccessPattern.UNIT_STRIDE, 4.0, loop="k"),
            MemoryAccess("x", False, AccessPattern.GATHER, 4.0, loop="k"),
            MemoryAccess("y", True, AccessPattern.COALESCED, 4.0, loop="k"),
        ),
    )


def _buffers(x_kb=16):
    return {
        "val": Buffer("val", np.zeros(100000, dtype=np.float32), writable=False),
        "col": Buffer("col", np.zeros(100000, dtype=np.int32), writable=False),
        "x": Buffer("x", np.zeros(x_kb * 256, dtype=np.float32), writable=False),
    }


class TestPorple:
    def test_fermi_model_texture_for_gather_only(self):
        policy = porple_placement(_gather_ir(None), _buffers(), GpuGeneration.FERMI)
        assert policy["x"] is MemorySpace.TEXTURE
        assert policy["val"] is MemorySpace.GLOBAL

    def test_kepler_model_overuses_texture(self):
        policy = porple_placement(_gather_ir(None), _buffers(), GpuGeneration.KEPLER)
        assert policy["x"] is MemorySpace.TEXTURE
        assert policy["val"] is MemorySpace.TEXTURE  # the 1.29x mistake

    def test_maxwell_model_stays_global(self):
        policy = porple_placement(_gather_ir(None), _buffers(), GpuGeneration.MAXWELL)
        assert policy["x"] is MemorySpace.GLOBAL
        assert policy["val"] is MemorySpace.GLOBAL

    def test_written_buffers_stay_global(self):
        buffers = _buffers()
        buffers["y"] = Buffer("y", np.zeros(64, dtype=np.float32))
        policy = porple_placement(_gather_ir(None), buffers, GpuGeneration.KEPLER)
        assert policy["y"] is MemorySpace.GLOBAL

    def test_constant_capacity_respected(self):
        big = _buffers(x_kb=256)  # 256 KB > 64 KB constant capacity
        policy = porple_placement(_gather_ir(None), big, GpuGeneration.FERMI)
        assert policy["x"] is not MemorySpace.CONSTANT


class TestJang:
    def test_small_gather_goes_constant(self):
        """The documented pitfall: x (<=64KB) lands on the constant bank."""
        policy = jang_placement(_gather_ir(None), _buffers(x_kb=16))
        assert policy["x"] is MemorySpace.CONSTANT

    def test_large_gather_goes_texture(self):
        policy = jang_placement(_gather_ir(None), _buffers(x_kb=128))
        assert policy["x"] is MemorySpace.TEXTURE

    def test_streams_stay_global(self):
        policy = jang_placement(_gather_ir(None), _buffers())
        assert policy["val"] is MemorySpace.GLOBAL

    def test_broadcast_goes_constant(self):
        ir = KernelIR(
            loops=(Loop("k", LoopBound(static_trips=8)),),
            accesses=(
                MemoryAccess("c", False, AccessPattern.BROADCAST, 4.0, loop="k"),
            ),
        )
        buffers = {"c": Buffer("c", np.zeros(16, dtype=np.float32), writable=False)}
        assert jang_placement(ir, buffers)["c"] is MemorySpace.CONSTANT
