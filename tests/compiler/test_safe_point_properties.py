"""Property tests for safe point analysis (paper §3.4).

The guarantees under test are the ones the rest of the runtime leans on:

* *fairness* — the profiling slice is an exact multiple of every
  variant's work assignment factor, so each variant profiles the same
  number of workload units with whole work-groups;
* *clamping* — even K fully-productive slices never exceed the allowed
  workload fraction (when a fair slice fits it at all), and a slice never
  exceeds the workload;
* *degeneracy* — pools/workloads that cannot host a fair slice raise
  :class:`AnalysisError` instead of silently mis-sizing.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.compiler.analyses.safe_point import lcm_of, safe_point_plan
from repro.errors import AnalysisError
from tests.conftest import make_axpy_variant

#: Work assignment factors as coarsening/tiling produce them: small
#: positive integers, frequently powers of two, occasionally odd.
wa_factors = st.lists(
    st.integers(min_value=1, max_value=64), min_size=1, max_size=6
)


def make_pool_variants(factors):
    return [
        make_axpy_variant(f"v{i}", wa_factor=f)
        for i, f in enumerate(factors)
    ]


class TestLcmProperties:
    @given(values=wa_factors)
    def test_lcm_is_a_common_multiple(self, values):
        result = lcm_of(values)
        assert all(result % v == 0 for v in values)

    @given(values=wa_factors)
    def test_lcm_matches_stdlib(self, values):
        assert lcm_of(values) == math.lcm(*values)

    @given(values=wa_factors)
    def test_lcm_divides_product(self, values):
        product = math.prod(values)
        assert product % lcm_of(values) == 0

    def test_empty_input_raises(self):
        with pytest.raises(AnalysisError, match="at least one"):
            lcm_of([])

    @given(bad=st.integers(max_value=0))
    def test_nonpositive_values_raise(self, bad):
        with pytest.raises(AnalysisError, match="positive"):
            lcm_of([2, bad, 4])


class TestSafePointProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        factors=wa_factors,
        compute_units=st.integers(min_value=1, max_value=128),
        workload_scale=st.integers(min_value=2, max_value=64),
        multiplier=st.integers(min_value=1, max_value=4),
    )
    def test_slice_is_exact_multiple_of_every_factor(
        self, factors, compute_units, workload_scale, multiplier
    ):
        variants = make_pool_variants(factors)
        # Workload large enough that a fair slice always fits.
        workload = lcm_of(factors) * len(factors) * workload_scale * 2
        plan = safe_point_plan(
            variants,
            compute_units=compute_units,
            workload_units=workload,
            multiplier=multiplier,
        )
        for factor in factors:
            assert plan.units_per_variant % factor == 0
        # Group counts are whole by the same token.
        for variant in variants:
            groups = plan.groups_per_variant[variant.name]
            assert groups * variant.wa_factor == plan.units_per_variant

    @settings(max_examples=200, deadline=None)
    @given(
        factors=wa_factors,
        compute_units=st.integers(min_value=1, max_value=128),
        workload=st.integers(min_value=1, max_value=1 << 16),
        fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_clamping_respects_workload_fraction(
        self, factors, compute_units, workload, fraction
    ):
        variants = make_pool_variants(factors)
        base = lcm_of(factors)
        try:
            plan = safe_point_plan(
                variants,
                compute_units=compute_units,
                workload_units=workload,
                max_workload_fraction=fraction,
            )
        except AnalysisError:
            # Legal only when no fair slice fits this workload at all.
            assert base > workload
            return
        units = plan.units_per_variant
        assert base <= units <= workload
        budget = int(workload * fraction) // len(factors)
        if budget >= base:
            # All K fully-productive slices fit the allowed fraction.
            assert units * len(factors) <= workload * fraction
        else:
            # Degenerate small launch: at most one LCM block.
            assert units == base

    @settings(max_examples=100, deadline=None)
    @given(
        factors=st.lists(
            st.integers(min_value=2, max_value=64), min_size=2, max_size=6
        ),
        workload=st.integers(min_value=1, max_value=8),
    )
    def test_infeasible_workloads_always_raise(self, factors, workload):
        variants = make_pool_variants(factors)
        assume(lcm_of(factors) > workload)
        with pytest.raises(AnalysisError, match="cannot host"):
            safe_point_plan(
                variants, compute_units=4, workload_units=workload
            )

    def test_empty_pool_raises(self):
        with pytest.raises(AnalysisError, match="non-empty"):
            safe_point_plan([], compute_units=1, workload_units=100)

    def test_bad_compute_units_raise(self):
        with pytest.raises(AnalysisError, match="compute_units"):
            safe_point_plan(
                make_pool_variants([1]),
                compute_units=0,
                workload_units=100,
            )

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_bad_fraction_raises(self, fraction):
        with pytest.raises(AnalysisError, match="max_workload_fraction"):
            safe_point_plan(
                make_pool_variants([1]),
                compute_units=1,
                workload_units=100,
                max_workload_fraction=fraction,
            )
