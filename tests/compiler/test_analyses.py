"""Unit tests for uniform-workload, side-effect, and access analyses."""

import numpy as np
import pytest

from repro.compiler.analyses.access import (
    classify_access,
    innermost_stride,
    schedule_locality_cost,
)
from repro.compiler.analyses.side_effect import analyze_side_effects
from repro.compiler.analyses.uniform import analyze_uniformity
from repro.errors import AnalysisError
from repro.kernel import (
    AccessPattern,
    AtomicKind,
    GATHER_STRIDE,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)


def static_ir(**overrides):
    defaults = dict(
        loops=(Loop("a", LoopBound(static_trips=4)),),
        accesses=(),
    )
    defaults.update(overrides)
    return KernelIR(**defaults)


class TestUniformity:
    def test_static_bounds_are_uniform(self):
        report = analyze_uniformity([("v", static_ir())])
        assert report.uniform
        assert report.reasons == ()

    def test_data_dependent_bound_flags(self):
        ir = static_ir(
            loops=(
                Loop(
                    "d",
                    LoopBound(
                        evaluator=lambda a, i: np.ones(len(i)),
                        description="row length",
                    ),
                ),
            )
        )
        report = analyze_uniformity([("v", ir)])
        assert not report.uniform
        assert "data-dependent" in report.reasons[0]
        assert "row length" in report.reasons[0]

    def test_early_exit_flags(self):
        ir = static_ir(
            loops=(Loop("e", LoopBound(static_trips=4), has_early_exit=True),)
        )
        report = analyze_uniformity([("v", ir)])
        assert not report.uniform
        assert "early" in report.reasons[0]

    def test_one_bad_variant_taints_pool(self):
        good = static_ir()
        bad = static_ir(
            loops=(Loop("d", LoopBound(evaluator=lambda a, i: np.ones(len(i)))),)
        )
        report = analyze_uniformity([("good", good), ("bad", bad)])
        assert not report.uniform
        assert all("bad" in reason for reason in report.reasons)

    def test_conservatism_documented_case(self):
        """A data-dependent bound flags non-uniform even if the data is
        actually uniform (the paper's uniform-CSR example)."""
        ir = static_ir(
            loops=(
                Loop(
                    "nnz",
                    # Returns a constant — uniform in practice.
                    LoopBound(evaluator=lambda a, i: np.full(len(i), 7.0)),
                ),
            )
        )
        assert not analyze_uniformity([("spmv", ir)]).uniform


class TestSideEffects:
    def test_clean_kernel(self):
        report = analyze_side_effects([("v", static_ir())])
        assert not report.requires_swap

    def test_global_atomic_forces_swap(self):
        ir = static_ir(
            accesses=(
                MemoryAccess(
                    "h",
                    True,
                    AccessPattern.GATHER,
                    4.0,
                    atomic=AtomicKind.GLOBAL,
                ),
            )
        )
        report = analyze_side_effects([("v", ir)])
        assert report.requires_swap
        assert "atomic" in report.reasons[0]

    def test_local_atomic_does_not(self):
        ir = static_ir(
            accesses=(
                MemoryAccess(
                    "h",
                    True,
                    AccessPattern.GATHER,
                    4.0,
                    atomic=AtomicKind.LOCAL,
                ),
            )
        )
        assert not analyze_side_effects([("v", ir)]).requires_swap

    def test_overlapping_output_forces_swap(self):
        assert analyze_side_effects(
            [("v", static_ir(output_ranges_overlap=True))]
        ).requires_swap

    def test_varying_output_forces_swap(self):
        assert analyze_side_effects(
            [("v", static_ir(output_range_varies=True))]
        ).requires_swap


class TestClassifyAccess:
    STRIDES = {"i": 4096, "j": 0, "k": 4}

    def test_innermost_decides(self):
        assert classify_access(self.STRIDES, ("i", "j", "k")) == (
            AccessPattern.UNIT_STRIDE,
            0,
        )
        assert classify_access(self.STRIDES, ("k", "j", "i")) == (
            AccessPattern.STRIDED,
            4096,
        )

    def test_zero_innermost_is_broadcast(self):
        assert classify_access(self.STRIDES, ("i", "k", "j"))[0] is (
            AccessPattern.BROADCAST
        )

    def test_gather_sentinel(self):
        strides = {"i": GATHER_STRIDE}
        assert classify_access(strides, ("i",))[0] is AccessPattern.GATHER

    def test_empty_order_rejected(self):
        with pytest.raises(AnalysisError):
            classify_access({}, ())

    def test_innermost_stride_values(self):
        assert innermost_stride({"k": 4}, ("k",)) == 4.0
        assert innermost_stride({"k": GATHER_STRIDE}, ("k",)) == 64.0
        assert innermost_stride({"k": 0}, ("k",)) == 0.0
        assert innermost_stride({"k": 512}, ("k",)) == 512.0


class TestLocalityCost:
    def _access(self, strides, scope):
        return MemoryAccess(
            "x",
            False,
            AccessPattern.UNIT_STRIDE,
            4.0,
            scope=scope,
            strides_by_loop=tuple(strides.items()),
        )

    def test_prefers_unit_stride_innermost(self):
        access = self._access({"i": 4096, "k": 4}, ("i", "k"))
        trips = {"i": 16, "k": 100}
        good = schedule_locality_cost([access], ("i", "k"), trips)
        bad = schedule_locality_cost([access], ("k", "i"), trips)
        assert good < bad

    def test_dynamic_trips_assumed(self):
        """Unknown bounds get the fixed guess — the LC blind spot."""
        access = self._access({"i": GATHER_STRIDE, "k": 4}, ("i", "k"))
        trips = {"i": 4, "k": None}
        cost = schedule_locality_cost([access], ("i", "k"), trips)
        from repro.compiler.analyses.access import ASSUMED_DYNAMIC_TRIPS

        assert cost == pytest.approx(4.0 * 4 * ASSUMED_DYNAMIC_TRIPS)

    def test_accesses_without_metadata_ignored(self):
        plain = MemoryAccess("x", False, AccessPattern.GATHER, 4.0)
        assert schedule_locality_cost([plain], ("i",), {"i": 4}) == 0.0
