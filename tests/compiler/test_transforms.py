"""Unit tests for the compile-time transforms."""

import numpy as np
import pytest

from repro.compiler.transforms import (
    add_prefetch,
    coarsen,
    enumerate_schedules,
    place,
    reorder_loops,
    tile_scratchpad,
    unroll,
    vectorize,
)
from repro.compiler.transforms.vectorize import auto_vectorize
from repro.errors import TransformError
from repro.kernel import (
    AccessPattern,
    GATHER_STRIDE,
    KernelIR,
    KernelVariant,
    Loop,
    LoopBound,
    MemoryAccess,
)
from repro.kernel.buffers import MemorySpace
from tests.conftest import make_axpy_variant


def scheduled_variant():
    """A 2-loop variant with stride metadata for schedule tests."""
    ir = KernelIR(
        loops=(
            Loop("wi", LoopBound(static_trips=8), is_work_item_loop=True),
            Loop("k", LoopBound(static_trips=32)),
        ),
        accesses=(
            MemoryAccess(
                "x",
                False,
                AccessPattern.UNIT_STRIDE,
                4.0,
                loop="k",
                scope=("wi", "k"),
                strides_by_loop=(("wi", 1024), ("k", 4)),
            ),
            MemoryAccess(
                "y",
                True,
                AccessPattern.UNIT_STRIDE,
                4.0,
                loop="wi",
                scope=("wi",),
                strides_by_loop=(("wi", 4), ("k", 0)),
            ),
        ),
        flops_per_trip=2.0,
    )
    return KernelVariant("base", ir, lambda a, s, e: None)


class TestSchedule:
    def test_reorder_re_derives_patterns(self):
        variant = scheduled_variant()
        swapped = reorder_loops(variant, ("k", "wi"), label="BFO")
        x_access = swapped.ir.accesses[0]
        assert x_access.pattern is AccessPattern.STRIDED
        assert x_access.stride_bytes == 1024
        assert [l.name for l in swapped.ir.loops] == ["k", "wi"]
        assert swapped.name == "base,BFO"

    def test_reorder_preserves_hoisted_counts(self):
        variant = scheduled_variant()
        swapped = reorder_loops(variant, ("k", "wi"))
        y_access = swapped.ir.accesses[1]
        ids = np.arange(2)
        # y executes once per wi regardless of order (accumulator write).
        assert list(swapped.ir.access_trips(y_access, {}, ids)) == [8.0, 8.0]

    def test_hoisting_drops_invariant_inner_loops(self):
        variant = scheduled_variant()
        # Order with k outer: y's zero-stride k loop is not in scope anyway,
        # but x under (wi, k) keeps both.
        same = reorder_loops(variant, ("wi", "k"))
        x_access = same.ir.accesses[0]
        assert x_access.scope == ("wi", "k")

    def test_invalid_order_rejected(self):
        with pytest.raises(TransformError):
            reorder_loops(scheduled_variant(), ("wi",))
        with pytest.raises(TransformError):
            reorder_loops(scheduled_variant(), ("wi", "nope"))

    def test_enumerate_schedules_full_family(self):
        family = list(enumerate_schedules(scheduled_variant()))
        assert len(family) == 2
        names = {variant.name for _, variant in family}
        assert len(names) == 2  # unique names


class TestVectorize:
    def test_sets_width(self):
        variant = vectorize(make_axpy_variant("v"), 8)
        assert variant.ir.vector_width == 8
        assert variant.name.endswith("8-way")

    def test_scalar_label(self):
        assert vectorize(make_axpy_variant("v"), 1).name.endswith("scalar")

    def test_invalid_width(self):
        with pytest.raises(TransformError):
            vectorize(make_axpy_variant("v"), 0)
        with pytest.raises(TransformError):
            vectorize(make_axpy_variant("v"), 3)

    def test_auto_vectorize_unit_stride_body(self):
        variant = scheduled_variant()  # innermost k has stride 4
        assert auto_vectorize(variant).ir.vector_width == 8

    def test_auto_vectorize_rejects_strided_body(self):
        variant = reorder_loops(scheduled_variant(), ("k", "wi"))
        # innermost wi strides x by 1024: not vectorizable.
        assert auto_vectorize(variant).ir.vector_width == 1


class TestCoarsen:
    def test_multiplies_wa_factor(self):
        variant = coarsen(make_axpy_variant("v", wa_factor=2), 4)
        assert variant.wa_factor == 8

    def test_scales_traffic_and_flops(self):
        base = make_axpy_variant("v")
        variant = coarsen(base, 2, flops_scale=0.5, bytes_scale={"x": 0.25})
        assert variant.ir.flops_per_trip == base.ir.flops_per_trip * 0.5
        x = [a for a in variant.ir.accesses if a.buffer == "x"][0]
        x0 = [a for a in base.ir.accesses if a.buffer == "x"][0]
        assert x.bytes_per_trip == pytest.approx(0.25 * x0.bytes_per_trip)

    def test_invalid_inputs(self):
        with pytest.raises(TransformError):
            coarsen(make_axpy_variant("v"), 0)
        with pytest.raises(TransformError):
            coarsen(make_axpy_variant("v"), 2, flops_scale=0.0)
        with pytest.raises(TransformError):
            coarsen(make_axpy_variant("v"), 2, bytes_scale={"x": -1.0})


class TestTile:
    def test_records_scratchpad_and_barrier(self):
        variant = tile_scratchpad(
            make_axpy_variant("v"), 2048, {"x": 0.25}, wa_factor_scale=4
        )
        assert variant.ir.scratchpad_bytes == 2048
        assert variant.ir.uses_barrier
        assert variant.wa_factor == 4

    def test_unknown_buffer_rejected(self):
        with pytest.raises(TransformError, match="no access touches"):
            tile_scratchpad(make_axpy_variant("v"), 64, {"zzz": 0.5})

    def test_requires_positive_scratchpad(self):
        with pytest.raises(TransformError):
            tile_scratchpad(make_axpy_variant("v"), 0, {"x": 0.5})


class TestUnrollPrefetch:
    def test_unroll_multiplies(self):
        variant = unroll(unroll(make_axpy_variant("v"), 2), 2)
        assert variant.ir.unroll_factor == 4

    def test_unroll_needs_loop(self):
        import dataclasses

        base = make_axpy_variant("v")
        no_loops = dataclasses.replace(
            base, ir=base.ir.with_(loops=(), accesses=())
        )
        with pytest.raises(TransformError):
            unroll(no_loops, 2)

    def test_prefetch_flags_and_costs(self):
        base = make_axpy_variant("v")
        variant = add_prefetch(base)
        assert variant.ir.prefetch
        assert variant.ir.flops_per_trip > base.ir.flops_per_trip


class TestPlacement:
    def test_records_placement(self):
        variant = place(make_axpy_variant("v"), {"x": MemorySpace.TEXTURE})
        assert ("x", "texture") in variant.ir.placements

    def test_written_buffer_cannot_go_readonly(self):
        with pytest.raises(TransformError, match="written"):
            place(make_axpy_variant("v"), {"y": MemorySpace.TEXTURE})

    def test_untouched_buffer_rejected(self):
        with pytest.raises(TransformError):
            place(make_axpy_variant("v"), {"zzz": MemorySpace.TEXTURE})

    def test_placements_merge(self):
        variant = place(
            place(make_axpy_variant("v"), {"x": MemorySpace.TEXTURE}),
            {"x": MemorySpace.CONSTANT},
        )
        assert dict(variant.ir.placements)["x"] == "constant"

    def test_empty_rejected(self):
        with pytest.raises(TransformError):
            place(make_axpy_variant("v"), {})
