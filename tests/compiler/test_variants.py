"""Unit tests for variant pools and the mode recommendation."""

import numpy as np
import pytest

from repro.compiler.variants import VariantPool, recommend_mode
from repro.errors import RegistrationError
from repro.kernel import (
    AccessPattern,
    AtomicKind,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from repro.modes import ProfilingMode
from tests.conftest import make_axpy_variant


def variant_with_ir(name, **ir_overrides):
    import dataclasses

    base = make_axpy_variant(name)
    return dataclasses.replace(base, ir=base.ir.with_(**ir_overrides))


class TestRecommendMode:
    def test_regular_pool_fully(self, fast_slow_pool):
        assert recommend_mode(fast_slow_pool.variants) is ProfilingMode.FULLY

    def test_irregular_pool_hybrid(self):
        dyn = variant_with_ir(
            "dyn",
            loops=(
                Loop("d", LoopBound(evaluator=lambda a, i: np.ones(len(i)))),
            ),
            accesses=(),
        )
        assert recommend_mode([dyn]) is ProfilingMode.HYBRID

    def test_atomics_pool_swap(self):
        atomic = variant_with_ir(
            "a",
            accesses=(
                MemoryAccess(
                    "y",
                    True,
                    AccessPattern.GATHER,
                    4.0,
                    atomic=AtomicKind.GLOBAL,
                ),
            ),
        )
        assert recommend_mode([atomic]) is ProfilingMode.SWAP

    def test_swap_beats_hybrid(self):
        """Side effects dominate irregularity in the mode lattice."""
        both = variant_with_ir(
            "b",
            loops=(
                Loop("d", LoopBound(evaluator=lambda a, i: np.ones(len(i)))),
            ),
            accesses=(
                MemoryAccess(
                    "y",
                    True,
                    AccessPattern.GATHER,
                    4.0,
                    atomic=AtomicKind.GLOBAL,
                ),
            ),
        )
        assert recommend_mode([both]) is ProfilingMode.SWAP


class TestVariantPool:
    def test_defaults(self, fast_slow_pool):
        assert fast_slow_pool.mode is ProfilingMode.FULLY
        assert fast_slow_pool.initial_default == "fast"
        assert fast_slow_pool.variant_names == ("fast", "slow")

    def test_lookup(self, fast_slow_pool):
        assert fast_slow_pool.variant("slow").name == "slow"
        with pytest.raises(RegistrationError):
            fast_slow_pool.variant("missing")

    def test_empty_pool_rejected(self, axpy_spec):
        with pytest.raises(RegistrationError):
            VariantPool(spec=axpy_spec, variants=())

    def test_duplicate_names_rejected(self, axpy_spec):
        with pytest.raises(RegistrationError, match="duplicate"):
            VariantPool(
                spec=axpy_spec,
                variants=(make_axpy_variant("v"), make_axpy_variant("v")),
            )

    def test_unknown_default_rejected(self, axpy_spec):
        with pytest.raises(RegistrationError):
            VariantPool(
                spec=axpy_spec,
                variants=(make_axpy_variant("v"),),
                initial_default="nope",
            )

    def test_with_initial_default(self, fast_slow_pool):
        changed = fast_slow_pool.with_initial_default("slow")
        assert changed.initial_default == "slow"
        assert fast_slow_pool.initial_default == "fast"
