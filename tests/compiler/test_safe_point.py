"""Unit tests for safe point analysis (paper §3.4)."""

import pytest

from repro.compiler.analyses.safe_point import (
    SafePointPlan,
    lcm_of,
    safe_point_plan,
)
from repro.errors import AnalysisError
from tests.conftest import make_axpy_variant


class TestLcm:
    def test_basic(self):
        assert lcm_of([2, 3]) == 6
        assert lcm_of([4, 6]) == 12
        assert lcm_of([1]) == 1
        assert lcm_of([16, 4, 1]) == 16

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(AnalysisError):
            lcm_of([])
        with pytest.raises(AnalysisError):
            lcm_of([0, 2])


class TestPlan:
    def _variants(self, *factors):
        return [
            make_axpy_variant(f"v{i}", wa_factor=f)
            for i, f in enumerate(factors)
        ]

    def test_equal_units_across_variants(self):
        variants = self._variants(1, 2, 3)
        plan = safe_point_plan(variants, compute_units=4, workload_units=10000)
        assert plan.units_per_variant % 6 == 0  # LCM alignment
        for variant in variants:
            groups = plan.groups_per_variant[variant.name]
            assert groups * variant.wa_factor >= plan.units_per_variant
            # Fair comparison: every variant covers the same units.
            assert groups == plan.units_per_variant // variant.wa_factor

    def test_fills_device_for_coarsest_variant(self):
        variants = self._variants(1, 16)
        plan = safe_point_plan(variants, compute_units=13, workload_units=100000)
        coarse_groups = plan.groups_per_variant["v1"]
        assert coarse_groups >= 13

    def test_multiplier_scales(self):
        variants = self._variants(1, 2)
        base = safe_point_plan(variants, compute_units=4, workload_units=100000)
        scaled = safe_point_plan(
            variants, compute_units=4, workload_units=100000, multiplier=3
        )
        assert scaled.units_per_variant == 3 * base.units_per_variant

    def test_clamped_to_workload_fraction(self):
        variants = self._variants(1, 2)
        plan = safe_point_plan(variants, compute_units=64, workload_units=100)
        # Both fully-productive slices fit in half the workload.
        assert plan.units_per_variant * len(variants) <= 100

    def test_degenerate_tiny_workload(self):
        variants = self._variants(4)
        plan = safe_point_plan(variants, compute_units=4, workload_units=5)
        assert plan.units_per_variant <= 5

    def test_impossible_workload_raises(self):
        variants = self._variants(8)
        with pytest.raises(AnalysisError):
            safe_point_plan(variants, compute_units=4, workload_units=0)

    def test_empty_pool_raises(self):
        with pytest.raises(AnalysisError):
            safe_point_plan([], compute_units=4, workload_units=100)

    def test_total_profile_units(self):
        plan = SafePointPlan(units_per_variant=8, groups_per_variant={"a": 8})
        assert plan.total_profile_units(3) == 24
