"""Unit tests for report formatting."""

import pytest

from repro.harness.report import RelativeBar, format_figure, format_table, geomean


class TestGeomean:
    def test_values(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([3.0]) == 3.0

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestFormatFigure:
    def test_grid_layout(self):
        bars = [
            RelativeBar("a", "Oracle", 1.0),
            RelativeBar("a", "Worst", 3.5),
            RelativeBar("b", "Oracle", 1.0),
        ]
        text = format_figure("My Figure", bars)
        assert "My Figure" in text
        assert "Oracle" in text and "Worst" in text
        assert "3.50" in text
        # Missing cell renders as '-'.
        assert "-" in text.splitlines()[-1]

    def test_preserves_insertion_order(self):
        bars = [
            RelativeBar("z-last", "S", 1.0),
            RelativeBar("a-first", "S", 1.0),
        ]
        text = format_figure("t", bars)
        assert text.index("z-last") < text.index("a-first")


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            "T", ("col1", "column2"), [("a", 1), ("bbbb", 22)]
        )
        lines = text.splitlines()
        assert "col1" in lines[3]
        assert any("bbbb" in line for line in lines)
