"""Quick-mode runs of every experiment: shape assertions per figure.

These are the repository's end-to-end reproduction checks: each paper
table/figure regenerates (at reduced input sizes) and its qualitative
claims hold.  The full-size numbers live in EXPERIMENTS.md and the
benchmarks.
"""

import pytest

from repro.config import ReproConfig
from repro.harness.experiments import (
    fig1,
    fig2,
    fig9,
    fig11,
    table1,
)


@pytest.fixture(scope="module")
def config():
    return ReproConfig()


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig1.run(config, quick=True)

    def test_heuristic_is_suboptimal_on_both(self, result):
        for group in ("sgemm", "spmv-jds"):
            assert result.data[group]["best_speedup_over_heuristic"] > 1.0

    def test_sgemm_wants_wider_than_heuristic(self, result):
        assert result.data["sgemm"]["heuristic_width"] == 4
        assert result.data["sgemm"]["best"] == "8-way"

    def test_spmv_wants_narrower_than_heuristic(self, result):
        assert result.data["spmv-jds"]["heuristic_width"] == 8
        assert result.data["spmv-jds"]["best"] != "8-way"

    def test_report_renders(self, result):
        assert "Figure 1" in result.text


class TestFig2:
    def test_mass_in_paper_range(self, config):
        result = fig2.run(config)
        counts = result.data["counts"]
        assert sum(counts.values()) > 1000
        assert result.data["dropped_small_launches"] < 0.1 * sum(counts.values())


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, config):
        return table1.run(config, quick=True)

    def test_productive_slices(self, result):
        k = result.data["fully"]["k"]
        assert result.data["fully"]["productive_slices"] == k
        assert result.data["hybrid"]["productive_slices"] == 1
        assert result.data["swap"]["productive_slices"] == 1

    def test_extra_space(self, result):
        k = result.data["fully"]["k"]
        assert result.data["fully"]["extra_copies"] == 0
        assert result.data["hybrid"]["extra_copies"] == k - 1
        assert result.data["swap"]["extra_copies"] == k

    def test_async_support(self, result):
        assert result.data["fully"]["async_support"]
        assert result.data["hybrid"]["async_support"]
        assert not result.data["swap"]["async_support"]


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig9.run(config, quick=True)

    def test_dysel_near_oracle(self, result):
        for group in ("spmv-csr", "particle filter"):
            assert result.bar(group, "Sync") < 1.15
            assert result.data[group]["all_valid"]

    def test_spmv_baseline_ordering(self, result):
        """PORPLE beats the rule heuristic; both lose to DySel."""
        porple = result.bar("spmv-csr", "PORPLE")
        jang = result.bar("spmv-csr", "Heuristic-based")
        sync = result.bar("spmv-csr", "Sync")
        assert sync < porple < jang

    def test_fermi_policy_is_oracle(self, result):
        assert "porple-fermi" in result.data["spmv-csr"]["oracle_variant"]


class TestFig11:
    @pytest.fixture(scope="class")
    def results(self, config):
        return fig11.run(config, quick=True)

    def test_winner_flips_with_input_gpu(self, results):
        gpu = results["gpu"]
        assert gpu.data["random matrix"]["oracle_variant"] == "vector"
        assert gpu.data["diagonal matrix"]["oracle_variant"] == "scalar"

    def test_dysel_follows_the_input(self, results):
        for device in ("cpu", "gpu"):
            panel = results[device]
            for group in ("random matrix", "diagonal matrix"):
                assert (
                    panel.data[group]["dysel_selected"]
                    == panel.data[group]["oracle_variant"]
                )
                assert panel.bar(group, "Sync") < 1.1

    def test_worst_recovery_magnitude(self, results):
        gpu = results["gpu"]
        assert gpu.bar("diagonal matrix", "Worst") > 5.0
        assert gpu.bar("random matrix", "Worst") > 1.5
