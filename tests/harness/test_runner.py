"""Unit tests for the experiment runner."""

import pytest

from repro.harness.runner import (
    CaseEvaluation,
    evaluate_case,
    run_dysel,
    run_pure,
)
from repro.errors import HarnessError
from repro.modes import OrchestrationFlow
from repro.workloads.base import BenchmarkCase
from tests.conftest import make_axpy_args, axpy_output_ok


@pytest.fixture
def case(fast_slow_pool, config):
    return BenchmarkCase(
        name="axpy/test",
        pool=fast_slow_pool,
        make_args=lambda: make_axpy_args(512, config),
        workload_units=512,
        check=axpy_output_ok,
    )


class TestRunPure:
    def test_times_and_validates(self, case, cpu, config):
        result = run_pure(case, cpu, "fast", config)
        assert result.valid
        assert result.elapsed_cycles > 0
        assert result.strategy == "pure:fast"

    def test_ordering_matches_construction(self, case, cpu, config):
        fast = run_pure(case, cpu, "fast", config)
        slow = run_pure(case, cpu, "slow", config)
        assert fast.elapsed_cycles < slow.elapsed_cycles

    def test_iterations_scale_time(self, fast_slow_pool, cpu, config):
        single = BenchmarkCase(
            name="one",
            pool=fast_slow_pool,
            make_args=lambda: make_axpy_args(512, config),
            workload_units=512,
        )
        triple = BenchmarkCase(
            name="three",
            pool=fast_slow_pool,
            make_args=lambda: make_axpy_args(512, config),
            workload_units=512,
            iterations=3,
        )
        t1 = run_pure(single, cpu, "fast", config).elapsed_cycles
        t3 = run_pure(triple, cpu, "fast", config).elapsed_cycles
        assert t3 == pytest.approx(3 * t1, rel=0.1)


class TestRunDysel:
    def test_profiles_once_by_default(self, fast_slow_pool, cpu, config):
        iterative = BenchmarkCase(
            name="it",
            pool=fast_slow_pool,
            make_args=lambda: make_axpy_args(512, config),
            workload_units=512,
            iterations=4,
            check=axpy_output_ok,
        )
        result = run_dysel(iterative, cpu, config=config)
        assert result.profiled_launches == 1
        assert result.valid

    def test_profile_every_iteration(self, fast_slow_pool, cpu, config):
        iterative = BenchmarkCase(
            name="it",
            pool=fast_slow_pool,
            make_args=lambda: make_axpy_args(512, config),
            workload_units=512,
            iterations=4,
        )
        result = run_dysel(
            iterative, cpu, profile_every_iteration=True, config=config
        )
        assert result.profiled_launches == 4


class TestEvaluateCase:
    def test_standard_comparison(self, case, cpu, config):
        evaluation = evaluate_case(case, cpu, config)
        assert evaluation.oracle.selected == "fast"
        assert evaluation.worst.selected == "slow"
        assert set(evaluation.dysel) == {"sync", "async-best", "async-worst"}
        assert evaluation.all_valid()
        for result in evaluation.dysel.values():
            assert evaluation.relative(result) < 1.5

    def test_relative_requires_positive_oracle(self, case, cpu, config):
        evaluation = CaseEvaluation(case="empty")
        with pytest.raises(HarnessError):
            _ = evaluation.oracle

    def test_unknown_flow_label(self, case, cpu, config):
        with pytest.raises(HarnessError):
            evaluate_case(case, cpu, config, dysel_flows=("warp-speed",))
