"""Unit tests for the Fig 2 launch census."""

from repro.harness.census import (
    BUCKETS,
    bucket_of,
    collect_census,
    suite_entries,
)


class TestCensus:
    def test_buckets_cover_paper_range(self):
        assert BUCKETS[0] == 128
        assert BUCKETS[-1] == 32768

    def test_bucket_of(self):
        assert bucket_of(128) == 128
        assert bucket_of(255) == 128
        assert bucket_of(256) == 256
        assert bucket_of(10**6) == 32768

    def test_collects_significant_mass(self):
        census = collect_census()
        total = sum(count for _, count in census.series())
        assert total > 1000  # iterative solvers dominate

    def test_small_launches_dropped(self):
        census = collect_census()
        assert census.dropped_small > 0
        dropped_fraction = census.dropped_small / (
            census.dropped_small + sum(c for _, c in census.series())
        )
        assert dropped_fraction < 0.1  # "rarely observed" (paper §2.1)

    def test_every_entry_well_formed(self):
        for app, kernel, work_groups, invocations in suite_entries():
            assert work_groups > 0
            assert invocations > 0
            assert app and kernel

    def test_most_buckets_populated(self):
        census = collect_census()
        populated = sum(1 for _, count in census.series() if count > 0)
        assert populated >= 7
