"""Property-based tests for productive-profiling and engine invariants.

These encode the correctness obligations of paper §2.2/Table 1 as
universally-quantified properties: for any pool geometry and workload
size, profiling plans must partition the workload correctly, keep their
space accounting within Table 1's bounds, and the engine must conserve
work.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.compiler.analyses.safe_point import lcm_of, safe_point_plan
from repro.compiler.variants import VariantPool
from repro.config import ReproConfig
from repro.core.productive import plan_profiling
from repro.device import make_cpu
from repro.device.engine import ExecutionEngine, Priority
from repro.errors import AnalysisError, ProfilingError
from repro.kernel import AccessPattern, WorkRange
from repro.kernel.kernel import KernelSpec
from repro.kernel.launch import LaunchConfig
from repro.modes import ProfilingMode
from tests.conftest import (
    axpy_signature,
    make_axpy_args,
    make_axpy_variant,
)

CONFIG = ReproConfig()

pool_strategy = st.lists(
    st.integers(1, 8), min_size=2, max_size=5
).map(
    lambda factors: VariantPool(
        spec=KernelSpec(signature=axpy_signature()),
        variants=tuple(
            make_axpy_variant(
                f"v{i}",
                AccessPattern.UNIT_STRIDE if i == 0 else AccessPattern.STRIDED,
                wa_factor=f,
            )
            for i, f in enumerate(factors)
        ),
    )
)


def _plan_for(pool, units, mode):
    launch = LaunchConfig.create(
        axpy_signature(), make_axpy_args(units, CONFIG), units
    )
    try:
        safe = safe_point_plan(pool.variants, 4, units)
        plan = plan_profiling(pool, mode, launch, safe)
    except (AnalysisError, ProfilingError):
        assume(False)
    return launch, plan


@settings(max_examples=40, deadline=None)
@given(pool_strategy, st.integers(64, 4096))
def test_fully_productive_partitions_workload(pool, units):
    """Profiled slices + remainder exactly tile [0, units), disjointly."""
    _launch, plan = _plan_for(pool, units, ProfilingMode.FULLY)
    cursor = 0
    for task in plan.tasks:
        assert task.units.start == cursor
        assert len(task.units) == plan.units_per_variant
        cursor = task.units.end
    assert plan.remainder.start == cursor
    assert plan.remainder.end == units
    assert plan.extra_copies == 0  # Table 1
    # Slices are aligned to each owner's work assignment factor.
    for task in plan.tasks:
        task.variant.groups_for_units(task.units)


@settings(max_examples=40, deadline=None)
@given(
    pool_strategy,
    st.integers(64, 4096),
    st.sampled_from([ProfilingMode.HYBRID, ProfilingMode.SWAP]),
)
def test_partial_modes_share_slice_and_bound_space(pool, units, mode):
    """Both partial modes profile one shared slice; space per Table 1."""
    _launch, plan = _plan_for(pool, units, mode)
    spans = {(t.units.start, t.units.end) for t in plan.tasks}
    assert spans == {(0, plan.units_per_variant)}
    assert plan.remainder == WorkRange(plan.units_per_variant, units)
    k = len(pool.variants)
    if mode is ProfilingMode.HYBRID:
        assert plan.extra_copies == k - 1
    else:
        assert plan.extra_copies == k
    assert plan.productive_task_count == 1


@settings(max_examples=30, deadline=None)
@given(pool_strategy, st.integers(64, 2048))
def test_profiled_plus_remainder_compute_whole_output(pool, units):
    """Executing all productive tasks plus the remainder with any variant
    yields the complete, correct output (the productive guarantee)."""
    launch, plan = _plan_for(pool, units, ProfilingMode.FULLY)
    for task in plan.tasks:
        task.variant.execute(task.args, task.units)
    pool.variants[0].execute(launch.args, plan.remainder)
    x = launch.args["x"].data
    y = launch.args["y"].data
    assert np.allclose(y, 2.0 * x)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(8, 512),
    st.integers(1, 4),
    st.integers(0, 2**31),
)
def test_engine_conserves_work(units, wa, seed):
    """Every submitted work-group completes exactly once; busy cycles
    equal the sum of all jittered durations."""
    config = ReproConfig(seed=seed)
    device = make_cpu(config)
    engine = ExecutionEngine(device, config)
    variant = make_axpy_variant("v", wa_factor=wa)
    args = make_axpy_args(units, config)
    tasks = []
    cut = (units // 2 // wa) * wa
    tasks.append(
        engine.submit(variant, args, WorkRange(0, cut), priority=Priority.PROFILING)
    )
    tasks.append(
        engine.submit(variant, args, WorkRange(cut, units), priority=Priority.BATCH)
    )
    engine.barrier()
    # The two tasks' group counts tile the workload's groups exactly
    # (``cut`` is wa-aligned by construction).
    total_groups = sum(task.total_work_groups for task in tasks)
    assert total_groups == variant.num_groups(units)
    for task in tasks:
        assert task.finished
        assert task.completed_work_groups == task.total_work_groups
        if task.total_work_groups:
            assert task.first_start >= task.arrival_time
            assert task.last_end >= task.first_start


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31), st.integers(64, 1024))
def test_makespan_bounded_by_serial_and_critical_path(seed, units):
    """Parallel makespan lies between serial/P and serial (+ overheads)."""
    config = ReproConfig(seed=seed)
    device = make_cpu(config)
    engine = ExecutionEngine(device, config)
    variant = make_axpy_variant("v", trips=64)
    args = make_axpy_args(units, config)
    task = engine.submit(variant, args, WorkRange(0, units))
    engine.wait(task)
    span = task.true_span_cycles
    serial = float(
        np.sum(engine.cost_model.workgroup_cycles(variant, args, WorkRange(0, units)))
    )
    cores = device.spec.compute_units
    # Jitter is ±~10% at most here; allow slack on both bounds.
    assert span >= serial / cores * 0.8
    assert span <= serial * 1.2
