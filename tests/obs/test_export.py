"""Exporter tests: Chrome trace structure, timeline, summary, reconcile."""

import json

import pytest

from repro.obs import (
    EventKind,
    RecordingTracer,
    chrome_trace,
    reconcile,
    summarize,
    text_timeline,
    write_chrome_trace,
)
from repro.obs.export import assign_lanes


def sample_trace() -> RecordingTracer:
    """A hand-built, internally consistent one-launch trace.

    16 workload units: two fully-productive profile spans (4 units
    each), one eager chunk (4 units) and a remainder batch (4 units).
    """
    t = RecordingTracer()
    t.instant(
        EventKind.LAUNCH_BEGIN, "k", 100.0, workload_units=16,
        profiling_requested=True,
    )
    t.span(EventKind.PROFILE_SPAN, "fast", 110.0, 130.0, units=4)
    t.instant(EventKind.SELECTION_UPDATE, "k", 131.0, selected="fast")
    t.span(EventKind.PROFILE_SPAN, "slow", 130.0, 170.0, units=4)
    t.span(EventKind.EAGER_CHUNK, "fast", 135.0, 160.0, units=4)
    t.span(EventKind.REMAINDER_BATCH, "fast", 172.0, 196.0, units=4)
    t.instant(
        EventKind.LAUNCH_END, "k", 200.0, elapsed_cycles=100.0,
        mode="fully", profiled=True, profiling_latency_cycles=70.0,
    )
    return t


class TestLanes:
    def test_overlapping_spans_get_distinct_lanes(self):
        t = RecordingTracer()
        t.span(EventKind.EAGER_CHUNK, "v", 0.0, 10.0, units=2)
        t.span(EventKind.EAGER_CHUNK, "v", 5.0, 15.0, units=2)
        t.span(EventKind.EAGER_CHUNK, "v", 10.0, 20.0, units=2)
        placed = assign_lanes(t.events)
        lanes = [lane for _, lane in placed]
        # First and third don't overlap, so they share a lane; the
        # middle chunk overlaps both and needs its own.
        assert lanes[0] == lanes[2]
        assert lanes[1] != lanes[0]

    def test_profile_spans_keep_per_variant_lanes(self):
        placed = assign_lanes(sample_trace().events)
        by_kind = {
            event.name: lane
            for event, lane in placed
            if event.kind is EventKind.PROFILE_SPAN
        }
        assert by_kind["fast"] != by_kind["slow"]


class TestChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(sample_trace().events, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["event_count"] == 7
        assert isinstance(loaded["traceEvents"], list)

    def test_begin_end_pairs_match_per_lane(self):
        doc = chrome_trace(sample_trace().events)
        stacks = {}
        for record in doc["traceEvents"]:
            if record["ph"] == "B":
                stacks.setdefault(record["tid"], []).append(record)
            elif record["ph"] == "E":
                stack = stacks.get(record["tid"])
                assert stack, f"E without B on tid {record['tid']}"
                begin = stack.pop()
                assert begin["name"] == record["name"]
                assert begin["ts"] <= record["ts"]
        assert all(not stack for stack in stacks.values())

    def test_every_lane_is_named(self):
        doc = chrome_trace(sample_trace().events)
        named = {
            r["tid"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        used = {r["tid"] for r in doc["traceEvents"] if r["ph"] != "M"}
        assert used <= named

    def test_args_are_json_safe(self):
        t = RecordingTracer()
        t.instant(
            EventKind.GATE_DECISION, "k", 0.0,
            requested=("fully", "async"), note=None, extra={"depth": 2},
        )
        doc = chrome_trace(t.events)
        json.dumps(doc)  # must not raise
        (instant,) = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert instant["args"]["requested"] == ["fully", "async"]


class TestTextTimeline:
    def test_renders_all_lanes(self):
        text = text_timeline(sample_trace().events)
        assert "profile fast" in text
        assert "profile slow" in text
        assert "eager" in text
        assert "batch" in text
        assert "[" in text and "]" in text

    def test_empty_trace(self):
        assert text_timeline(()) == "(no events)"


class TestSummarize:
    def test_counters(self):
        summary = summarize(sample_trace().events)
        assert summary.launches == 1
        assert summary.profiled_launches == 1
        assert summary.workload_units == 16
        assert summary.profile_spans == 2
        assert summary.eager_chunks == 1
        assert summary.eager_units == 4
        assert summary.remainder_units == 4
        assert summary.selection_updates == 1
        assert summary.total_elapsed_cycles == 100.0
        assert summary.profiling_latency_cycles == 70.0
        assert summary.profiling_overhead_fraction == pytest.approx(0.7)
        assert summary.eager_utilization == pytest.approx(0.25)
        assert "launches: 1" in summary.format()


class TestReconcile:
    def test_consistent_trace_passes(self):
        events = sample_trace().events
        assert reconcile(events) == []
        assert reconcile(events, elapsed_cycles=100.0, workload_units=16) == []

    def test_elapsed_mismatch_reported(self):
        problems = reconcile(sample_trace().events, elapsed_cycles=90.0)
        assert any("90" in p for p in problems)

    def test_unit_mismatch_reported(self):
        t = sample_trace()
        t.span(EventKind.EAGER_CHUNK, "fast", 161.0, 170.0, units=3)
        problems = reconcile(t.events)
        assert any("unit accounting mismatch" in p for p in problems)

    def test_unpaired_launch_reported(self):
        t = RecordingTracer()
        t.instant(EventKind.LAUNCH_BEGIN, "k", 0.0, workload_units=4)
        problems = reconcile(t.events)
        assert any("never ended" in p for p in problems)

    def test_span_escaping_window_reported(self):
        t = RecordingTracer()
        t.instant(EventKind.LAUNCH_BEGIN, "k", 0.0, workload_units=4)
        t.span(EventKind.REMAINDER_BATCH, "v", 5.0, 50.0, units=4)
        t.instant(
            EventKind.LAUNCH_END, "k", 20.0, elapsed_cycles=20.0,
            mode="hybrid",
        )
        problems = reconcile(t.events)
        assert any("after the launch end" in p for p in problems)

    def test_partial_mode_counts_one_shared_slice(self):
        t = RecordingTracer()
        t.instant(EventKind.LAUNCH_BEGIN, "k", 0.0, workload_units=8)
        # Hybrid: both candidates profile the *same* 4-unit slice.
        t.span(EventKind.PROFILE_SPAN, "fast", 1.0, 5.0, units=4)
        t.span(EventKind.PROFILE_SPAN, "slow", 5.0, 12.0, units=4)
        t.span(EventKind.REMAINDER_BATCH, "fast", 13.0, 19.0, units=4)
        t.instant(
            EventKind.LAUNCH_END, "k", 20.0, elapsed_cycles=20.0,
            mode="hybrid",
        )
        assert reconcile(t.events) == []
