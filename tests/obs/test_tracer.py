"""Unit tests for tracer plumbing: no-op default, recording, engine wiring."""

import dataclasses

import pytest

from repro.config import ReproConfig
from repro.device import make_cpu
from repro.device.engine import ExecutionEngine, Priority
from repro.kernel.kernel import WorkRange
from repro.obs import (
    NULL_TRACER,
    EventKind,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    make_tracer,
)
from repro.obs.events import TraceError
from tests.conftest import make_axpy_args, make_axpy_variant


@pytest.fixture
def traced_config() -> ReproConfig:
    return dataclasses.replace(ReproConfig(), trace=True)


class TestEvents:
    def test_instant_and_span_properties(self):
        instant = TraceEvent(EventKind.LAUNCH_BEGIN, "k", 10.0)
        assert not instant.is_span
        assert instant.duration_cycles == 0.0
        span = TraceEvent(EventKind.PROFILE_SPAN, "v", 10.0, 35.0)
        assert span.is_span
        assert span.duration_cycles == 25.0

    def test_backwards_span_rejected(self):
        with pytest.raises(TraceError):
            TraceEvent(EventKind.PROFILE_SPAN, "v", 10.0, 5.0)


class TestTracers:
    def test_null_tracer_drops_everything(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.instant(EventKind.LAUNCH_BEGIN, "k", 0.0)
        tracer.span(EventKind.PROFILE_SPAN, "v", 0.0, 1.0)
        assert tracer.events == ()

    def test_recording_tracer_collects_in_order(self):
        tracer = RecordingTracer()
        assert tracer.enabled
        tracer.instant(EventKind.LAUNCH_BEGIN, "k", 0.0, workload_units=8)
        tracer.span(EventKind.PROFILE_SPAN, "v", 1.0, 2.0, units=4)
        events = tracer.events
        assert [e.kind for e in events] == [
            EventKind.LAUNCH_BEGIN,
            EventKind.PROFILE_SPAN,
        ]
        assert events[0].args["workload_units"] == 8
        assert events[1].args["units"] == 4
        tracer.clear()
        assert tracer.events == ()

    def test_make_tracer_follows_config(self, config, traced_config):
        assert make_tracer(config) is NULL_TRACER
        assert isinstance(make_tracer(traced_config), RecordingTracer)
        assert make_tracer(None) is NULL_TRACER


class TestEngineWiring:
    def test_trace_off_uses_shared_null_tracer(self, cpu):
        engine = ExecutionEngine(cpu)
        assert engine.tracer is NULL_TRACER

    def test_submit_poll_wait_emit_events(self, traced_config):
        cpu = make_cpu(traced_config)
        engine = ExecutionEngine(cpu, traced_config)
        args = make_axpy_args(32, traced_config)
        variant = make_axpy_variant("v")
        task = engine.submit(
            variant, args, WorkRange(0, 32), priority=Priority.BATCH
        )
        engine.poll(task)
        engine.wait(task)
        engine.barrier()
        kinds = [e.kind for e in engine.tracer.events]
        assert kinds[0] == EventKind.TASK_SUBMIT
        assert EventKind.HOST_POLL in kinds
        assert EventKind.HOST_WAIT in kinds
        assert kinds[-1] == EventKind.BARRIER
        submit = engine.tracer.events[0]
        assert submit.name == "v"
        assert submit.args["units"] == 32
        assert submit.args["priority"] == "batch"

    def test_task_span_records_execution_interval(self, traced_config):
        cpu = make_cpu(traced_config)
        engine = ExecutionEngine(cpu, traced_config)
        args = make_axpy_args(16, traced_config)
        task = engine.submit(make_axpy_variant("v"), args, WorkRange(0, 16))
        engine.wait(task)
        tracer = engine.tracer
        tracer.clear()
        tracer.task_span(EventKind.REMAINDER_BATCH, "v", task)
        (event,) = tracer.events
        assert event.start_cycles == task.first_start
        assert event.end_cycles == task.last_end
        assert event.args["units"] == 16
        assert event.args["work_groups"] == task.total_work_groups
