"""End-to-end traces of real launches reconcile with their results."""

import dataclasses

import pytest

from repro.config import ReproConfig
from repro.core.runtime import DySelRuntime
from repro.device import make_cpu
from repro.harness.runner import RunResult, export_traces
from repro.modes import OrchestrationFlow, ProfilingMode
from repro.obs import NULL_TRACER, EventKind, reconcile
from tests.conftest import make_axpy_args

UNITS = 256


@pytest.fixture
def traced_runtime(fast_slow_pool):
    config = dataclasses.replace(ReproConfig(), trace=True)
    runtime = DySelRuntime(make_cpu(config), config)
    runtime.register_pool(fast_slow_pool)
    return runtime


def launch(runtime, **kwargs):
    config = runtime.config
    args = make_axpy_args(UNITS, config)
    return runtime.launch_kernel("axpy", args, UNITS, **kwargs)


class TestSyncFully:
    def test_trace_reconciles_with_result(self, traced_runtime):
        result = launch(
            traced_runtime,
            mode=ProfilingMode.FULLY,
            flow=OrchestrationFlow.SYNC,
        )
        assert result.profiled
        events = traced_runtime.tracer.events
        problems = reconcile(
            events,
            elapsed_cycles=result.elapsed_cycles,
            workload_units=UNITS,
        )
        assert problems == []

    def test_expected_event_kinds_present(self, traced_runtime, fast_slow_pool):
        result = launch(
            traced_runtime,
            mode=ProfilingMode.FULLY,
            flow=OrchestrationFlow.SYNC,
        )
        events = traced_runtime.tracer.events
        kinds = {e.kind for e in events}
        assert {
            EventKind.LAUNCH_BEGIN,
            EventKind.GATE_DECISION,
            EventKind.PROFILE_SPAN,
            EventKind.SELECTION_UPDATE,
            EventKind.REMAINDER_BATCH,
            EventKind.LAUNCH_END,
        } <= kinds
        profiled = {
            e.name for e in events if e.kind is EventKind.PROFILE_SPAN
        }
        assert profiled == set(fast_slow_pool.variant_names)
        begin = next(e for e in events if e.kind is EventKind.LAUNCH_BEGIN)
        end = next(e for e in events if e.kind is EventKind.LAUNCH_END)
        assert begin.start_cycles == result.start_cycles
        assert end.start_cycles == result.end_cycles
        assert end.args["selected"] == result.selected

    def test_profile_spans_carry_measurements(self, traced_runtime):
        launch(
            traced_runtime,
            mode=ProfilingMode.FULLY,
            flow=OrchestrationFlow.SYNC,
        )
        spans = [
            e
            for e in traced_runtime.tracer.events
            if e.kind is EventKind.PROFILE_SPAN
        ]
        for span in spans:
            assert span.args["measured_cycles"] > 0
            assert span.args["units"] > 0
            assert span.duration_cycles > 0


class TestAsync:
    @pytest.mark.parametrize(
        "mode", [ProfilingMode.FULLY, ProfilingMode.HYBRID]
    )
    def test_trace_reconciles_with_result(self, traced_runtime, mode):
        result = launch(
            traced_runtime, mode=mode, flow=OrchestrationFlow.ASYNC
        )
        assert result.profiled
        events = traced_runtime.tracer.events
        problems = reconcile(
            events,
            elapsed_cycles=result.elapsed_cycles,
            workload_units=UNITS,
        )
        assert problems == []
        eager_events = [
            e for e in events if e.kind is EventKind.EAGER_CHUNK
        ]
        assert len(eager_events) == result.eager_chunks
        assert (
            sum(e.args["units"] for e in eager_events) == result.eager_units
        )


class TestCachedLaunches:
    def test_second_launch_hits_cache(self, traced_runtime):
        first = launch(traced_runtime, flow=OrchestrationFlow.SYNC)
        second = launch(
            traced_runtime, profiling=False, flow=OrchestrationFlow.SYNC
        )
        assert not second.profiled
        assert second.selected == first.selected
        events = traced_runtime.tracer.events
        hits = [e for e in events if e.kind is EventKind.CACHE_HIT]
        assert len(hits) == 1
        assert hits[0].args["selected"] == first.selected
        # Both windows (profiled + cached) must still reconcile.
        problems = reconcile(
            events,
            elapsed_cycles=second.elapsed_cycles,
            workload_units=UNITS,
        )
        assert problems == []

    def test_unprofiled_launch_traces_whole_batch(self, traced_runtime):
        result = launch(
            traced_runtime, profiling=False, flow=OrchestrationFlow.SYNC
        )
        assert not result.profiled
        events = traced_runtime.tracer.events
        batches = [
            e for e in events if e.kind is EventKind.REMAINDER_BATCH
        ]
        assert len(batches) == 1
        assert batches[0].args["units"] == UNITS
        assert reconcile(events, result.elapsed_cycles, UNITS) == []


class TestTraceOff:
    def test_no_events_recorded(self, cpu, config, fast_slow_pool):
        runtime = DySelRuntime(cpu, config)
        runtime.register_pool(fast_slow_pool)
        result = launch(runtime, flow=OrchestrationFlow.SYNC)
        assert result.profiled
        assert runtime.tracer is NULL_TRACER
        assert runtime.tracer.events == ()


class TestHarnessExport:
    def test_export_traces_writes_traced_results(
        self, traced_runtime, tmp_path
    ):
        launch(traced_runtime, flow=OrchestrationFlow.SYNC)
        traced = RunResult(
            case="axpy",
            strategy="dysel:sync",
            elapsed_cycles=traced_runtime.engine.now,
            valid=True,
            trace=traced_runtime.tracer.events,
        )
        untraced = RunResult(
            case="axpy", strategy="pure:fast", elapsed_cycles=1.0, valid=True
        )
        written = export_traces(
            {"dysel:sync": traced, "pure:fast": untraced}, str(tmp_path)
        )
        assert set(written) == {"dysel:sync"}
        assert (tmp_path / "dysel_sync.trace.json").exists()
