"""Tests for the runtime observability subsystem (repro.obs)."""
