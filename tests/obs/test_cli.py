"""CLI tests: ``python -m repro.obs`` traces, reconciles, and exports."""

import json

from repro.obs.cli import run

POOL = "spmv-csr/input-dependent"


class TestRun:
    def test_traces_example_pool_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        status = run(["--pool", POOL, "--out", str(out)])
        assert status == 0
        captured = capsys.readouterr().out
        assert "OK: trace reconciles" in captured
        loaded = json.loads(out.read_text())
        assert loaded["traceEvents"]
        assert loaded["otherData"]["process"] == POOL

    def test_iterations_reuse_cached_selection(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        status = run(
            ["--pool", POOL, "--iterations", "3", "--out", str(out)]
        )
        assert status == 0
        captured = capsys.readouterr().out
        assert "cache: 2 hit(s)" in captured

    def test_units_override(self, tmp_path):
        out = tmp_path / "trace.json"
        status = run(["--pool", POOL, "--units", "256", "--out", str(out)])
        assert status == 0
        assert out.exists()

    def test_text_timeline_printed(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        status = run(["--pool", POOL, "--text", "--out", str(out)])
        assert status == 0
        assert "host" in capsys.readouterr().out

    def test_list(self, capsys):
        assert run(["--list"]) == 0
        assert POOL in capsys.readouterr().out


class TestUsageErrors:
    def test_unknown_pool(self, capsys):
        assert run(["--pool", "no-such-pool"]) == 2
        assert "no pool label" in capsys.readouterr().err

    def test_missing_pool_flag(self, capsys):
        assert run([]) == 2
        assert "--pool" in capsys.readouterr().err

    def test_oversized_units(self, capsys):
        assert run(["--pool", POOL, "--units", "999999"]) == 2
        assert "exceeds" in capsys.readouterr().err
