"""Unit tests for configuration and the error hierarchy."""

import pytest

from repro.config import DEFAULT_CONFIG, NoiseModel, ReproConfig
from repro.errors import (
    ConfigurationError,
    DySelError,
    KernelError,
    ReproError,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = ReproConfig()
        assert config.seed == DEFAULT_CONFIG.seed
        assert config.small_workload_threshold == 128

    def test_negative_seed(self):
        with pytest.raises(ConfigurationError):
            ReproConfig(seed=-1)

    def test_bad_multiplier(self):
        with pytest.raises(ConfigurationError):
            ReproConfig(safe_point_multiplier=0)

    def test_bad_chunk_units(self):
        with pytest.raises(ConfigurationError):
            ReproConfig(eager_chunk_units=0)

    def test_bad_noise(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(execution_jitter=-0.1)
        with pytest.raises(ConfigurationError):
            NoiseModel(timer_quantum=0.0)


class TestConfigHelpers:
    def test_with_noise(self):
        config = ReproConfig().with_noise(execution_jitter=0.5)
        assert config.noise.execution_jitter == 0.5
        assert ReproConfig().noise.execution_jitter != 0.5  # original intact

    def test_without_noise(self):
        quiet = ReproConfig().without_noise()
        assert quiet.noise.execution_jitter == 0.0
        assert quiet.noise.timer_quantum < 1e-6

    def test_rng_streams_independent(self):
        config = ReproConfig()
        a = config.rng("a").standard_normal(8)
        b = config.rng("b").standard_normal(8)
        assert not (a == b).all()

    def test_rng_label_types(self):
        config = ReproConfig()
        # Tuples, ints, strings all work as stream labels.
        config.rng("x", 3, (1, 2), "y").standard_normal(1)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        import inspect

        import repro.errors as errors_module

        for _name, obj in inspect.getmembers(errors_module, inspect.isclass):
            if obj.__module__ == "repro.errors":
                assert issubclass(obj, ReproError), obj

    def test_subsystem_bases(self):
        from repro.errors import LaunchError, ProfilingError, SignatureError

        assert issubclass(LaunchError, DySelError)
        assert issubclass(ProfilingError, DySelError)
        assert issubclass(SignatureError, KernelError)

    def test_catchable_at_boundary(self):
        from repro.core import DySelRuntime
        from repro.device import make_cpu

        runtime = DySelRuntime(make_cpu(ReproConfig()))
        with pytest.raises(ReproError):
            runtime.launch_kernel("nope", {}, 10)
