"""End-to-end integration scenarios across the whole stack."""

import numpy as np
import pytest

from repro import (
    DySelContext,
    DySelRuntime,
    OrchestrationFlow,
    ReproConfig,
    make_cpu,
    make_gpu,
)
from repro.kernel import AccessPattern
from repro.kernel.buffers import Buffer
from repro.workloads import spmv_csr
from tests.conftest import (
    axpy_output_ok,
    axpy_signature,
    make_axpy_args,
    make_axpy_variant,
)


class TestMultiKernelApplication:
    """An application with two independent kernels: selections and caches
    must not interfere."""

    def _runtime(self, cpu, config):
        from repro.compiler.variants import VariantPool
        from repro.kernel import KernelSignature, ArgSpec
        from repro.kernel.kernel import KernelSpec
        import dataclasses

        runtime = DySelRuntime(cpu, config)
        pool_a = VariantPool(
            spec=KernelSpec(signature=axpy_signature()),
            variants=(
                make_axpy_variant("fast"),
                make_axpy_variant("slow", AccessPattern.STRIDED),
            ),
        )
        sig_b = KernelSignature(
            "axpy2", (ArgSpec("x"), ArgSpec("y", is_output=True))
        )
        pool_b = VariantPool(
            spec=KernelSpec(signature=sig_b),
            variants=(
                dataclasses.replace(
                    make_axpy_variant("slow2", AccessPattern.STRIDED),
                ),
                dataclasses.replace(make_axpy_variant("fast2")),
            ),
        )
        runtime.register_pool(pool_a)
        runtime.register_pool(pool_b)
        return runtime

    def test_independent_selections(self, cpu, config):
        runtime = self._runtime(cpu, config)
        args_a = make_axpy_args(512, config)
        args_b = make_axpy_args(512, config)
        result_a = runtime.launch_kernel("axpy", args_a, 512)
        result_b = runtime.launch_kernel("axpy2", args_b, 512)
        assert result_a.selected == "fast"
        assert result_b.selected == "fast2"
        assert axpy_output_ok(args_a)
        assert axpy_output_ok(args_b)
        # Caches are per-kernel.
        assert runtime.cache.lookup("axpy").selected == "fast"
        assert runtime.cache.lookup("axpy2").selected == "fast2"

    def test_cache_invalidation_triggers_reprofile(self, cpu, config):
        runtime = self._runtime(cpu, config)
        args = make_axpy_args(512, config)
        runtime.launch_kernel("axpy", args, 512)
        runtime.cache.invalidate("axpy")
        result = runtime.launch_kernel("axpy", args, 512, profiling=False)
        # No cache: falls back to the pool default without profiling.
        assert not result.profiled
        assert result.selected == "fast"


class TestCrossDevice:
    def test_same_pool_both_devices(self, config, axpy_spec):
        """One pool can serve runtimes on different devices; each profiles
        its own device.  COALESCED beats STRIDED on both device models."""
        from repro.compiler.variants import VariantPool

        pool = VariantPool(
            spec=axpy_spec,
            variants=(
                make_axpy_variant("fast", AccessPattern.COALESCED),
                make_axpy_variant(
                    "slow", AccessPattern.STRIDED, stride_bytes=256
                ),
            ),
        )
        for device in (make_cpu(config), make_gpu(config)):
            runtime = DySelRuntime(device, config)
            runtime.register_pool(pool)
            args = make_axpy_args(512, config)
            result = runtime.launch_kernel("axpy", args, 512)
            assert result.selected == "fast", device.kind
            assert axpy_output_ok(args)

    def test_device_dependent_selection(self, config):
        """The paper's core premise: the same pool has different winners
        on different devices (spmv random: scalar wins CPU, vector GPU)."""
        from repro.harness.runner import run_dysel

        cpu_case = spmv_csr.input_dependent_case("cpu", "random", 2048, config)
        gpu_case = spmv_csr.input_dependent_case("gpu", "random", 2048, config)
        cpu_run = run_dysel(cpu_case, make_cpu(config), config=config)
        gpu_run = run_dysel(gpu_case, make_gpu(config), config=config)
        assert cpu_run.selected.startswith("scalar")
        assert gpu_run.selected == "vector"
        assert cpu_run.valid and gpu_run.valid


class TestReproducibility:
    def test_identical_runs_bit_identical(self, config, fast_slow_pool):
        def one_run():
            runtime = DySelRuntime(make_cpu(config), config)
            runtime.register_pool(fast_slow_pool)
            args = make_axpy_args(512, config)
            result = runtime.launch_kernel("axpy", args, 512)
            return result.elapsed_cycles, result.selected, args["y"].data.copy()

        t1, s1, y1 = one_run()
        t2, s2, y2 = one_run()
        assert t1 == t2
        assert s1 == s2
        assert np.array_equal(y1, y2)

    def test_different_seeds_different_timing(self, fast_slow_pool):
        def elapsed(seed):
            config = ReproConfig(seed=seed)
            runtime = DySelRuntime(make_cpu(config), config)
            runtime.register_pool(fast_slow_pool)
            args = make_axpy_args(512, config)
            return runtime.launch_kernel("axpy", args, 512).elapsed_cycles

        assert elapsed(1) != elapsed(2)


class TestPaperInterfaceEndToEnd:
    def test_fig6_workflow(self, gpu, config):
        """The paper's Fig 6 usage, end to end on the GPU model."""
        context = DySelContext(gpu, config)
        sig = axpy_signature()
        context.DySelAddKernel(sig, make_axpy_variant("a"), wa_factor=2)
        context.DySelAddKernel(
            sig,
            make_axpy_variant("b", AccessPattern.STRIDED),
            initial_default=True,
        )
        args = make_axpy_args(1024, config)
        result = context.DySelLaunchKernel(
            "axpy", args, 1024, mode="hybrid_sync"
        )
        assert result.selected == "a"
        assert axpy_output_ok(args)
        # Second launch with profiling off reuses the selection.
        args2 = make_axpy_args(1024, config)
        again = context.DySelLaunchKernel(
            "axpy", args2, 1024, profiling=False
        )
        assert not again.profiled
        assert again.selected == "a"


class TestFaultTolerance:
    def test_executor_exception_propagates_cleanly(self, cpu, config, axpy_spec):
        """A broken variant fails the launch loudly, not silently."""
        from repro.compiler.variants import VariantPool
        from repro.kernel.kernel import KernelVariant

        def broken(args, start, end):
            raise RuntimeError("kaboom")

        good = make_axpy_variant("good")
        bad = KernelVariant(
            name="bad", ir=good.ir, executor=broken, wa_factor=1
        )
        runtime = DySelRuntime(cpu, config)
        runtime.register_pool(
            VariantPool(spec=axpy_spec, variants=(good, bad))
        )
        args = make_axpy_args(512, config)
        with pytest.raises(RuntimeError, match="kaboom"):
            runtime.launch_kernel("axpy", args, 512)

    def test_readonly_input_never_mutated(self, cpu, config, fast_slow_pool):
        runtime = DySelRuntime(cpu, config)
        runtime.register_pool(fast_slow_pool)
        args = make_axpy_args(512, config)
        snapshot = args["x"].data.copy()
        runtime.launch_kernel("axpy", args, 512)
        assert np.array_equal(args["x"].data, snapshot)
