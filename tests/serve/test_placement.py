"""Mixed CPU+GPU fleets: placement as a dimension of the selection tuple.

End-to-end checks that the scheduler's two-level dispatch (kind via
``decide_placement``, device within kind) composes with the store, the
static cost-bound priors, quarantine, and the trace vocabulary.
"""

import dataclasses

import pytest

from repro.config import AnalyzeSettings, ReproConfig
from repro.device import make_cpu, make_gpu
from repro.errors import LaunchAbortedError, ServeError
from repro.obs.events import EventKind
from repro.obs.export import reconcile, summarize
from repro.serve import LaunchScheduler, ServeRequest
from repro.workloads import spmv_csr

SIZE = 200  # -> 50 workload units


def mixed_scheduler(config, cpus=1, gpus=1, **kwargs):
    devices = tuple(make_cpu(config) for _ in range(cpus)) + tuple(
        make_gpu(config) for _ in range(gpus)
    )
    scheduler = LaunchScheduler(devices, **kwargs)
    if cpus:
        scheduler.register_pool(
            spmv_csr.input_dependent_case("cpu", "random", SIZE, config).pool,
            device_kind="cpu",
        )
    if gpus:
        scheduler.register_pool(
            spmv_csr.input_dependent_case("gpu", "random", SIZE, config).pool,
            device_kind="gpu",
        )
    return scheduler


def spmv_request(config, **kwargs):
    """A fresh spmv request (args are device-kind independent)."""
    case = spmv_csr.input_dependent_case("cpu", "random", SIZE, config)
    return ServeRequest(
        kernel=case.pool.name,
        args=case.fresh_args(),
        workload_units=case.workload_units,
        **kwargs,
    )


class TestKindScopedRegistration:
    def test_unknown_kind_rejected(self, config, fast_slow_pool):
        scheduler = LaunchScheduler((make_cpu(config),))
        with pytest.raises(ServeError, match="no 'gpu' devices"):
            scheduler.register_pool(fast_slow_pool, device_kind="gpu")

    def test_kind_scoped_pools_share_one_kernel_name(self, config):
        scheduler = mixed_scheduler(config)
        cpu_rt = scheduler.runtime("cpu0")
        gpu_rt = scheduler.runtime("gpu1")
        assert "spmv_csr" in cpu_rt.registry
        assert "spmv_csr" in gpu_rt.registry
        # Kind-specific variants: 4 CPU schedules vs 2 GPU kernels.
        assert len(cpu_rt.registry.pool("spmv_csr").variants) == 4
        assert len(gpu_rt.registry.pool("spmv_csr").variants) == 2

    def test_unregistered_kernel_raises(self, config):
        scheduler = mixed_scheduler(config)
        with pytest.raises(ServeError, match="not registered on any"):
            scheduler.launch(
                ServeRequest(kernel="nope", args={}, workload_units=8)
            )


class TestPlacementEndToEnd:
    def test_mixed_fleet_serves_and_validates(self, config):
        scheduler = mixed_scheduler(config, cpus=2, gpus=2)
        case = spmv_csr.input_dependent_case("cpu", "random", SIZE, config)
        outcomes = []
        for _ in range(8):
            request = spmv_request(config)
            outcomes.append(scheduler.launch(request))
            assert case.check(request.args)
        assert all(o.placement for o in outcomes)
        assert sum(scheduler.stats.placements.values()) == 8

    def test_cold_placement_uses_static_prior_then_warms(self):
        """The cold->warm basis flip: first placements lean on the static
        cost-bound prior, later ones on the store-measured EWMA."""
        config = dataclasses.replace(
            ReproConfig(), analyze=AnalyzeSettings(dominance=True)
        )
        scheduler = mixed_scheduler(config)
        first = scheduler.launch(spmv_request(config))
        assert "static cost-bound placement" in first.placement
        # Warm every kind's class so the EWMA exists fleet-wide.
        scheduler.launch(spmv_request(config, device_kind="cpu"))
        scheduler.launch(spmv_request(config, device_kind="gpu"))
        warm = scheduler.launch(spmv_request(config))
        assert "store-measured placement" in warm.placement

    def test_pinned_kind_is_honored(self, config):
        scheduler = mixed_scheduler(config, cpus=2, gpus=2)
        for kind, device_prefix in (("cpu", "cpu"), ("gpu", "gpu")):
            outcome = scheduler.launch(
                spmv_request(config, device_kind=kind)
            )
            assert outcome.device.startswith(device_prefix)
            assert outcome.placement.startswith("pinned device kind")

    def test_unknown_pinned_kind_noted_and_ignored(self, config):
        scheduler = mixed_scheduler(config)
        outcome = scheduler.launch(spmv_request(config, device_kind="tpu"))
        assert "pinned device kind 'tpu' is unknown (ignored)" in (
            outcome.placement
        )

    def test_dynamic_load_policy_balances(self, config):
        scheduler = mixed_scheduler(
            config, cpus=2, gpus=2, placement_policy="dynamic-load"
        )
        for _ in range(12):
            scheduler.launch(spmv_request(config))
        # Load balancing touches both kinds rather than camping on one.
        assert set(scheduler.stats.placements) == {"cpu", "gpu"}

    def test_bad_placement_policy_rejected(self, config):
        with pytest.raises(ServeError, match="unknown placement_policy"):
            LaunchScheduler(
                (make_cpu(config),), placement_policy="round-robin"
            )


class TestQuarantinePlacement:
    def quarantine_kind(self, scheduler, config, kind):
        pool = spmv_csr.input_dependent_case(
            kind, "random", SIZE, config
        ).pool
        for variant in pool.variant_names:
            for _ in range(config.faults.quarantine_threshold):
                scheduler.store.quarantine.note_fault(
                    pool.name, variant, "test"
                )

    def test_fully_quarantined_kind_excluded(self, config):
        scheduler = mixed_scheduler(config, cpus=1, gpus=1)
        self.quarantine_kind(scheduler, config, "gpu")
        outcome = scheduler.launch(spmv_request(config))
        assert outcome.device.startswith("cpu")
        assert "single eligible device kind" in outcome.placement
        assert "'gpu' quarantined" in outcome.placement

    def test_all_kinds_quarantined_aborts_structurally(self, config):
        """Placement falls through so the runtime raises its structured
        abort (with per-variant detail), exactly as pre-fleet."""
        scheduler = mixed_scheduler(config, cpus=1, gpus=1)
        self.quarantine_kind(scheduler, config, "cpu")
        self.quarantine_kind(scheduler, config, "gpu")
        with pytest.raises(LaunchAbortedError) as excinfo:
            scheduler.launch(spmv_request(config))
        assert excinfo.value.kernel == "spmv_csr"
        assert excinfo.value.quarantined


class TestPlacementTracing:
    def test_placement_events_on_mixed_fleet(self):
        config = ReproConfig(trace=True)
        scheduler = mixed_scheduler(config)
        scheduler.launch(spmv_request(config))
        kinds = [e.kind for e in scheduler.tracer.events]
        assert EventKind.PLACEMENT in kinds
        event = next(
            e
            for e in scheduler.tracer.events
            if e.kind is EventKind.PLACEMENT
        )
        assert set(event.args["projected"]) == {"cpu", "gpu"}
        assert event.args["device_kind"] in ("cpu", "gpu")

    def test_no_placement_events_on_homogeneous_fleet(self, fast_slow_pool):
        """Single-kind fleets keep their pre-fleet trace shape."""
        from tests.conftest import make_axpy_args

        config = ReproConfig(trace=True)
        scheduler = LaunchScheduler(
            tuple(make_cpu(config) for _ in range(2))
        )
        scheduler.register_pool(fast_slow_pool)
        scheduler.launch(
            ServeRequest(
                kernel="axpy",
                args=make_axpy_args(512, config),
                workload_units=512,
            )
        )
        kinds = [e.kind for e in scheduler.tracer.events]
        assert EventKind.PLACEMENT not in kinds

    def test_summary_counts_placements_and_traces_reconcile(self):
        config = ReproConfig(trace=True)
        scheduler = mixed_scheduler(config, cpus=2, gpus=2)
        for _ in range(6):
            scheduler.launch(spmv_request(config))
        summary = summarize(scheduler.tracer.events)
        assert summary.placements == 6
        assert "placement decision(s)" in summary.format()
        for events in scheduler.device_traces().values():
            assert reconcile(events) == []
