"""Persistent selection store: round-trip, TTL, schema rejection."""

import json

import pytest

from repro.errors import StoreError, StoreSchemaError
from repro.serve.store import SCHEMA_VERSION, SelectionStore


class FakeClock:
    """Deterministic injectable time source."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_store(**kwargs):
    clock = kwargs.pop("clock", FakeClock())
    return SelectionStore(clock=clock, **kwargs), clock


class TestLifecycle:
    def test_publish_then_lookup(self):
        store, _ = make_store()
        store.publish("k|cpu|a=1", kernel="k", selected="fast",
                      cycles_per_unit=12.5, mode="fully", flow="async")
        entry = store.lookup("k|cpu|a=1")
        assert entry is not None
        assert entry.selected == "fast"
        assert entry.cycles_per_unit == 12.5
        assert store.stats.hits == 1

    def test_miss_counts(self):
        store, _ = make_store()
        assert store.lookup("nope") is None
        assert store.stats.misses == 1

    def test_repeat_publication_folds_ewma(self):
        store, _ = make_store(ewma_alpha=0.5)
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=10.0)
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=20.0)
        entry = store.lookup("key")
        assert entry.cycles_per_unit == 15.0
        assert entry.samples == 2

    def test_new_winner_replaces_entry(self):
        store, _ = make_store()
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=10.0)
        store.publish("key", kernel="k", selected="other", cycles_per_unit=8.0)
        entry = store.lookup("key")
        assert entry.selected == "other"
        assert entry.cycles_per_unit == 8.0
        assert entry.samples == 1

    def test_invalidate_kernel_drops_all_classes(self):
        store, _ = make_store()
        store.publish("k|cpu|a=1", kernel="k", selected="x", cycles_per_unit=1)
        store.publish("k|cpu|a=2", kernel="k", selected="y", cycles_per_unit=1)
        store.publish("j|cpu|a=1", kernel="j", selected="z", cycles_per_unit=1)
        assert store.invalidate_kernel("k") == 2
        assert store.lookup("k|cpu|a=1") is None
        assert store.lookup("j|cpu|a=1") is not None


class TestTTL:
    def test_fresh_entry_survives(self):
        store, clock = make_store(ttl=60.0)
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=1.0)
        clock.advance(59.0)
        assert store.lookup("key") is not None

    def test_expired_entry_evicts(self):
        store, clock = make_store(ttl=60.0)
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=1.0)
        clock.advance(61.0)
        assert store.lookup("key") is None
        assert store.stats.expirations == 1

    def test_republication_renews_ttl(self):
        store, clock = make_store(ttl=60.0)
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=1.0)
        clock.advance(50.0)
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=2.0)
        clock.advance(50.0)
        assert store.lookup("key") is not None

    def test_invalid_ttl_rejected(self):
        with pytest.raises(StoreError):
            SelectionStore(ttl=0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(StoreError):
            SelectionStore(ewma_alpha=0.0)


class TestDecayPublishOrdering:
    """A publish landing after the decay deadline must start a fresh
    entry — resurrecting the expired EWMA/history would trust exactly
    the statistics the expiry said to distrust (satellite bugfix)."""

    def make_decayed(self, clock):
        store = SelectionStore(clock=clock)
        store.publish("key", kernel="k", selected="fast",
                      cycles_per_unit=10.0)
        store.publish("key", kernel="k", selected="fast",
                      cycles_per_unit=10.0)
        assert store.decay("key", grace=5.0)
        return store

    def test_publish_before_deadline_folds_and_clears_decay(self):
        clock = FakeClock()
        store = self.make_decayed(clock)
        clock.advance(4.0)
        store.publish("key", kernel="k", selected="fast",
                      cycles_per_unit=20.0)
        entry = store.lookup("key")
        assert entry.samples == 3
        assert entry.decay_at is None

    def test_publish_past_deadline_starts_fresh(self):
        clock = FakeClock()
        store = self.make_decayed(clock)
        clock.advance(6.0)  # past the decay deadline
        store.publish("key", kernel="k", selected="fast",
                      cycles_per_unit=20.0)
        entry = store.lookup("key")
        assert entry.samples == 1
        assert entry.cycles_per_unit == 20.0
        assert entry.decay_at is None

    def test_publish_past_ttl_starts_fresh(self):
        store, clock = make_store(ttl=60.0)
        store.publish("key", kernel="k", selected="fast",
                      cycles_per_unit=10.0)
        clock.advance(61.0)
        store.publish("key", kernel="k", selected="fast",
                      cycles_per_unit=20.0)
        entry = store.lookup("key")
        assert entry.samples == 1
        assert entry.cycles_per_unit == 20.0

    def test_concurrent_expired_lookup_and_publish(self):
        """Two threads race an expired entry: whatever the interleaving,
        the surviving entry is the freshly published one, never a
        resurrection of the expired history."""
        import threading

        for _ in range(20):
            clock = FakeClock()
            store = self.make_decayed(clock)
            clock.advance(6.0)
            barrier = threading.Barrier(2)
            seen = []

            def expire_lookup():
                barrier.wait()
                seen.append(store.lookup("key"))

            def publish_fresh():
                barrier.wait()
                store.publish("key", kernel="k", selected="fast",
                              cycles_per_unit=20.0)

            threads = [
                threading.Thread(target=expire_lookup),
                threading.Thread(target=publish_fresh),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            entry = store.lookup("key")
            assert entry is not None
            assert entry.samples == 1
            assert entry.cycles_per_unit == 20.0
            assert entry.decay_at is None


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "store.json")
        store, clock = make_store()
        store.publish("k|cpu|a=1", kernel="k", selected="fast",
                      cycles_per_unit=12.5, mode="fully", flow="async")
        store.publish("k|cpu|a=2", kernel="k", selected="slow",
                      cycles_per_unit=99.0)
        store.save(path)
        loaded = SelectionStore.load(path, clock=FakeClock(5000.0))
        assert len(loaded) == 2
        entry = loaded.lookup("k|cpu|a=1")
        assert entry.selected == "fast"
        assert entry.cycles_per_unit == 12.5
        assert entry.mode == "fully"

    def test_age_survives_restart(self, tmp_path):
        """TTL accounting continues across a process boundary."""
        path = str(tmp_path / "store.json")
        store, clock = make_store(ttl=100.0)
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=1.0)
        clock.advance(80.0)
        store.save(path)
        # New process: different clock origin, same TTL.
        new_clock = FakeClock(123456.0)
        loaded = SelectionStore.load(path, ttl=100.0, clock=new_clock)
        assert loaded.lookup("key") is not None  # 80s old, under 100s.
        new_clock.advance(30.0)
        assert loaded.lookup("key") is None  # 110s old, over.

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "store.json")
        store, _ = make_store()
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=1.0)
        store.save(path)
        doc = json.loads(open(path).read())
        doc["schema_version"] = SCHEMA_VERSION + 1
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(StoreSchemaError):
            SelectionStore.load(path)

    def test_missing_version_rejected(self, tmp_path):
        path = str(tmp_path / "store.json")
        open(path, "w").write(json.dumps({"entries": []}))
        with pytest.raises(StoreSchemaError):
            SelectionStore.load(path)

    def test_truncated_json_starts_fresh(self, tmp_path):
        # Crash-mid-write recovery: a truncated file is treated like a
        # missing store (fresh + warning), not a fatal error.
        path = str(tmp_path / "store.json")
        store, _ = make_store()
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=1.0)
        store.save(path)
        raw = open(path).read()
        open(path, "w").write(raw[: len(raw) // 2])  # truncate mid-object
        with pytest.warns(UserWarning, match="empty or truncated"):
            loaded = SelectionStore.load(path)
        assert len(loaded) == 0

    def test_empty_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "store.json")
        open(path, "w").close()
        with pytest.warns(UserWarning, match="empty or truncated"):
            loaded = SelectionStore.load(path)
        assert len(loaded) == 0
        assert loaded.lookup("anything") is None

    def test_corrupt_entry_rejected(self, tmp_path):
        path = str(tmp_path / "store.json")
        doc = {
            "schema_version": SCHEMA_VERSION,
            "entries": [{"key": "k", "kernel": "k"}],  # missing fields
        }
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(StoreError):
            SelectionStore.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            SelectionStore.load(str(tmp_path / "absent.json"))

    def test_save_is_atomic(self, tmp_path):
        """A save never leaves a half-written store at the target path."""
        path = str(tmp_path / "store.json")
        store, _ = make_store()
        store.publish("key", kernel="k", selected="fast", cycles_per_unit=1.0)
        store.save(path)
        store.save(path)  # overwrite in place
        loaded = SelectionStore.load(path)
        assert len(loaded) == 1
        assert not [
            p for p in tmp_path.iterdir() if p.suffix == ".tmp"
        ], "temp files must not survive a save"


class TestDeviceKindAndMigration:
    """Schema v4: denormalized device_kind + v3 migration (key rules
    unchanged since v3, so old snapshots recover it from the key)."""

    def test_publish_denormalizes_device_kind(self):
        store, _ = make_store()
        store.publish(
            "k|gpu|units^2=4", kernel="k", selected="v", cycles_per_unit=1.0
        )
        assert store.lookup("k|gpu|units^2=4").device_kind == "gpu"

    def test_non_signature_key_yields_empty_kind(self):
        store, _ = make_store()
        store.publish("bare-key", kernel="k", selected="v",
                      cycles_per_unit=1.0)
        assert store.lookup("bare-key").device_kind == ""

    def test_device_kind_from_key(self):
        from repro.serve.store import device_kind_from_key

        assert device_kind_from_key("k|cpu|units^2=4") == "cpu"
        assert device_kind_from_key("k|gpu") == "gpu"
        assert device_kind_from_key("bare") == ""

    def test_v3_snapshot_migrates_and_backfills(self, tmp_path):
        """A v3 snapshot (no device_kind field) loads and recovers the
        kind from each key."""
        path = str(tmp_path / "store.json")
        store, _ = make_store()
        store.publish("k|gpu|units^2=4", kernel="k", selected="v",
                      cycles_per_unit=2.0)
        store.save(path)
        doc = json.loads(open(path).read())
        doc["schema_version"] = 3
        for entry in doc["entries"]:
            entry.pop("device_kind", None)
        open(path, "w").write(json.dumps(doc))
        loaded = SelectionStore.load(path)
        entry = loaded.lookup("k|gpu|units^2=4")
        assert entry.selected == "v"
        assert entry.device_kind == "gpu"

    def test_v4_snapshot_persists_device_kind(self, tmp_path):
        path = str(tmp_path / "store.json")
        store, _ = make_store()
        store.publish("k|cpu|units^2=4", kernel="k", selected="v",
                      cycles_per_unit=2.0)
        store.save(path)
        doc = json.loads(open(path).read())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["entries"][0]["device_kind"] == "cpu"
