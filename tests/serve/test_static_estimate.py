"""Static cost-bound priors in the serve scheduler (cold-start balance)."""

import dataclasses

from repro.config import AnalyzeSettings, ReproConfig
from repro.device import make_cpu
from repro.serve import LaunchScheduler, SelectionStore, ServeRequest
from tests.conftest import (
    axpy_output_ok,
    fast_slow_pool_build,
    make_axpy_args,
)

UNITS = 512


def dominance_config() -> ReproConfig:
    return dataclasses.replace(
        ReproConfig().without_noise(),
        analyze=AnalyzeSettings(dominance=True),
    )


def make_scheduler(config, devices=2, **kwargs):
    scheduler = LaunchScheduler(
        tuple(make_cpu(config) for _ in range(devices)),
        config=config,
        **kwargs,
    )
    scheduler.register_pool(fast_slow_pool_build())
    return scheduler


class TestWorkerEstimate:
    def _worker(self, config):
        return make_scheduler(config)._workers[0]

    def test_known_cost_wins(self):
        worker = self._worker(dominance_config())
        assert worker.estimate_cost(123.0, static_cost=999.0) == 123.0

    def test_static_prior_beats_observed_mean(self):
        worker = self._worker(dominance_config())
        worker.complete(0.0, 500.0)
        assert worker.estimate_cost(None, static_cost=42.0) == 42.0

    def test_observed_mean_when_no_prior(self):
        worker = self._worker(dominance_config())
        worker.complete(0.0, 400.0)
        worker.complete(0.0, 600.0)
        assert worker.estimate_cost(None) == 500.0

    def test_zero_before_any_signal(self):
        assert self._worker(dominance_config()).estimate_cost(None) == 0.0


class TestStaticUnitCost:
    def test_positive_prior_with_dominance_on(self):
        scheduler = make_scheduler(dominance_config())
        prior = scheduler._static_unit_cost("axpy", "cpu")
        assert prior is not None and prior > 0

    def test_none_with_dominance_off(self):
        scheduler = make_scheduler(ReproConfig().without_noise())
        assert scheduler._static_unit_cost("axpy", "cpu") is None

    def test_none_for_unknown_kernel_or_kind(self):
        scheduler = make_scheduler(dominance_config())
        assert scheduler._static_unit_cost("nope", "cpu") is None
        assert scheduler._static_unit_cost("axpy", "tpu") is None

    def test_prior_is_cached(self):
        scheduler = make_scheduler(dominance_config())
        first = scheduler._static_unit_cost("axpy", "cpu")
        assert scheduler._static_estimates[("axpy", "cpu")] == first
        assert scheduler._static_unit_cost("axpy", "cpu") == first

    def test_invalidation_drops_the_cached_prior(self):
        scheduler = make_scheduler(dominance_config())
        scheduler._static_unit_cost("axpy", "cpu")
        scheduler._on_invalidate("axpy", "test eviction")
        assert ("axpy", "cpu") not in scheduler._static_estimates

    def test_cached_none_does_not_outlive_first_registration(self):
        """Regression: a ``None`` prior cached before the kernel's
        *first* registration (which fires no invalidation hook) used to
        stay stale forever, hiding the static prior from dispatch."""
        config = dominance_config()
        scheduler = LaunchScheduler(
            (make_cpu(config), make_cpu(config)), config=config
        )
        assert scheduler._static_unit_cost("axpy", "cpu") is None
        assert scheduler._static_estimates[("axpy", "cpu")] is None
        scheduler.register_pool(fast_slow_pool_build())
        prior = scheduler._static_unit_cost("axpy", "cpu")
        assert prior is not None and prior > 0

    def test_reregistration_with_cheaper_default_updates_midpoint(self):
        """Regression: re-registering a pool whose default got cheaper
        must re-derive the cached midpoint, not keep serving the old
        one."""
        from repro.compiler.variants import VariantPool
        from repro.kernel import AccessPattern, KernelSpec
        from tests.conftest import axpy_signature, make_axpy_variant

        scheduler = make_scheduler(dominance_config())
        before = scheduler._static_unit_cost("axpy", "cpu")
        assert before is not None
        cheap = VariantPool(
            spec=KernelSpec(signature=axpy_signature()),
            variants=(
                make_axpy_variant(
                    "fast", AccessPattern.UNIT_STRIDE, flops_per_trip=1.0
                ),
                make_axpy_variant("slow", AccessPattern.STRIDED),
            ),
        )
        scheduler.register_pool(cheap)
        after = scheduler._static_unit_cost("axpy", "cpu")
        assert after is not None
        assert after < before


class TestServedBatch:
    def test_batch_with_store_and_priors_serves_correctly(self):
        config = dominance_config()
        scheduler = make_scheduler(config, store=SelectionStore())
        batch = [
            ServeRequest(
                kernel="axpy",
                args=make_axpy_args(UNITS, config),
                workload_units=UNITS,
            )
            for _ in range(8)
        ]
        outcomes = scheduler.serve_all(batch, clients=4)
        assert sum(o.profiled for o in outcomes) == 1
        for request in batch:
            assert axpy_output_ok(request.args)
        # The prior was computed once per (kernel, kind) during dispatch.
        assert scheduler._static_estimates[("axpy", "cpu")] > 0
