"""Sharded selection store: routing, dirty-only saves, merge-on-load,
and structured rejection of mixed-schema shard directories."""

import json
import os

import pytest

from repro.drift import DriftConfig
from repro.errors import StoreError, StoreSchemaError
from repro.predict import PredictConfig
from repro.serve import (
    SCHEMA_VERSION,
    LaunchScheduler,
    SelectionStore,
    ServeRequest,
    ShardedSelectionStore,
)
from repro.serve.shards import META_FILENAME, shard_filename

KEYS = [f"k|cpu|units^2={i}" for i in range(16)]


def publish_all(store, keys=KEYS):
    for i, key in enumerate(keys):
        store.publish(
            key, kernel="k", selected="fast", cycles_per_unit=1.0 + i
        )


class TestRouting:
    def test_routing_is_stable_and_total(self):
        store = ShardedSelectionStore(shards=4)
        for key in KEYS:
            index = store.shard_index(key)
            assert 0 <= index < 4
            assert store.shard_index(key) == index

    def test_surface_round_trip(self):
        store = ShardedSelectionStore(shards=4)
        publish_all(store)
        assert len(store) == len(KEYS)
        assert set(store.keys()) == set(KEYS)
        for key in KEYS:
            assert key in store
            assert store.lookup(key).key == key
        assert store.stats.puts == len(KEYS)
        assert store.stats.hits == len(KEYS)

    def test_entries_spread_across_shards(self):
        store = ShardedSelectionStore(shards=4)
        publish_all(store)
        occupied = [len(shard) for shard in store._shards]
        assert sum(occupied) == len(KEYS)
        assert sum(1 for n in occupied if n) > 1

    def test_publish_sets_device_kind(self):
        store = ShardedSelectionStore(shards=2)
        store.publish(
            "k|gpu|units^2=4", kernel="k", selected="v", cycles_per_unit=1.0
        )
        assert store.lookup("k|gpu|units^2=4").device_kind == "gpu"

    def test_invalidate_kernel_fans_out(self):
        store = ShardedSelectionStore(shards=4)
        publish_all(store)
        assert store.invalidate_kernel("k") == len(KEYS)
        assert len(store) == 0

    def test_bad_shard_count_rejected(self):
        with pytest.raises(StoreError, match="shards"):
            ShardedSelectionStore(shards=0)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "store")
        store = ShardedSelectionStore(shards=4)
        publish_all(store)
        store.save(path)
        assert os.path.exists(os.path.join(path, META_FILENAME))
        loaded = ShardedSelectionStore.load(path)
        assert loaded.shard_count == 4
        assert len(loaded) == len(KEYS)
        for key in KEYS:
            entry = loaded.lookup(key)
            assert entry.cycles_per_unit == store.peek(key).cycles_per_unit
            assert entry.device_kind == "cpu"

    def test_rehash_into_different_layout(self, tmp_path):
        path = str(tmp_path / "store")
        store = ShardedSelectionStore(shards=4)
        publish_all(store)
        store.save(path)
        grown = ShardedSelectionStore.load(path, shards=7)
        assert grown.shard_count == 7
        assert set(grown.keys()) == set(KEYS)
        # Layout changed: every shard is dirty so the next save rewrites
        # the directory into the new layout.
        assert grown.dirty_shards() == list(range(7))
        grown.save(path, only_dirty=False)
        assert ShardedSelectionStore.load(path).shard_count == 7

    def test_dirty_only_save_skips_clean_shards(self, tmp_path):
        path = str(tmp_path / "store")
        store = ShardedSelectionStore(shards=4)
        publish_all(store)
        store.save(path)
        assert store.dirty_shards() == []
        hot = KEYS[0]
        store.publish(hot, kernel="k", selected="fast", cycles_per_unit=9.0)
        assert store.dirty_shards() == [store.shard_index(hot)]
        mtimes = {
            i: os.path.getmtime(os.path.join(path, shard_filename(i)))
            for i in range(4)
        }
        os.utime(
            os.path.join(path, shard_filename(store.shard_index(hot))),
            (0, 0),
        )
        for i in range(4):
            if i != store.shard_index(hot):
                os.utime(os.path.join(path, shard_filename(i)), (0, 0))
        store.save(path)
        for i in range(4):
            rewritten = (
                os.path.getmtime(os.path.join(path, shard_filename(i))) > 0
            )
            assert rewritten == (i == store.shard_index(hot)), (i, mtimes)

    def test_missing_shard_file_rewritten_even_when_clean(self, tmp_path):
        path = str(tmp_path / "store")
        store = ShardedSelectionStore(shards=2)
        publish_all(store, KEYS[:4])
        store.save(path)
        os.remove(os.path.join(path, shard_filename(0)))
        store.save(path)  # clean, but the file is gone
        assert os.path.exists(os.path.join(path, shard_filename(0)))

    def test_merge_keeps_freshest_duplicate(self, tmp_path):
        """Duplicate keys across shard files (layout change interrupted
        mid-save) resolve to the youngest copy."""
        path = str(tmp_path / "store")
        store = ShardedSelectionStore(shards=2)
        store.publish(
            KEYS[0], kernel="k", selected="old", cycles_per_unit=1.0
        )
        store.save(path)
        owner = store.shard_index(KEYS[0])
        doc = json.load(open(os.path.join(path, shard_filename(owner))))
        stale = json.loads(json.dumps(doc))
        stale["entries"][0]["selected"] = "stale"
        stale["entries"][0]["age"] = 9999.0
        stale["shard_index"] = 1 - owner
        other = os.path.join(path, shard_filename(1 - owner))
        json.dump(stale, open(other, "w"))
        loaded = ShardedSelectionStore.load(path)
        assert loaded.lookup(KEYS[0]).selected == "old"

    def test_unreadable_directory_raises(self, tmp_path):
        with pytest.raises(StoreError, match="cannot read"):
            ShardedSelectionStore.load(str(tmp_path / "missing"))


class TestSchemaRejection:
    def save_store(self, tmp_path, shards=4):
        path = str(tmp_path / "store")
        store = ShardedSelectionStore(shards=shards)
        publish_all(store)
        store.save(path)
        return path

    def rewrite_version(self, path, name, version):
        full = os.path.join(path, name)
        doc = json.load(open(full))
        doc["schema_version"] = version
        json.dump(doc, open(full, "w"))
        return full

    def test_mixed_shard_versions_rejected_structurally(self, tmp_path):
        """The satellite fix: v3+v4 shards must be rejected wholesale
        with every file's version listed — never partially loaded."""
        path = self.save_store(tmp_path)
        downgraded = self.rewrite_version(path, shard_filename(1), 3)
        with pytest.raises(StoreSchemaError, match="mixes schema") as exc:
            ShardedSelectionStore.load(path)
        versions = exc.value.versions
        assert versions[downgraded] == 3
        assert len(versions) == 5  # meta + 4 shards, nothing else
        assert sorted(set(versions.values())) == [3, SCHEMA_VERSION]

    def test_uniform_migratable_version_loads(self, tmp_path):
        """All-v3 directories migrate (key rules unchanged since v3)."""
        path = self.save_store(tmp_path)
        for i in range(4):
            self.rewrite_version(path, shard_filename(i), 3)
        self.rewrite_version(path, META_FILENAME, 3)
        loaded = ShardedSelectionStore.load(path)
        assert len(loaded) == len(KEYS)
        assert loaded.lookup(KEYS[0]).device_kind == "cpu"  # backfilled

    def test_unsupported_version_rejected(self, tmp_path):
        path = self.save_store(tmp_path)
        bad = self.rewrite_version(path, shard_filename(2), 2)
        with pytest.raises(StoreSchemaError, match="unsupported") as exc:
            ShardedSelectionStore.load(path)
        assert exc.value.versions[bad] == 2

    def test_missing_schema_version_rejected(self, tmp_path):
        path = self.save_store(tmp_path)
        full = os.path.join(path, shard_filename(0))
        doc = json.load(open(full))
        del doc["schema_version"]
        json.dump(doc, open(full, "w"))
        with pytest.raises(StoreSchemaError, match="no schema_version"):
            ShardedSelectionStore.load(path)

    def test_torn_shard_skipped_with_warning(self, tmp_path):
        path = self.save_store(tmp_path)
        torn = os.path.join(path, shard_filename(1))
        lost = sum(
            1
            for e in json.load(open(torn))["entries"]
        )
        open(torn, "w").write('{"schema_version": 4, "entr')
        with pytest.warns(UserWarning, match="torn or truncated"):
            loaded = ShardedSelectionStore.load(path)
        assert len(loaded) == len(KEYS) - lost

    def test_torn_meta_loses_side_state_keeps_entries(self, tmp_path):
        path = self.save_store(tmp_path)
        open(os.path.join(path, META_FILENAME), "w").write("")
        with pytest.warns(UserWarning, match="empty or torn"):
            loaded = ShardedSelectionStore.load(path)
        assert len(loaded) == len(KEYS)


class TestSharedSideState:
    def test_one_quarantine_ledger(self, tmp_path):
        store = ShardedSelectionStore(shards=4)
        threshold = store.quarantine.policy.quarantine_threshold
        for _ in range(threshold):
            store.quarantine.note_fault("k", "bad", "test")
        for shard in store._shards:
            assert shard.quarantine.is_quarantined("k", "bad")
        path = str(tmp_path / "store")
        store.save(path)
        loaded = ShardedSelectionStore.load(path)
        assert loaded.quarantine.is_quarantined("k", "bad")

    def test_one_predictor_trains_across_shards(self, tmp_path):
        store = ShardedSelectionStore(
            shards=4, predict=PredictConfig(min_examples=2)
        )
        publish_all(store)
        assert len(store.predictor) == len(KEYS)
        path = str(tmp_path / "store")
        store.save(path)
        loaded = ShardedSelectionStore.load(path)
        assert loaded.predictor is not None
        assert len(loaded.predictor) == len(KEYS)

    def test_drift_decay_routes_to_owning_shard(self):
        store = ShardedSelectionStore(shards=4, drift=DriftConfig())
        publish_all(store)
        key = KEYS[3]
        assert store.decay(key, grace=0.0)
        assert store.shard_index(key) in store.dirty_shards()

    def test_drift_state_round_trips(self, tmp_path):
        store = ShardedSelectionStore(shards=2, drift=DriftConfig())
        publish_all(store, KEYS[:2])
        for _ in range(4):
            store.drift.observe(KEYS[0], "k", "fast", 1.0)
        path = str(tmp_path / "store")
        store.save(path)
        loaded = ShardedSelectionStore.load(path)
        assert loaded.drift is not None


class TestSchedulerIntegration:
    def test_scheduler_accepts_sharded_store(self, config, fast_slow_pool):
        from repro.device import make_cpu
        from tests.conftest import make_axpy_args

        store = ShardedSelectionStore(shards=4)
        scheduler = LaunchScheduler(
            (make_cpu(config), make_cpu(config)), store=store
        )
        scheduler.register_pool(fast_slow_pool)
        outcomes = [
            scheduler.launch(
                ServeRequest(
                    kernel="axpy",
                    args=make_axpy_args(512, config),
                    workload_units=512,
                )
            )
            for _ in range(4)
        ]
        assert sum(o.profiled for o in outcomes) == 1
        assert len(store) == 1

    def test_warm_restart_from_sharded_checkpoint(
        self, config, fast_slow_pool, tmp_path
    ):
        from repro.device import make_cpu
        from tests.conftest import make_axpy_args

        path = str(tmp_path / "store")
        cold = LaunchScheduler(
            (make_cpu(config),), store=ShardedSelectionStore(shards=4)
        )
        cold.register_pool(fast_slow_pool)
        cold.launch(
            ServeRequest(
                kernel="axpy",
                args=make_axpy_args(512, config),
                workload_units=512,
            )
        )
        cold.store.save(path)

        warm = LaunchScheduler(
            (make_cpu(config),), store=ShardedSelectionStore.load(path)
        )
        warm.register_pool(fast_slow_pool)
        outcome = warm.launch(
            ServeRequest(
                kernel="axpy",
                args=make_axpy_args(512, config),
                workload_units=512,
            )
        )
        assert outcome.store_hit
        assert not outcome.profiled

    def test_single_file_and_sharded_store_agree(
        self, config, fast_slow_pool
    ):
        """Same traffic, same selections, whichever store backs it."""
        from repro.device import make_cpu
        from tests.conftest import make_axpy_args

        def serve(store):
            scheduler = LaunchScheduler((make_cpu(config),), store=store)
            scheduler.register_pool(fast_slow_pool)
            outcome = scheduler.launch(
                ServeRequest(
                    kernel="axpy",
                    args=make_axpy_args(512, config),
                    workload_units=512,
                )
            )
            return outcome.result.selected, outcome.workload_class

        assert serve(SelectionStore()) == serve(
            ShardedSelectionStore(shards=4)
        )
