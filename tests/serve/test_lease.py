"""Profile-lease table: single holder, release discipline, stealing."""

from repro.serve.lease import ProfileLeaseTable


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAcquire:
    def test_first_acquire_granted(self):
        table = ProfileLeaseTable()
        assert table.acquire("key", 1) == ProfileLeaseTable.GRANTED

    def test_second_acquire_denied_while_held(self):
        table = ProfileLeaseTable()
        table.acquire("key", 1)
        assert table.acquire("key", 2) is None

    def test_distinct_classes_independent(self):
        table = ProfileLeaseTable()
        assert table.acquire("a", 1) == ProfileLeaseTable.GRANTED
        assert table.acquire("b", 2) == ProfileLeaseTable.GRANTED

    def test_release_then_reacquire(self):
        table = ProfileLeaseTable()
        table.acquire("key", 1)
        assert table.release("key", 1)
        assert table.acquire("key", 2) == ProfileLeaseTable.GRANTED


class TestSteal:
    def test_stale_lease_stolen(self):
        clock = FakeClock()
        table = ProfileLeaseTable(timeout=10.0, clock=clock)
        table.acquire("key", 1)
        clock.advance(11.0)
        assert table.acquire("key", 2) == ProfileLeaseTable.STOLEN
        assert table.steals == 1

    def test_fresh_lease_not_stolen(self):
        clock = FakeClock()
        table = ProfileLeaseTable(timeout=10.0, clock=clock)
        table.acquire("key", 1)
        clock.advance(9.0)
        assert table.acquire("key", 2) is None

    def test_no_timeout_means_no_steal(self):
        clock = FakeClock()
        table = ProfileLeaseTable(timeout=None, clock=clock)
        table.acquire("key", 1)
        clock.advance(1e9)
        assert table.acquire("key", 2) is None

    def test_old_holder_release_is_noop_after_steal(self):
        clock = FakeClock()
        table = ProfileLeaseTable(timeout=10.0, clock=clock)
        table.acquire("key", 1)
        clock.advance(11.0)
        table.acquire("key", 2)
        assert not table.release("key", 1)  # stolen from under holder 1
        assert table.held("key")
        assert table.release("key", 2)
        assert not table.held("key")


class TestDefer:
    """Backpressure deferral is *not* a lease — it must never block a
    later profile attempt the way an orphaned lease entry would."""

    def test_defer_creates_no_lease_entry(self):
        table = ProfileLeaseTable()
        assert table.defer("key") == ProfileLeaseTable.DEFERRED
        assert not table.held("key")
        assert len(table) == 0

    def test_acquire_still_granted_after_defer(self):
        # The regression this guards: a deferral that left a lease
        # entry behind would deny the post-pressure profile (or force a
        # steal-timeout wait), wedging the class cold forever.
        table = ProfileLeaseTable()
        table.defer("key")
        assert table.acquire("key", 1) == ProfileLeaseTable.GRANTED

    def test_defer_counters_distinct_from_grants(self):
        table = ProfileLeaseTable()
        table.defer("a")
        table.defer("a")
        table.defer("b")
        assert table.deferrals == 3
        assert table.deferred_count("a") == 2
        assert table.deferred_count("b") == 1
        assert table.deferred_count("cold") == 0
        assert table.deferred_count() == 3
        table.acquire("a", 1)
        assert table.grants == 1
        assert table.deferrals == 3  # grants don't bleed into deferrals

    def test_defer_does_not_disturb_held_lease(self):
        table = ProfileLeaseTable()
        table.acquire("key", 1)
        assert table.defer("key") == ProfileLeaseTable.DEFERRED
        assert table.held("key")
        assert table.release("key", 1)

    def test_deferred_marker_distinct_from_lease_states(self):
        assert ProfileLeaseTable.DEFERRED not in (
            ProfileLeaseTable.GRANTED,
            ProfileLeaseTable.STOLEN,
        )
