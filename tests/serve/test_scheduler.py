"""Scheduler behaviour: one micro-profile per class, warm stores,
invalidation, and concurrent traces that still reconcile."""

import threading

import pytest

from repro.config import ReproConfig
from repro.device import make_cpu
from repro.errors import ServeError
from repro.obs.export import reconcile
from repro.obs.events import EventKind
from repro.serve import LaunchScheduler, SelectionStore, ServeRequest
from repro.workloads.base import BenchmarkCase
from repro.harness import run_served
from tests.conftest import axpy_output_ok, make_axpy_args

UNITS = 512


def make_fleet(config, count=4):
    """A homogeneous simulated CPU fleet."""
    return tuple(make_cpu(config) for _ in range(count))


def make_batch(config, count, units=UNITS):
    """Identical-class requests with fresh argument mappings each."""
    return [
        ServeRequest(
            kernel="axpy",
            args=make_axpy_args(units, config),
            workload_units=units,
        )
        for _ in range(count)
    ]


def make_scheduler(config, pool, devices=4, **kwargs):
    scheduler = LaunchScheduler(make_fleet(config, devices), **kwargs)
    scheduler.register_pool(pool)
    return scheduler


class TestSingleProfilePerClass:
    def test_concurrent_same_class_profiles_once(self, fast_slow_pool, config):
        scheduler = make_scheduler(config, fast_slow_pool)
        batch = make_batch(config, 16)
        outcomes = scheduler.serve_all(batch, clients=8)
        assert sum(o.profiled for o in outcomes) == 1
        assert len({o.workload_class for o in outcomes}) == 1
        for request in batch:
            assert axpy_output_ok(request.args)

    def test_two_threads_one_microprofile(self, fast_slow_pool, config):
        """The ISSUE regression: a same-class race must not double-profile."""
        scheduler = make_scheduler(config, fast_slow_pool, devices=2)
        barrier = threading.Barrier(2)
        outcomes = []
        lock = threading.Lock()

        def client():
            request = ServeRequest(
                kernel="axpy",
                args=make_axpy_args(UNITS, config),
                workload_units=UNITS,
            )
            barrier.wait()
            outcome = scheduler.launch(request)
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=client) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(o.profiled for o in outcomes) == 1
        loser = next(o for o in outcomes if not o.profiled)
        assert loser.lease is None

    def test_distinct_classes_profile_independently(
        self, fast_slow_pool, config
    ):
        scheduler = make_scheduler(config, fast_slow_pool)
        batch = make_batch(config, 4, units=256) + make_batch(
            config, 4, units=4096
        )
        outcomes = scheduler.serve_all(batch, clients=4)
        assert len({o.workload_class for o in outcomes}) == 2
        assert sum(o.profiled for o in outcomes) == 2

    def test_profiled_launch_publishes_selection(self, fast_slow_pool, config):
        scheduler = make_scheduler(config, fast_slow_pool)
        scheduler.serve_all(make_batch(config, 8), clients=4)
        assert len(scheduler.store) == 1
        (key,) = scheduler.store.keys()
        entry = scheduler.store.lookup(key)
        assert entry.selected == "fast"
        assert entry.kernel == "axpy"


class TestWarmStore:
    def test_warm_store_eliminates_profiling(
        self, fast_slow_pool, config, tmp_path
    ):
        path = str(tmp_path / "store.json")
        cold = make_scheduler(config, fast_slow_pool)
        cold.serve_all(make_batch(config, 8), clients=4)
        cold.store.save(path)

        warm = make_scheduler(
            config, fast_slow_pool, store=SelectionStore.load(path)
        )
        outcomes = warm.serve_all(make_batch(config, 8), clients=4)
        assert sum(o.profiled for o in outcomes) == 0
        assert all(o.store_hit for o in outcomes)
        assert all(o.result.selected == "fast" for o in outcomes)
        assert warm.stats.profiling_latency_cycles == 0.0

    def test_initial_registration_keeps_loaded_entries(
        self, fast_slow_pool, config, tmp_path
    ):
        """Startup pool registration must not evict a freshly-loaded store."""
        path = str(tmp_path / "store.json")
        cold = make_scheduler(config, fast_slow_pool)
        cold.serve_all(make_batch(config, 4), clients=2)
        cold.store.save(path)

        store = SelectionStore.load(path)
        assert len(store) == 1
        make_scheduler(config, fast_slow_pool, store=store)
        assert len(store) == 1


class TestInvalidation:
    def test_reregistration_evicts_persisted_selections(
        self, fast_slow_pool, config
    ):
        scheduler = make_scheduler(config, fast_slow_pool)
        scheduler.serve_all(make_batch(config, 4), clients=2)
        assert len(scheduler.store) == 1
        scheduler.register_pool(fast_slow_pool)  # replacement, not startup
        assert len(scheduler.store) == 0

    def test_next_request_reprofiles_after_invalidation(
        self, fast_slow_pool, config
    ):
        scheduler = make_scheduler(config, fast_slow_pool)
        scheduler.serve_all(make_batch(config, 4), clients=2)
        scheduler.register_pool(fast_slow_pool)
        outcomes = scheduler.serve_all(make_batch(config, 4), clients=2)
        assert sum(o.profiled for o in outcomes) == 1


class TestTraces:
    def test_concurrent_device_traces_reconcile(self, fast_slow_pool):
        config = ReproConfig(trace=True)
        scheduler = make_scheduler(config, fast_slow_pool)
        scheduler.serve_all(make_batch(config, 16), clients=8)
        traces = scheduler.device_traces()
        assert any(events for events in traces.values())
        for device, events in traces.items():
            assert reconcile(events) == [], device

    def test_scheduler_trace_records_serving_events(self, fast_slow_pool):
        config = ReproConfig(trace=True)
        scheduler = make_scheduler(config, fast_slow_pool)
        scheduler.serve_all(make_batch(config, 8), clients=4)
        kinds = [event.kind for event in scheduler.tracer.events]
        assert kinds.count(EventKind.SERVE_ENQUEUE) == 8
        assert kinds.count(EventKind.SERVE_ADMIT) == 8
        assert kinds.count(EventKind.PROFILE_LEASE_GRANT) == 1
        assert kinds.count(EventKind.STORE_HIT) >= 1


class TestFleet:
    def test_requires_a_device(self):
        with pytest.raises(ServeError):
            LaunchScheduler(())

    def test_unknown_device_name_rejected(self, fast_slow_pool, config):
        scheduler = make_scheduler(config, fast_slow_pool, devices=2)
        assert scheduler.devices == ("cpu0", "cpu1")
        with pytest.raises(ServeError):
            scheduler.runtime("tpu9")

    def test_outcomes_preserve_request_order(self, fast_slow_pool, config):
        scheduler = make_scheduler(config, fast_slow_pool)
        batch = make_batch(config, 8)
        outcomes = scheduler.serve_all(batch, clients=4)
        assert [o.request for o in outcomes] == batch

    def test_accounting_covers_every_request(self, fast_slow_pool, config):
        scheduler = make_scheduler(config, fast_slow_pool)
        outcomes = scheduler.serve_all(make_batch(config, 12), clients=8)
        stats = scheduler.stats
        assert stats.requests == 12
        assert (
            stats.profiled_launches + stats.store_hits + stats.eager_launches
            == 12
        )
        assert sum(stats.per_device.values()) == 12
        assert set(stats.per_device) <= set(scheduler.devices)
        assert 0.0 < stats.profile_rate <= 1.0
        assert sum(o.profiled for o in outcomes) == stats.profiled_launches

    def test_serve_all_rejects_bad_client_count(self, fast_slow_pool, config):
        scheduler = make_scheduler(config, fast_slow_pool)
        with pytest.raises(ServeError):
            scheduler.serve_all([], clients=0)


class TestHarnessEntryPoint:
    def test_run_served_validates_and_returns_scheduler(
        self, fast_slow_pool, config
    ):
        case = BenchmarkCase(
            name="axpy/serve",
            pool=fast_slow_pool,
            make_args=lambda: make_axpy_args(UNITS, config),
            workload_units=UNITS,
            check=axpy_output_ok,
        )
        outcomes, scheduler = run_served(
            case, make_fleet(config), requests=8, clients=4, config=config
        )
        assert len(outcomes) == 8
        assert sum(o.profiled for o in outcomes) == 1
        assert scheduler.stats.requests == 8
