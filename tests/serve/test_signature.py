"""Workload-signature derivation: input-aware keys with stable buckets."""

import numpy as np

from repro.config import ReproConfig
from repro.kernel.buffers import Buffer
from repro.serve.signature import (
    WorkloadSignature,
    derive_signature,
    log2_bucket,
)
from repro.workloads.matrices import diagonal_csr, random_csr


def _buffer_args(elements):
    return {
        "x": Buffer("x", np.zeros(elements, dtype=np.float32), writable=False),
        "y": Buffer("y", np.zeros(elements, dtype=np.float32)),
    }


class TestBuckets:
    def test_log2_bucket_doubles_per_bucket(self):
        assert log2_bucket(1) == 0
        assert log2_bucket(2) == 1
        assert log2_bucket(1023) == 9
        assert log2_bucket(1024) == 10

    def test_small_values_collapse(self):
        assert log2_bucket(0) == 0
        assert log2_bucket(0.5) == 0


class TestDerivation:
    def test_key_is_deterministic(self):
        args = _buffer_args(4096)
        a = derive_signature("k", "cpu", args, 64)
        b = derive_signature("k", "cpu", args, 64)
        assert a == b
        assert a.key == b.key

    def test_key_separates_device_kinds(self):
        args = _buffer_args(4096)
        cpu = derive_signature("k", "cpu", args, 64)
        gpu = derive_signature("k", "gpu", args, 64)
        assert cpu.key != gpu.key

    def test_key_separates_size_regimes(self):
        small = derive_signature("k", "cpu", _buffer_args(1 << 10), 16)
        large = derive_signature("k", "cpu", _buffer_args(1 << 20), 16384)
        assert small.key != large.key

    def test_nearby_sizes_share_a_key(self):
        a = derive_signature("k", "cpu", _buffer_args(4096), 100)
        b = derive_signature("k", "cpu", _buffer_args(4100), 101)
        assert a.key == b.key

    def test_scalar_args_are_ignored(self):
        args = _buffer_args(4096)
        a = derive_signature("k", "cpu", args, 64)
        b = derive_signature("k", "cpu", {**args, "alpha": 2.0}, 64)
        assert a.key == b.key


class TestSparseFeatures:
    """The §4.4 motivation: regularity must separate workload classes."""

    def test_random_vs_diagonal_matrices_differ(self):
        config = ReproConfig()
        random = random_csr(2048, 2048, 0.01, config)
        diagonal = diagonal_csr(2048)
        a = derive_signature("spmv", "cpu", {"matrix": random}, 512)
        b = derive_signature("spmv", "cpu", {"matrix": diagonal}, 512)
        assert a.key != b.key

    def test_same_distribution_shares_a_key(self):
        config = ReproConfig()
        a_mat = random_csr(2048, 2048, 0.01, config)
        b_mat = random_csr(2048, 2048, 0.01, ReproConfig(seed=7))
        a = derive_signature("spmv", "cpu", {"matrix": a_mat}, 512)
        b = derive_signature("spmv", "cpu", {"matrix": b_mat}, 512)
        assert a.key == b.key

    def test_sparse_features_present_in_key(self):
        matrix = diagonal_csr(2048)
        sig = derive_signature("spmv", "cpu", {"matrix": matrix}, 512)
        names = dict(sig.features)
        assert "matrix.cv" in names
        assert "matrix.density^10" in names
        assert "matrix.rownnz^2" in names


class TestExplicitSignature:
    def test_key_round_trips_fields(self):
        sig = WorkloadSignature(
            kernel="k", device_kind="cpu", features=(("a", "1"),)
        )
        assert sig.key == "k|cpu|a=1"
        assert str(sig) == sig.key
