"""Workload-signature derivation: input-aware keys with stable buckets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ReproConfig
from repro.kernel.buffers import Buffer
from repro.serve.signature import (
    WorkloadSignature,
    derive_signature,
    log2_bucket,
)
from repro.workloads.matrices import diagonal_csr, random_csr


class FakeCSR:
    """Duck-typed CSR surface with arbitrary (possibly inconsistent)
    shape statistics, for exercising degenerate inputs."""

    def __init__(self, rows, cols, nnz, row_nnz):
        self.rows = rows
        self.cols = cols
        self.nnz = nnz
        self.row_nnz = np.asarray(row_nnz, dtype=float)


def _buffer_args(elements):
    return {
        "x": Buffer("x", np.zeros(elements, dtype=np.float32), writable=False),
        "y": Buffer("y", np.zeros(elements, dtype=np.float32)),
    }


class TestBuckets:
    def test_log2_bucket_doubles_per_bucket(self):
        assert log2_bucket(1) == 0
        assert log2_bucket(2) == 1
        assert log2_bucket(1023) == 9
        assert log2_bucket(1024) == 10

    def test_small_values_collapse(self):
        assert log2_bucket(0) == 0
        assert log2_bucket(0.5) == 0


class TestDerivation:
    def test_key_is_deterministic(self):
        args = _buffer_args(4096)
        a = derive_signature("k", "cpu", args, 64)
        b = derive_signature("k", "cpu", args, 64)
        assert a == b
        assert a.key == b.key

    def test_key_separates_device_kinds(self):
        args = _buffer_args(4096)
        cpu = derive_signature("k", "cpu", args, 64)
        gpu = derive_signature("k", "gpu", args, 64)
        assert cpu.key != gpu.key

    def test_key_separates_size_regimes(self):
        small = derive_signature("k", "cpu", _buffer_args(1 << 10), 16)
        large = derive_signature("k", "cpu", _buffer_args(1 << 20), 16384)
        assert small.key != large.key

    def test_nearby_sizes_share_a_key(self):
        a = derive_signature("k", "cpu", _buffer_args(4096), 100)
        b = derive_signature("k", "cpu", _buffer_args(4100), 101)
        assert a.key == b.key

    def test_scalar_args_are_ignored(self):
        args = _buffer_args(4096)
        a = derive_signature("k", "cpu", args, 64)
        b = derive_signature("k", "cpu", {**args, "alpha": 2.0}, 64)
        assert a.key == b.key


class TestSparseFeatures:
    """The §4.4 motivation: regularity must separate workload classes."""

    def test_random_vs_diagonal_matrices_differ(self):
        config = ReproConfig()
        random = random_csr(2048, 2048, 0.01, config)
        diagonal = diagonal_csr(2048)
        a = derive_signature("spmv", "cpu", {"matrix": random}, 512)
        b = derive_signature("spmv", "cpu", {"matrix": diagonal}, 512)
        assert a.key != b.key

    def test_same_distribution_shares_a_key(self):
        config = ReproConfig()
        a_mat = random_csr(2048, 2048, 0.01, config)
        b_mat = random_csr(2048, 2048, 0.01, ReproConfig(seed=7))
        a = derive_signature("spmv", "cpu", {"matrix": a_mat}, 512)
        b = derive_signature("spmv", "cpu", {"matrix": b_mat}, 512)
        assert a.key == b.key

    def test_sparse_features_present_in_key(self):
        matrix = diagonal_csr(2048)
        sig = derive_signature("spmv", "cpu", {"matrix": matrix}, 512)
        names = dict(sig.features)
        assert "matrix.cv" in names
        assert "matrix.density^10" in names
        assert "matrix.rownnz^2" in names


class TestDegenerateSparseInputs:
    """nnz == 0 / empty row_nnz / density >= 1 must neither raise nor
    alias with well-formed classes (the satellite bugfix)."""

    def test_zero_nnz_emits_explicit_empty_feature(self):
        sig = derive_signature(
            "spmv", "cpu", {"m": FakeCSR(64, 64, 0, np.zeros(64))}, 256
        )
        names = dict(sig.features)
        assert names["m.empty"] == "1"
        assert "m.density^10" not in names

    def test_zero_rows_emits_explicit_empty_feature(self):
        sig = derive_signature(
            "spmv", "cpu", {"m": FakeCSR(0, 0, 0, [])}, 256
        )
        assert dict(sig.features)["m.empty"] == "1"

    def test_empty_does_not_alias_with_one_entry(self):
        empty = derive_signature(
            "spmv", "cpu", {"m": FakeCSR(64, 64, 0, np.zeros(64))}, 256
        )
        one = derive_signature(
            "spmv", "cpu",
            {"m": FakeCSR(64, 64, 1, [1.0] + [0.0] * 63)}, 256,
        )
        assert empty.key != one.key

    def test_full_density_buckets_at_zero(self):
        sig = derive_signature(
            "spmv", "cpu", {"m": FakeCSR(8, 8, 64, [8.0] * 8)}, 256
        )
        assert dict(sig.features)["m.density^10"] == "0"

    def test_duplicate_entries_clamp_density_bucket(self):
        # nnz > rows*cols (duplicate COO entries): the decade would be
        # negative without the clamp.
        sig = derive_signature(
            "spmv", "cpu", {"m": FakeCSR(8, 8, 640, [80.0] * 8)}, 256
        )
        assert dict(sig.features)["m.density^10"] == "0"

    def test_constant_rows_have_cv_bucket_zero(self):
        sig = derive_signature(
            "spmv", "cpu", {"m": FakeCSR(16, 16, 64, [4.0] * 16)}, 256
        )
        assert dict(sig.features)["m.cv"] == "0"

    @settings(max_examples=200, deadline=None)
    @given(
        rows=st.integers(min_value=0, max_value=1 << 12),
        cols=st.integers(min_value=0, max_value=1 << 12),
        nnz=st.integers(min_value=0, max_value=1 << 24),
        row_nnz=st.lists(
            st.integers(min_value=0, max_value=1 << 16), max_size=64
        ),
        units=st.integers(min_value=0, max_value=1 << 20),
    )
    def test_never_raises_and_keys_are_stable(
        self, rows, cols, nnz, row_nnz, units
    ):
        args = {"m": FakeCSR(rows, cols, nnz, row_nnz)}
        first = derive_signature("spmv", "cpu", args, units)
        again = derive_signature("spmv", "cpu", args, units)
        assert first == again and first.key == again.key
        # Every emitted bucket is a non-negative integer, so the key is
        # parseable by the predictor's feature decoder.
        for name, value in first.features:
            assert value.isdigit(), (name, value)
        if nnz <= 0 or not row_nnz:
            assert dict(first.features).get("m.empty") == "1"


class TestExplicitSignature:
    def test_key_round_trips_fields(self):
        sig = WorkloadSignature(
            kernel="k", device_kind="cpu", features=(("a", "1"),)
        )
        assert sig.key == "k|cpu|a=1"
        assert str(sig) == sig.key
