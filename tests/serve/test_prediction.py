"""End-to-end predictive serving: train on profiled classes, skip the
micro-profile for unseen ones, fall back when unsure, learn from drift."""

from repro.config import ReproConfig
from repro.device import make_cpu
from repro.drift import DriftConfig
from repro.obs.events import EventKind
from repro.obs.export import reconcile
from repro.predict import PredictConfig
from repro.serve import (
    LaunchScheduler,
    SelectionStore,
    ServeRequest,
    WorkloadSignature,
)
from repro.workloads import spmv_csr
from tests.conftest import (
    axpy_output_ok,
    fast_slow_pool_build,
    make_axpy_args,
)

#: Distinct log2 buckets, all past the small-workload threshold.
TRAIN_UNITS = (512, 1024, 2048, 4096)
HELD_OUT_UNITS = 8192


def make_scheduler(config, store):
    scheduler = LaunchScheduler(
        (make_cpu(config),), config=config, store=store
    )
    scheduler.register_pool(fast_slow_pool_build())
    return scheduler


def axpy_request(units, config):
    return ServeRequest(
        kernel="axpy",
        args=make_axpy_args(units, config),
        workload_units=units,
    )


def events_of(tracer, kind):
    return [event for event in tracer.events if event.kind is kind]


class TestPredictedServing:
    def serve_trained(self, config, store):
        """Profile the four training classes, then serve the held-out
        one; returns (scheduler, training outcomes, held-out outcome)."""
        scheduler = make_scheduler(config, store)
        trained = [
            scheduler.launch(axpy_request(units, config))
            for units in TRAIN_UNITS
        ]
        held_out = scheduler.launch(
            axpy_request(HELD_OUT_UNITS, config)
        )
        return scheduler, trained, held_out

    def test_unseen_class_skips_the_microprofile(self):
        config = ReproConfig(trace=True)
        store = SelectionStore(predict=PredictConfig(min_examples=4))
        scheduler, trained, held_out = self.serve_trained(config, store)

        assert all(outcome.profiled for outcome in trained)
        assert not held_out.profiled
        assert not held_out.store_hit
        assert held_out.lease is not None
        assert held_out.result.reason.startswith(
            "predicted selection ('fast'"
        )
        assert held_out.result.selected == "fast"
        assert axpy_output_ok(held_out.request.args)

        assert scheduler.stats.profiled_launches == len(TRAIN_UNITS)
        assert scheduler.stats.predicted_launches == 1
        assert scheduler.stats.prediction_fallbacks == len(TRAIN_UNITS)

    def test_predicted_entry_is_flagged_and_serves_warm(self):
        config = ReproConfig()
        store = SelectionStore(predict=PredictConfig(min_examples=4))
        scheduler, trained, held_out = self.serve_trained(config, store)

        entry = store.peek(held_out.workload_class)
        assert entry is not None and entry.predicted
        for outcome in trained:
            assert not store.peek(outcome.workload_class).predicted
        # Predicted publishes never feed the training set.
        assert len(store.predictor) == len(TRAIN_UNITS)

        warm = scheduler.launch(axpy_request(HELD_OUT_UNITS, config))
        assert warm.store_hit and not warm.profiled

    def test_prediction_events_reconcile(self):
        config = ReproConfig(trace=True)
        store = SelectionStore(predict=PredictConfig(min_examples=4))
        scheduler, _, held_out = self.serve_trained(config, store)

        fallbacks = events_of(
            scheduler.tracer, EventKind.PREDICTION_FALLBACK
        )
        predictions = events_of(scheduler.tracer, EventKind.PREDICTION)
        assert len(fallbacks) == len(TRAIN_UNITS)
        assert all(
            event.args["reason"] == "untrained" for event in fallbacks
        )
        assert len(predictions) == 1
        assert predictions[0].args["variant"] == "fast"
        assert predictions[0].args["confidence"] >= 0.7
        assert predictions[0].args["workload_class"] == (
            held_out.workload_class
        )

        assert reconcile(scheduler.tracer.events) == []
        for events in scheduler.device_traces().values():
            assert reconcile(events) == []


class TestFallbacks:
    def test_below_threshold_falls_back_to_the_lease(self):
        config = ReproConfig(trace=True)
        store = SelectionStore(
            predict=PredictConfig(
                min_examples=2,
                min_leaf_weight=5.0,  # an impure 2-example leaf
                confidence_threshold=0.7,
            )
        )
        store.predictor.learn("axpy|cpu|units^2=9", "fast")
        store.predictor.learn("axpy|cpu|units^2=10", "slow")
        scheduler = make_scheduler(config, store)
        outcome = scheduler.launch(axpy_request(512, config))

        assert outcome.profiled
        assert scheduler.stats.prediction_fallbacks == 1
        assert scheduler.stats.predicted_launches == 0
        (event,) = events_of(
            scheduler.tracer, EventKind.PREDICTION_FALLBACK
        )
        assert event.args["reason"] == "below threshold"
        assert event.args["confidence"] < 0.7

    def test_unarmed_store_serves_exactly_as_before(self):
        config = ReproConfig(trace=True)
        scheduler = make_scheduler(config, SelectionStore())
        outcome = scheduler.launch(axpy_request(512, config))
        assert outcome.profiled
        assert scheduler.stats.predicted_launches == 0
        assert scheduler.stats.prediction_fallbacks == 0
        assert not events_of(
            scheduler.tracer, EventKind.PREDICTION_FALLBACK
        )


class TestDriftCorrection:
    """A drift confirmation on a *predicted* entry feeds the measured
    winner back as a weighted training correction."""

    SIZE = 2048
    PER_PHASE = 10

    def pinned_signature(self, kernel):
        return WorkloadSignature(
            kernel=kernel,
            device_kind="cpu",
            features=(("class", "pinned"),),
        )

    def traffic(self, config):
        cases = [
            spmv_csr.input_dependent_case("cpu", kind, self.SIZE, config)
            for kind in ("random", "diagonal")
        ]
        signature = self.pinned_signature(cases[0].pool.name)
        batch = [
            ServeRequest(
                kernel=case.pool.name,
                args=case.fresh_args(),
                workload_units=case.workload_units,
                signature=signature,
            )
            for case in cases
            for _ in range(self.PER_PHASE)
        ]
        return cases, batch, signature

    def random_winner(self, config):
        """The measured winner for the random matrix (the label the
        predictor starts out believing)."""
        cases, batch, _ = self.traffic(config)
        scout = LaunchScheduler(
            (make_cpu(config),), config=config, store=SelectionStore()
        )
        scout.register_pool(cases[0].pool)
        return scout.launch(batch[0]).result.selected

    def test_reselection_corrects_the_predictor(self):
        config = ReproConfig()
        stale_winner = self.random_winner(config)
        store = SelectionStore(
            drift=DriftConfig(warmup=4, confirm=2, cooldown=4),
            predict=PredictConfig(
                min_examples=1, confidence_threshold=0.6
            ),
        )
        cases, batch, signature = self.traffic(config)
        key = signature.key
        store.predictor.learn(key, stale_winner)

        scheduler = LaunchScheduler(
            (make_cpu(config),), config=config, store=store
        )
        scheduler.register_pool(cases[0].pool)
        outcomes = [scheduler.launch(request) for request in batch]

        # The cold first request was served by the predictor, not a
        # micro-profile.
        first = outcomes[0]
        assert not first.profiled
        assert first.result.reason.startswith("predicted selection")
        assert first.result.selected == stale_winner

        # The diagonal phase drifted, one re-profile closed the episode
        # with a different winner, and the mistake was fed back.
        controller = store.drift
        assert controller.reselections == 1
        (episode,) = [e for e in controller.episodes if e.completed]
        assert episode.stale_variant == stale_winner
        assert episode.new_variant != stale_winner
        assert store.predictor.stats.corrections == 1
        corrected = store.predictor.predict(key)
        assert corrected.variant == episode.new_variant
        # The re-measured entry replaced the predicted one.
        assert not store.peek(key).predicted
