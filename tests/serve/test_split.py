"""Work splitting: one large launch, many devices, stitched output.

Covers the pure partitioner, the scheduler's split path (explicit and
threshold-promoted), the never-profile invariant of split parts, and the
trace/reconcile story for ranged launches.
"""

import pytest

from repro.config import ReproConfig
from repro.device import make_cpu, make_gpu
from repro.errors import ServeError
from repro.obs.events import EventKind
from repro.obs.export import reconcile, summarize
from repro.serve import (
    LaunchScheduler,
    ServeRequest,
    SplitOutcome,
    partition_units,
)
from repro.workloads import spmv_csr

SIZE = 1024  # -> 256 workload units; mixed-fleet alignment is 32


def fleet_scheduler(config, cpus=2, gpus=2, **kwargs):
    devices = tuple(make_cpu(config) for _ in range(cpus)) + tuple(
        make_gpu(config) for _ in range(gpus)
    )
    scheduler = LaunchScheduler(devices, **kwargs)
    if cpus:
        scheduler.register_pool(
            spmv_csr.input_dependent_case("cpu", "random", SIZE, config).pool,
            device_kind="cpu",
        )
    if gpus:
        scheduler.register_pool(
            spmv_csr.input_dependent_case("gpu", "random", SIZE, config).pool,
            device_kind="gpu",
        )
    return scheduler


def spmv_case(config):
    return spmv_csr.input_dependent_case("cpu", "random", SIZE, config)


def spmv_request(config, **kwargs):
    case = spmv_case(config)
    return ServeRequest(
        kernel=case.pool.name,
        args=case.fresh_args(),
        workload_units=case.workload_units,
        **kwargs,
    )


class TestPartitionUnits:
    def test_equal_weights_equal_parts(self):
        assert partition_units(128, [1.0, 1.0], 32) == [(0, 64), (64, 128)]

    def test_weights_skew_the_cut(self):
        ranges = partition_units(128, [3.0, 1.0], 32)
        assert ranges == [(0, 96), (96, 128)]

    def test_cuts_are_aligned_tail_takes_remainder(self):
        ranges = partition_units(100, [1.0, 1.0, 1.0], 16)
        assert ranges[-1][1] == 100
        for start, _ in ranges:
            assert start % 16 == 0
        # Contiguous, monotone cover of [0, units).
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start

    def test_single_weight_is_whole_range(self):
        assert partition_units(50, [1.0], 8) == [(0, 50)]

    def test_zero_total_weight_is_whole_range(self):
        assert partition_units(50, [0.0, 0.0], 8) == [(0, 50)]

    def test_rounding_may_collapse_a_part(self):
        ranges = partition_units(32, [0.01, 1.0], 32)
        assert (0, 0) in ranges  # callers skip empty parts

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ServeError, match="units"):
            partition_units(-1, [1.0], 1)
        with pytest.raises(ServeError, match="align"):
            partition_units(8, [1.0], 0)


class TestExplicitSplit:
    def test_split_covers_range_and_validates(self, config):
        scheduler = fleet_scheduler(config)
        case = spmv_case(config)
        request = spmv_request(config, split=4)
        outcome = scheduler.launch(request)
        assert isinstance(outcome, SplitOutcome)
        assert len(outcome.parts) > 1
        # Ranges are disjoint, contiguous, aligned, and cover the whole.
        assert outcome.ranges[0][0] == 0
        assert outcome.ranges[-1][1] == case.workload_units
        for (_, end), (start, _) in zip(outcome.ranges, outcome.ranges[1:]):
            assert end == start
        for start, _ in outcome.ranges:
            assert start % 32 == 0
        assert case.check(request.args)

    def test_split_output_matches_unsplit_output(self, config):
        split_request = spmv_request(config, split=4)
        whole_request = spmv_request(config)
        fleet_scheduler(config).launch(split_request)
        fleet_scheduler(config).launch(whole_request)
        assert (
            split_request.args["y"].data == whole_request.args["y"].data
        ).all()

    def test_parts_never_profile_or_publish(self, config):
        scheduler = fleet_scheduler(config)
        outcome = scheduler.launch(spmv_request(config, split=4))
        assert all(not part.profiled for part in outcome.parts)
        assert all(part.lease is None for part in outcome.parts)
        assert len(scheduler.store) == 0
        assert scheduler.stats.split_launches == 1

    def test_part_placements_labelled(self, config):
        outcome = fleet_scheduler(config).launch(
            spmv_request(config, split=3)
        )
        for i, part in enumerate(outcome.parts):
            assert part.placement == f"split part {i + 1}/{len(outcome.parts)}"

    def test_stitched_elapsed_is_slowest_part(self, config):
        outcome = fleet_scheduler(config).launch(
            spmv_request(config, split=4)
        )
        assert outcome.elapsed_cycles == max(
            part.result.elapsed_cycles for part in outcome.parts
        )
        assert outcome.devices == tuple(p.device for p in outcome.parts)

    def test_pinned_kind_split_stays_on_kind(self, config):
        outcome = fleet_scheduler(config).launch(
            spmv_request(config, split=4, device_kind="gpu")
        )
        assert all(device.startswith("gpu") for device in outcome.devices)

    def test_split_one_is_a_whole_launch(self, config):
        scheduler = fleet_scheduler(config)
        outcome = scheduler.launch(spmv_request(config, split=1))
        assert not isinstance(outcome, SplitOutcome)
        assert outcome.profiled  # the normal cold path still profiles


class TestDegradation:
    def test_single_device_fleet_degrades_to_one_part(self, config):
        scheduler = fleet_scheduler(config, cpus=1, gpus=0)
        outcome = scheduler.launch_split(spmv_request(config), parts=8)
        assert isinstance(outcome, SplitOutcome)
        assert len(outcome.parts) == 1
        assert outcome.ranges == ((0, 256),)

    def test_tiny_workload_degrades_to_one_part(self, config):
        scheduler = fleet_scheduler(config)
        case = spmv_csr.input_dependent_case("cpu", "random", 200, config)
        request = ServeRequest(
            kernel=case.pool.name,
            args=case.fresh_args(),
            workload_units=case.workload_units,  # 50 < 2 * align
            split=4,
        )
        outcome = scheduler.launch(request)
        assert len(outcome.parts) == 1
        assert case.check(request.args)

    def test_degraded_single_part_still_profiles(self, config):
        """A degraded split is a whole launch, so the cold path keeps
        its one-microprofile-per-class behavior."""
        scheduler = fleet_scheduler(config, cpus=1, gpus=0)
        outcome = scheduler.launch_split(spmv_request(config), parts=8)
        assert outcome.parts[0].profiled
        assert len(scheduler.store) == 1


class TestAutoSplit:
    def test_threshold_promotes_large_launches(self, config):
        scheduler = fleet_scheduler(config, split_threshold=128)
        outcome = scheduler.launch(spmv_request(config))
        assert isinstance(outcome, SplitOutcome)
        assert len(outcome.parts) > 1

    def test_threshold_leaves_small_launches_whole(self, config):
        scheduler = fleet_scheduler(config, split_threshold=1024)
        outcome = scheduler.launch(spmv_request(config))
        assert not isinstance(outcome, SplitOutcome)

    def test_bad_threshold_rejected(self, config):
        with pytest.raises(ServeError, match="split_threshold"):
            LaunchScheduler((make_cpu(config),), split_threshold=0)


class TestSplitTracing:
    def test_split_launch_event_and_summary(self):
        config = ReproConfig(trace=True)
        scheduler = fleet_scheduler(config)
        outcome = scheduler.launch(spmv_request(config, split=4))
        event = next(
            e
            for e in scheduler.tracer.events
            if e.kind is EventKind.SPLIT_LAUNCH
        )
        assert event.args["parts"] == len(outcome.parts)
        assert tuple(tuple(r) for r in event.args["ranges"]) == (
            outcome.ranges
        )
        summary = summarize(scheduler.tracer.events)
        assert summary.split_launches == 1
        assert "split launch(es)" in summary.format()

    def test_ranged_launch_traces_reconcile(self):
        config = ReproConfig(trace=True)
        scheduler = fleet_scheduler(config)
        scheduler.launch(spmv_request(config, split=4))
        scheduler.launch(spmv_request(config))
        for events in scheduler.device_traces().values():
            assert reconcile(events) == []

    def test_ranged_launch_begin_records_work_range(self):
        config = ReproConfig(trace=True)
        scheduler = fleet_scheduler(config)
        outcome = scheduler.launch(spmv_request(config, split=4))
        begins = [
            e
            for events in scheduler.device_traces().values()
            for e in events
            if e.kind is EventKind.LAUNCH_BEGIN and "work_start" in e.args
        ]
        assert len(begins) == len(outcome.parts)
        spans = sorted(
            (e.args["work_start"], e.args["work_end"]) for e in begins
        )
        assert tuple(spans) == outcome.ranges
