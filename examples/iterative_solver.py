"""Iterative eigensolver with DySel-selected spmv (Case Study IV live).

The paper's motivating iterative scenario (§3.1): spmv inside an
iterative solver (CG, power iteration, ...) launches once per step with
an unchanging matrix, so DySel profiles the first launch and reuses the
selection afterwards (the profiling activation flag).  Here: power
iteration for the dominant eigenvalue.

The same solver code runs against two matrices:

* a random sparse matrix — long rows, where the GPU's *vector* (warp per
  row) kernel wins;
* a diagonal matrix — single-nonzero rows, where vector wastes 31 of 32
  lanes and the *scalar* kernel wins by an order of magnitude.

DySel flips its choice per input with no solver changes.

Run:  python examples/iterative_solver.py
"""

import numpy as np

from repro import DySelRuntime, ReproConfig, make_gpu
from repro.kernel.buffers import Buffer
from repro.workloads import spmv_csr
from repro.workloads.matrices import CsrMatrix


def power_iterate(
    runtime: DySelRuntime,
    matrix: CsrMatrix,
    v0: np.ndarray,
    iterations: int = 25,
) -> float:
    """Power iteration estimating |lambda_max|, A·v through DySel.

    The launch pattern is the interesting part: the matrix never changes
    across iterations, so the kernel is profiled once (activation flag,
    paper §3.1) and every later launch reuses the selection.
    """
    units = spmv_csr.workload_units(matrix)
    v = (v0 / np.linalg.norm(v0)).astype(np.float32)
    eigenvalue = 0.0

    for iteration in range(iterations):
        args = {
            "matrix": matrix,
            "val": Buffer("val", matrix.data, writable=False),
            "col": Buffer("col", matrix.indices, writable=False),
            "x": Buffer("x", v, writable=False),
            "y": Buffer("y", np.zeros(matrix.rows, dtype=np.float32)),
        }
        # Profile only the first iteration (activation flag, paper §3.1).
        result = runtime.launch_kernel(
            "spmv_csr", args, units, profiling=(iteration == 0)
        )
        if iteration == 0:
            print(
                f"  first iteration profiled: selected {result.selected!r} "
                f"({result.mode.value} mode)"
            )
        av = args["y"].data
        eigenvalue = float(np.linalg.norm(av))
        if eigenvalue < 1e-12:
            break
        v = (av / eigenvalue).astype(np.float32)
    return eigenvalue


def run_for(matrix: CsrMatrix, label: str, config: ReproConfig) -> None:
    print(f"\n=== {label} ({matrix.rows}x{matrix.cols}, nnz={matrix.nnz}) ===")
    runtime = DySelRuntime(make_gpu(config), config)
    pool_case = spmv_csr.input_dependent_case("gpu", "random", 1024, config)
    runtime.register_pool(pool_case.pool)

    rng = config.rng("cg", label)
    v0 = rng.standard_normal(matrix.rows).astype(np.float32)
    eigenvalue = power_iterate(runtime, matrix, v0)
    print(f"  dominant |eigenvalue| estimate: {eigenvalue:.3f}")
    cached = runtime.cache.lookup("spmv_csr")
    assert cached is not None
    print(f"  cached selection reused for later iterations: {cached.selected!r}")
    print(f"  total simulated time: {runtime.engine.now:,.0f} cycles "
          f"across {runtime.engine.launch_count} kernel launches")


def main() -> None:
    config = ReproConfig()
    run_for(spmv_csr.get_matrix("random", 4096, config), "random matrix", config)
    run_for(
        spmv_csr.get_matrix("diagonal", 65536, config), "diagonal matrix", config
    )
    print(
        "\nSame solver, same pool — DySel picked the vector kernel for the "
        "random matrix\nand the scalar kernel for the diagonal one, from "
        "one first-iteration micro-profile each."
    )


if __name__ == "__main__":
    main()
