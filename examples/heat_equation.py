"""PDE time-stepping with a DySel-scheduled stencil (Case Study I live).

A 3-D heat-equation stepper (Jacobi 7-point) on the simulated CPU.  The
compiler's LC pass produces six work-item/loop schedules; instead of
trusting its static pick, the solver registers all six with DySel, which
profiles the first time step and runs the rest with the measured best —
the paper's recommended deployment for "stencil operations in PDE
solvers" (§3.1).

The script also reports what the LC heuristic alone would have chosen,
and what the worst schedule would have cost.

Run:  python examples/heat_equation.py
"""

import numpy as np

from repro import DySelRuntime, ReproConfig, make_cpu
from repro.compiler.heuristics.lc import lc_select_schedule
from repro.device.engine import ExecutionEngine, Priority
from repro.kernel import WorkRange
from repro.kernel.buffers import Buffer
from repro.workloads import stencil

GRID = (128, 128, 16)
TIME_STEPS = 40


def time_step(runtime, grid, state, profiling):
    """One Jacobi step through DySel; returns the new state array."""
    args = {
        "grid": grid,
        "a_in": Buffer("a_in", state, writable=False),
        "a_out": Buffer("a_out", np.zeros_like(state)),
    }
    result = runtime.launch_kernel(
        "stencil", args, stencil.workload_units(grid), profiling=profiling
    )
    return args["a_out"].data, result


def pure_run(device, case, variant_name, steps, config):
    """Reference: run the whole stepping loop with one fixed schedule."""
    engine = ExecutionEngine(device, config)
    variant = case.pool.variant(variant_name)
    args = case.fresh_args()
    for _ in range(steps):
        engine.wait(
            engine.submit(
                variant,
                args,
                WorkRange(0, case.workload_units),
                priority=Priority.BATCH,
            )
        )
    return engine.now


def main() -> None:
    config = ReproConfig()
    device = make_cpu(config)
    case = stencil.schedule_case(GRID, config)
    print(f"schedule family: {len(case.pool.variants)} loop orders")

    runtime = DySelRuntime(device, config)
    runtime.register_pool(case.pool)

    rng = config.rng("heat")
    nx, ny, nz = GRID
    state = rng.standard_normal((nz, ny, nx)).astype(np.float32)
    initial_energy = float(np.square(state).sum())

    for step in range(TIME_STEPS):
        state, result = time_step(runtime, GRID, state, profiling=(step == 0))
        if step == 0:
            print(f"profiled first step: selected {result.selected!r}")
    dysel_time = runtime.engine.now
    final_energy = float(np.square(state).sum())
    print(f"{TIME_STEPS} steps done; energy {initial_energy:,.0f} -> "
          f"{final_energy:,.0f} (diffusion smooths the field)")

    lc_pick = lc_select_schedule(stencil.schedule_family(GRID)).name
    times = {
        name: pure_run(device, case, name, TIME_STEPS, config)
        for name in case.pool.variant_names
    }
    best = min(times, key=times.get)
    worst = max(times, key=times.get)
    print(f"\nfixed-schedule reference runs ({TIME_STEPS} steps):")
    print(f"  best schedule : {best:<28} {times[best]:>14,.0f} cycles")
    print(f"  LC heuristic  : {lc_pick:<28} {times[lc_pick]:>14,.0f} cycles")
    print(f"  worst schedule: {worst:<28} {times[worst]:>14,.0f} cycles "
          f"({times[worst]/times[best]:.1f}x the best)")
    print(f"  DySel (incl. profiling): {dysel_time:>23,.0f} cycles "
          f"({dysel_time/times[best]:.3f}x the best pure run)")


if __name__ == "__main__":
    main()
