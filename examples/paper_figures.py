"""Regenerate every table and figure of the paper's evaluation.

Runs the full experiment suite and prints each report.  Pass ``--quick``
for reduced input sizes (minutes -> seconds); the default sizes are the
calibrated ones recorded in EXPERIMENTS.md.

Run:  python examples/paper_figures.py [--quick]
"""

import argparse
import sys
import time

from repro import ReproConfig
from repro.harness.experiments import (
    fig1,
    fig2,
    fig8,
    fig9,
    fig10,
    fig11,
    overhead,
    summary,
    table1,
)


def banner(text: str) -> None:
    print("\n" + "#" * 72)
    print(f"# {text}")
    print("#" * 72)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced input sizes"
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment names (fig1,fig2,table1,fig8,"
        "fig9,fig10,fig11,overhead,summary)",
    )
    args = parser.parse_args(argv)
    config = ReproConfig()
    quick = args.quick
    wanted = set(args.only.split(",")) if args.only else None

    def selected(name: str) -> bool:
        return wanted is None or name in wanted

    start = time.time()
    if selected("fig1"):
        banner("Figure 1")
        print(fig1.run(config, quick).text)
    if selected("fig2"):
        banner("Figure 2")
        print(fig2.run(config, quick).text)
    if selected("table1"):
        banner("Table 1")
        print(table1.run(config, quick).text)
    if selected("fig8"):
        banner("Figure 8")
        print(fig8.run(config, quick).text)
    if selected("fig9"):
        banner("Figure 9")
        print(fig9.run(config, quick).text)
    if selected("fig10"):
        banner("Figure 10")
        results = fig10.run(config, quick)
        print(results["cpu"].text)
        print()
        print(results["gpu"].text)
    if selected("fig11"):
        banner("Figure 11")
        results = fig11.run(config, quick)
        print(results["cpu"].text)
        print()
        print(results["gpu"].text)
    if selected("overhead"):
        banner("Sections 5.1 / 5.2")
        print(overhead.run(config, quick).text)
    if selected("summary"):
        banner("Section 5.3")
        print(summary.run(config, quick).text)
    print(f"\nall requested experiments regenerated in "
          f"{time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
