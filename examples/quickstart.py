"""Quickstart: register two kernel variants, let DySel pick at launch.

Builds a tiny saxpy-like kernel with two implementations — one streaming
(fast on the simulated CPU) and one strided (slow) — registers both under
one signature, and launches.  DySel micro-profiles the candidates on a
slice of the real workload and processes the rest with the winner; the
profiled slice's results are part of the final output (productive
profiling), which the final check demonstrates.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DySelRuntime, ReproConfig, make_cpu
from repro.kernel import (
    AccessPattern,
    ArgSpec,
    KernelIR,
    KernelSignature,
    KernelSpec,
    KernelVariant,
    Loop,
    LoopBound,
    MemoryAccess,
)
from repro.kernel.buffers import Buffer

ELEMS_PER_UNIT = 64
UNITS = 4096


def make_variant(name: str, pattern: AccessPattern) -> KernelVariant:
    """One implementation of y = 2x + 1 over float32 vectors.

    Both variants compute the same function; they differ only in the
    declared memory access pattern, which the simulated device prices
    differently — exactly the situation DySel resolves at runtime.
    """

    def executor(args, unit_start, unit_end):
        x = args["x"].data
        y = args["y"].data
        lo, hi = unit_start * ELEMS_PER_UNIT, unit_end * ELEMS_PER_UNIT
        y[lo:hi] = 2.0 * x[lo:hi] + 1.0

    ir = KernelIR(
        loops=(Loop("i", LoopBound(static_trips=ELEMS_PER_UNIT)),),
        accesses=(
            MemoryAccess(
                "x",
                False,
                pattern,
                4.0,
                loop="i",
                stride_bytes=128 if pattern is AccessPattern.STRIDED else 0,
            ),
            MemoryAccess("y", True, AccessPattern.UNIT_STRIDE, 4.0, loop="i"),
        ),
        flops_per_trip=2.0,
    )
    return KernelVariant(name=name, ir=ir, executor=executor)


def main() -> None:
    config = ReproConfig()
    runtime = DySelRuntime(make_cpu(config), config)

    signature = KernelSignature(
        "saxpy", (ArgSpec("x"), ArgSpec("y", is_output=True))
    )
    runtime.declare_kernel(KernelSpec(signature=signature))
    runtime.add_kernel("saxpy", make_variant("streaming", AccessPattern.UNIT_STRIDE))
    runtime.add_kernel("saxpy", make_variant("strided", AccessPattern.STRIDED))

    rng = config.rng("quickstart")
    x = Buffer("x", rng.standard_normal(UNITS * ELEMS_PER_UNIT).astype(np.float32),
               writable=False)
    y = Buffer("y", np.zeros(UNITS * ELEMS_PER_UNIT, dtype=np.float32))

    result = runtime.launch_kernel("saxpy", {"x": x, "y": y}, UNITS)

    print(f"selected variant : {result.selected}")
    print(f"profiling mode   : {result.mode.value}")
    print(f"orchestration    : {result.flow.value}")
    print(f"launch wall time : {result.elapsed_cycles:,.0f} cycles "
          f"({runtime.device.spec.cycles_to_seconds(result.elapsed_cycles)*1e3:.2f} ms "
          "at the simulated clock)")
    assert result.record is not None
    for measurement in result.record.ranking():
        print(
            f"  micro-profile  : {measurement.variant:<10} "
            f"{measurement.measured_cycles:>12,.0f} cycles "
            f"over {measurement.profiled_units} units"
        )

    expected = 2.0 * x.data + 1.0
    assert np.allclose(y.data, expected), "output mismatch!"
    print("output verified  : y == 2x + 1 everywhere "
          "(profiled slices included — productive profiling)")


if __name__ == "__main__":
    main()
