"""Input-adaptive histogramming under swap-based profiling.

Histogram kernels write overlapping output (every work-group hits the
same 256 bins), so side effect analysis restricts DySel to swap-based
partial-productive profiling (paper §2.3, Table 1): every candidate runs
the shared slice into a private copy of the bins, and the winner's copy
is swapped in.

The best variant is input dependent: global atomics win on uniform data,
work-group privatization wins when the data is skewed onto hot bins.
This script runs both inputs through the same pool and checks the counts
are exact either way — the correctness guarantee swap mode exists for.

Run:  python examples/adaptive_histogram.py
"""

import numpy as np

from repro import DySelRuntime, ReproConfig, make_gpu
from repro.workloads import histogram


def run(distribution: str, config: ReproConfig) -> None:
    case = histogram.swap_case(distribution, elems=1 << 19, config=config)
    runtime = DySelRuntime(make_gpu(config), config)
    runtime.register_pool(case.pool)
    print(f"\n=== {distribution} data ===")
    print(f"compiler-recommended mode: {case.pool.mode.value} "
          "(global atomics detected by side effect analysis)")

    args = case.fresh_args()
    result = runtime.launch_kernel(
        case.pool.name, args, case.workload_units
    )
    print(f"orchestration: {result.flow.value} "
          "(swap mode cannot run asynchronously - Table 1)")
    print(f"selected: {result.selected!r}")

    counts = args["hist"].data
    expected = np.bincount(args["data"].data, minlength=histogram.BINS)
    assert np.array_equal(counts, expected), "histogram corrupted!"
    print(f"counts exact: {int(counts.sum()):,} elements binned, "
          f"hottest bin holds {int(counts.max()):,}")


def main() -> None:
    config = ReproConfig()
    run("uniform", config)
    run("skewed", config)
    print(
        "\nSame pool, opposite winners — and in both cases the final "
        "counts are exact\nbecause only the winner's private output was "
        "swapped into the real bins."
    )


if __name__ == "__main__":
    main()
