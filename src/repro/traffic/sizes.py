"""Workload-size distributions: how many units one request carries.

Production request sizes are heavy-tailed — most launches are small, a
few are enormous — which is exactly the regime where selection caching
pays (tiny launches skip profiling; rare huge launches amortize it).
Two heavy-tailed families are provided (lognormal and Pareto) plus a
degenerate fixed size for controlled tests.

Drawn sizes are *bucketed to powers of two* by default
(:func:`bucket_units`).  The serve layer's workload signatures already
log2-bucket their size features (:func:`repro.serve.log2_bucket`), so
un-bucketed heavy tails would explode the workload-class universe into
one class per distinct draw — every request cold, nothing cacheable.
Bucketing keeps the class count logarithmic in the size range while
preserving the tail shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..errors import TrafficError


@runtime_checkable
class SizeDistribution(Protocol):
    """Anything that can draw one request's workload units."""

    def draw(self, rng: np.random.Generator) -> int:
        """One size draw, in workload units (>= 1)."""
        ...


def bucket_units(units: float) -> int:
    """Snap a raw size draw to the nearest power of two (>= 1).

    "Nearest" in log space: 3 -> 4, 5 -> 4, 6 -> 8 — the same geometry
    the serve layer's signature features use, so one bucket maps to one
    workload class.
    """
    if units <= 1:
        return 1
    return 1 << int(round(math.log2(units)))


def _clamp(value: float, lo: int, hi: Optional[int]) -> float:
    if value < lo:
        return float(lo)
    if hi is not None and value > hi:
        return float(hi)
    return value


@dataclass(frozen=True)
class FixedSizes:
    """Every request carries exactly ``units`` workload units."""

    units: int

    def __post_init__(self) -> None:
        if self.units < 1:
            raise TrafficError(f"units must be >= 1, got {self.units}")

    def draw(self, rng: np.random.Generator) -> int:
        return self.units


@dataclass(frozen=True)
class LognormalSizes:
    """Lognormal sizes: ``median * exp(sigma * N(0, 1))``.

    ``sigma`` controls the tail weight (0.5 is mild, 1.5 is heavy).
    Draws are clamped into ``[min_units, max_units]`` and bucketed to
    powers of two unless ``bucketed=False``.
    """

    median: float
    sigma: float = 1.0
    min_units: int = 1
    max_units: Optional[int] = None
    bucketed: bool = True

    def __post_init__(self) -> None:
        if not math.isfinite(self.median) or self.median < 1:
            raise TrafficError(
                f"median must be finite and >= 1, got {self.median}"
            )
        if not math.isfinite(self.sigma) or self.sigma < 0:
            raise TrafficError(
                f"sigma must be finite and >= 0, got {self.sigma}"
            )
        if self.min_units < 1:
            raise TrafficError(
                f"min_units must be >= 1, got {self.min_units}"
            )
        if self.max_units is not None and self.max_units < self.min_units:
            raise TrafficError(
                f"max_units {self.max_units} < min_units {self.min_units}"
            )

    def draw(self, rng: np.random.Generator) -> int:
        raw = self.median * math.exp(
            self.sigma * float(rng.standard_normal())
        )
        raw = _clamp(raw, self.min_units, self.max_units)
        return bucket_units(raw) if self.bucketed else max(1, int(raw))


@dataclass(frozen=True)
class ParetoSizes:
    """Pareto (power-law) sizes: the classic heavy-tail model.

    ``P(size > x) ~ (min_units / x) ** alpha``; smaller ``alpha`` means a
    heavier tail (alpha <= 2 has infinite variance — cap it with
    ``max_units`` for bounded benches).
    """

    alpha: float
    min_units: int = 1
    max_units: Optional[int] = None
    bucketed: bool = True

    def __post_init__(self) -> None:
        if not math.isfinite(self.alpha) or self.alpha <= 0:
            raise TrafficError(
                f"alpha must be finite and > 0, got {self.alpha}"
            )
        if self.min_units < 1:
            raise TrafficError(
                f"min_units must be >= 1, got {self.min_units}"
            )
        if self.max_units is not None and self.max_units < self.min_units:
            raise TrafficError(
                f"max_units {self.max_units} < min_units {self.min_units}"
            )

    def draw(self, rng: np.random.Generator) -> int:
        raw = self.min_units * (1.0 + float(rng.pareto(self.alpha)))
        raw = _clamp(raw, self.min_units, self.max_units)
        return bucket_units(raw) if self.bucketed else max(1, int(raw))
