"""Replay a generated schedule against the real workload suite.

A schedule names workloads abstractly (``"spmv-csr/random"``); this
module resolves each ``(workload, units)`` pair to a concrete
:class:`~repro.workloads.base.BenchmarkCase` — pool, argument factory,
output checker — and turns schedule rows into serve-layer
:class:`~repro.serve.ServeRequest` objects.

Cases are cached per ``(workload, resolved size)``: heavy-tailed size
draws are already power-of-two bucketed (:mod:`repro.traffic.sizes`),
so a long schedule touches a bounded set of cases, and every request
for the same case gets *fresh* argument buffers (outputs are written).

The default catalog covers the 10 workload configurations of
:mod:`repro.workloads`; tests that only need cheap classes pass a
trimmed mapping instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..config import ReproConfig
from ..errors import TrafficError
from ..workloads import (
    cutcp,
    histogram,
    kmeans,
    particle_filter,
    sgemm,
    spmv_csr,
    spmv_jds,
    stencil,
)
from ..workloads.base import BenchmarkCase
from .generator import ScheduledRequest, TrafficSchedule

#: A catalog entry: ``(units, config) -> BenchmarkCase``.
CaseBuilder = Callable[[int, ReproConfig], BenchmarkCase]


def _clamp(value: int, lo: int, hi: int) -> int:
    return max(lo, min(hi, value))


def _spmv_csr_case(kind: str) -> CaseBuilder:
    def build(units: int, config: ReproConfig) -> BenchmarkCase:
        return spmv_csr.input_dependent_case(
            "cpu", kind, _clamp(units, 512, 16384), config
        )

    return build


def _spmv_jds_case(units: int, config: ReproConfig) -> BenchmarkCase:
    return spmv_jds.vectorization_case(_clamp(units, 512, 8192), config)


def _spmv_jds_schedule_case(
    units: int, config: ReproConfig
) -> BenchmarkCase:
    return spmv_jds.schedule_case(_clamp(units, 512, 8192), config)


def _sgemm_case(units: int, config: ReproConfig) -> BenchmarkCase:
    # units are C tiles ((n / TILE)^2); invert and snap n to a tile grid.
    n = _clamp(int(round(units**0.5)) * sgemm.TILE, 32, 96)
    return sgemm.schedule_case(n, config)


def _stencil_case(units: int, config: ReproConfig) -> BenchmarkCase:
    depth = _clamp(units // 256, 4, 16)
    return stencil.schedule_case((32, 32, depth), config)


def _histogram_case(units: int, config: ReproConfig) -> BenchmarkCase:
    elems = _clamp(units, 8, 512) * histogram.ELEMS_PER_UNIT
    return histogram.swap_case("uniform", elems, config)


def _kmeans_case(units: int, config: ReproConfig) -> BenchmarkCase:
    points = _clamp(units, 8, 256) * kmeans.POINTS_PER_UNIT
    return kmeans.schedule_case(points, config)


def _cutcp_case(units: int, config: ReproConfig) -> BenchmarkCase:
    return cutcp.mixed_case(
        "cpu", (32, 32, _clamp(units // 64, 8, 32)), 2000, config
    )


def _particle_filter_case(
    units: int, config: ReproConfig
) -> BenchmarkCase:
    particles = (
        _clamp(units, 8, 128) * particle_filter.PARTICLES_PER_UNIT
    )
    return particle_filter.placement_case(particles, config)


def default_catalog() -> Dict[str, CaseBuilder]:
    """The 10-workload replay catalog over :mod:`repro.workloads`.

    Each builder maps a (bucketed) unit draw onto the workload's own
    size parameter, clamped into a range the simulator serves quickly;
    the resulting case's ``workload_units`` — not the raw draw — is what
    the serve request carries, so request sizes always match the
    buffers behind them.
    """
    return {
        "spmv-csr/random": _spmv_csr_case("random"),
        "spmv-csr/diagonal": _spmv_csr_case("diagonal"),
        "spmv-jds": _spmv_jds_case,
        "spmv-jds/schedule": _spmv_jds_schedule_case,
        "sgemm": _sgemm_case,
        "stencil": _stencil_case,
        "histogram": _histogram_case,
        "kmeans": _kmeans_case,
        "cutcp": _cutcp_case,
        "particle-filter": _particle_filter_case,
    }


#: Workload names the default catalog resolves.
DEFAULT_WORKLOADS: Tuple[str, ...] = (
    "spmv-csr/random",
    "spmv-csr/diagonal",
    "spmv-jds",
    "spmv-jds/schedule",
    "sgemm",
    "stencil",
    "histogram",
    "kmeans",
    "cutcp",
    "particle-filter",
)


class TrafficReplayer:
    """Resolve schedule rows to cached benchmark cases and serve requests.

    Not thread-safe by design: replay happens once, up front, before the
    concurrent serve phase — the requests it returns are immutable and
    each carries fresh argument buffers.
    """

    def __init__(
        self,
        config: ReproConfig,
        catalog: Optional[Mapping[str, CaseBuilder]] = None,
    ) -> None:
        self.config = config
        self.catalog: Dict[str, CaseBuilder] = dict(
            catalog if catalog is not None else default_catalog()
        )
        self._cases: Dict[Tuple[str, int], BenchmarkCase] = {}

    def case_for(self, workload: str, units: int) -> BenchmarkCase:
        """The cached case serving one ``(workload, units)`` bucket."""
        builder = self.catalog.get(workload)
        if builder is None:
            raise TrafficError(
                f"workload {workload!r} is not in the replay catalog "
                f"(known: {sorted(self.catalog)})"
            )
        key = (workload, units)
        if key not in self._cases:
            self._cases[key] = builder(units, self.config)
        return self._cases[key]

    def pools(self, schedule: TrafficSchedule):
        """The distinct variant pools the schedule needs, by kernel name.

        Register each on the scheduler before serving.  One workload's
        buckets share a pool object (builders construct identical pools
        per call; the first bucket's instance wins), so re-registration
        churn — which would evict store entries — never happens.
        """
        pools = {}
        for row in schedule.requests:
            case = self.case_for(row.workload, row.units)
            pools.setdefault(case.pool.name, case.pool)
        return pools

    def serve_requests(self, schedule: TrafficSchedule) -> List:
        """Schedule rows as serve-layer requests, in schedule order.

        Imported lazily to keep :mod:`repro.traffic` usable without the
        serving layer (schedule generation is dependency-free).
        """
        from ..serve import ServeRequest

        requests: List[ServeRequest] = []
        for row in schedule.requests:
            case = self.case_for(row.workload, row.units)
            requests.append(
                ServeRequest(
                    kernel=case.pool.name,
                    args=case.fresh_args(),
                    workload_units=case.workload_units,
                    tenant=row.tenant,
                    priority=row.priority,
                    deadline_cycles=row.deadline_cycles,
                )
            )
        return requests

    def checker(self, row: ScheduledRequest):
        """The output validator for one schedule row (may be ``None``)."""
        return self.case_for(row.workload, row.units).check
