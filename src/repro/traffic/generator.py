"""Tenant profiles, schedule records, and the traffic generator.

A :class:`TrafficSchedule` is the replayable artifact: an ordered tuple
of :class:`ScheduledRequest` rows plus the seed and horizon that
produced it, serializable to JSON so a bench and its regression test
drive the serve layer with byte-identical traffic.

Determinism contract: each tenant draws from its own ``numpy``
generator seeded by ``(schedule seed, crc32(tenant name))``, and draws
are interleaved per arrival (time, then size, then workload pick).
Tenants are therefore independent streams — adding a tenant, or
reordering the profile tuple, never perturbs another tenant's arrivals —
and the merged schedule is a pure function of ``(seed, horizon,
profiles)``.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import zlib
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrafficError
from .arrivals import ArrivalProcess
from .sizes import SizeDistribution

#: Schema stamp written into (and demanded from) schedule files.
SCHEDULE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic shape and service-level contract.

    ``workloads`` names entries of a replay catalog
    (:mod:`repro.traffic.replay`); ``weights`` biases the per-arrival
    workload pick (uniform when omitted).  ``priority`` is a strict
    admission class (0 is highest), ``weight`` the fair-share weight
    among same-priority tenants, and ``deadline_cycles`` the per-request
    latency budget (``None`` = no deadline) — the three fields the
    serve-layer QoS config consumes.
    """

    name: str
    arrivals: ArrivalProcess
    sizes: SizeDistribution
    workloads: Tuple[str, ...] = ("spmv-csr/random",)
    weights: Optional[Tuple[float, ...]] = None
    priority: int = 1
    weight: float = 1.0
    deadline_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TrafficError("tenant name must be non-empty")
        if not self.workloads:
            raise TrafficError(
                f"tenant {self.name!r} declares no workloads"
            )
        if self.weights is not None:
            if len(self.weights) != len(self.workloads):
                raise TrafficError(
                    f"tenant {self.name!r}: {len(self.weights)} weights "
                    f"for {len(self.workloads)} workloads"
                )
            if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
                raise TrafficError(
                    f"tenant {self.name!r}: workload weights must be "
                    ">= 0 and sum > 0"
                )
        if self.priority < 0:
            raise TrafficError(
                f"tenant {self.name!r}: priority must be >= 0, "
                f"got {self.priority}"
            )
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise TrafficError(
                f"tenant {self.name!r}: weight must be finite and > 0, "
                f"got {self.weight}"
            )
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise TrafficError(
                f"tenant {self.name!r}: deadline_cycles must be > 0, "
                f"got {self.deadline_cycles}"
            )


@dataclass(frozen=True)
class ScheduledRequest:
    """One generated arrival, fully resolved.

    ``time`` is abstract traffic seconds (arrival order and burst
    structure; the discrete-event serve layer has no wall clock to pace
    against).  ``index`` is the arrival's ordinal within its tenant's
    own stream — ``(tenant, index)`` is a stable identity that survives
    merging.
    """

    time: float
    tenant: str
    workload: str
    units: int
    priority: int = 1
    deadline_cycles: Optional[float] = None
    index: int = 0


@dataclass(frozen=True)
class TrafficSchedule:
    """A replayable, merge-sorted multi-tenant request schedule."""

    seed: int
    horizon: float
    requests: Tuple[ScheduledRequest, ...] = ()

    def tenants(self) -> Tuple[str, ...]:
        """Tenant names present, in first-arrival order."""
        return tuple(dict.fromkeys(r.tenant for r in self.requests))

    def count(self, tenant: Optional[str] = None) -> int:
        """Arrivals in the schedule (optionally one tenant's)."""
        if tenant is None:
            return len(self.requests)
        return sum(1 for r in self.requests if r.tenant == tenant)

    def observed_rate(self, tenant: Optional[str] = None) -> float:
        """Arrivals per traffic second actually generated."""
        if self.horizon <= 0:
            return 0.0
        return self.count(tenant) / self.horizon

    def save(self, path: str) -> None:
        """Write the schedule as JSON (atomic rename, like the store)."""
        doc = {
            "schema_version": SCHEDULE_SCHEMA_VERSION,
            "seed": self.seed,
            "horizon": self.horizon,
            "requests": [asdict(r) for r in self.requests],
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str) -> "TrafficSchedule":
        """Read a schedule written by :meth:`save`."""
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise TrafficError(
                f"cannot read schedule {path!r}: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise TrafficError(
                f"schedule {path!r}: expected a JSON object"
            )
        version = doc.get("schema_version")
        if version != SCHEDULE_SCHEMA_VERSION:
            raise TrafficError(
                f"schedule {path!r}: schema_version {version!r} != "
                f"{SCHEDULE_SCHEMA_VERSION}"
            )
        try:
            requests = tuple(
                ScheduledRequest(**row) for row in doc["requests"]
            )
            return cls(
                seed=int(doc["seed"]),
                horizon=float(doc["horizon"]),
                requests=requests,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TrafficError(
                f"schedule {path!r}: malformed payload ({exc})"
            ) from exc


@dataclass(frozen=True)
class TrafficGenerator:
    """Generate a merged multi-tenant schedule from tenant profiles."""

    tenants: Tuple[TenantProfile, ...]
    seed: int = 0
    horizon: float = 100.0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise TrafficError("a generator needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise TrafficError(f"duplicate tenant names: {names}")
        if not math.isfinite(self.horizon) or self.horizon <= 0:
            raise TrafficError(
                f"horizon must be finite and > 0, got {self.horizon}"
            )

    def _tenant_rng(self, name: str) -> np.random.Generator:
        """The tenant's independent substream (order-insensitive)."""
        return np.random.default_rng(
            [self.seed & 0xFFFFFFFF, zlib.crc32(name.encode("utf-8"))]
        )

    def generate(self) -> TrafficSchedule:
        """Draw every tenant's stream and merge by arrival time."""
        rows: List[ScheduledRequest] = []
        for tenant in self.tenants:
            rng = self._tenant_rng(tenant.name)
            weights = None
            if tenant.weights is not None:
                total = sum(tenant.weights)
                weights = [w / total for w in tenant.weights]
            for index, time in enumerate(
                tenant.arrivals.times(rng, self.horizon)
            ):
                units = int(tenant.sizes.draw(rng))
                pick = int(rng.choice(len(tenant.workloads), p=weights))
                rows.append(
                    ScheduledRequest(
                        time=float(time),
                        tenant=tenant.name,
                        workload=tenant.workloads[pick],
                        units=units,
                        priority=tenant.priority,
                        deadline_cycles=tenant.deadline_cycles,
                        index=index,
                    )
                )
        rows.sort(key=lambda r: (r.time, r.tenant, r.index))
        return TrafficSchedule(
            seed=self.seed, horizon=self.horizon, requests=tuple(rows)
        )
