"""Deterministic multi-tenant traffic generation for the serve layer.

Every benchmark before this package drove :class:`repro.serve.LaunchScheduler`
with uniform request streams.  Real selection services see nothing of the
sort: arrivals are bursty or diurnal, workload sizes are heavy-tailed, and
several tenants with different priorities and deadlines share one fleet.
This package generates such traffic *deterministically* — a schedule is a
pure function of its seed and tenant profiles, serializable to JSON so
benches and tests replay the identical trace.

Layout
------

- :mod:`repro.traffic.arrivals` — arrival processes: Poisson,
  bursty (MMPP on/off), and diurnal (non-homogeneous Poisson).
- :mod:`repro.traffic.sizes` — workload-size distributions: fixed,
  lognormal, Pareto; heavy tails bucketed to powers of two so the
  workload-class universe stays bounded.
- :mod:`repro.traffic.generator` — tenant profiles, the schedule record,
  and the generator that merges per-tenant streams.
- :mod:`repro.traffic.replay` — mapping scheduled requests onto the real
  workloads in :mod:`repro.workloads` as serve-layer requests.

See ``docs/traffic.md`` for the model definitions and
``benchmarks/bench_traffic.py`` for the tail-latency benchmark this
package feeds.
"""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from .generator import (
    SCHEDULE_SCHEMA_VERSION,
    ScheduledRequest,
    TenantProfile,
    TrafficGenerator,
    TrafficSchedule,
)
from .replay import (
    DEFAULT_WORKLOADS,
    TrafficReplayer,
    default_catalog,
)
from .sizes import (
    FixedSizes,
    LognormalSizes,
    ParetoSizes,
    SizeDistribution,
    bucket_units,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DEFAULT_WORKLOADS",
    "DiurnalArrivals",
    "FixedSizes",
    "LognormalSizes",
    "ParetoSizes",
    "PoissonArrivals",
    "SCHEDULE_SCHEMA_VERSION",
    "ScheduledRequest",
    "SizeDistribution",
    "TenantProfile",
    "TrafficGenerator",
    "TrafficReplayer",
    "TrafficSchedule",
    "bucket_units",
    "default_catalog",
]
