"""Arrival processes: when requests hit the scheduler.

All three models produce arrival *times* on a continuous axis of
"traffic seconds" over a finite horizon.  The axis is abstract — the
serve layer is a discrete-event simulation with per-device cycle clocks,
so schedules use arrival order and burst structure rather than wall
time — but keeping real-valued times makes the models exact (Poisson
thinning, exponential state holding times) and lets a replayer bucket or
pace them however it likes.

Determinism contract: ``times(rng, horizon)`` consumes randomness only
from the ``numpy`` generator it is handed, so one seeded generator per
tenant reproduces the identical schedule on every platform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Protocol, runtime_checkable

import numpy as np

from ..errors import TrafficError


@runtime_checkable
class ArrivalProcess(Protocol):
    """Anything that can draw arrival times over a horizon."""

    def times(self, rng: np.random.Generator, horizon: float) -> List[float]:
        """Strictly increasing arrival times in ``[0, horizon)``."""
        ...

    def mean_rate(self) -> float:
        """Long-run arrivals per traffic second (for rate assertions)."""
        ...


def _check_horizon(horizon: float) -> None:
    if not math.isfinite(horizon) or horizon <= 0:
        raise TrafficError(f"horizon must be finite and > 0, got {horizon}")


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson process: i.i.d. exponential inter-arrivals."""

    rate: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.rate) or self.rate <= 0:
            raise TrafficError(
                f"Poisson rate must be finite and > 0, got {self.rate}"
            )

    def times(self, rng: np.random.Generator, horizon: float) -> List[float]:
        _check_horizon(horizon)
        out: List[float] = []
        t = float(rng.exponential(1.0 / self.rate))
        while t < horizon:
            out.append(t)
            t += float(rng.exponential(1.0 / self.rate))
        return out

    def mean_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state MMPP (Markov-modulated Poisson process): on/off bursts.

    The process alternates between a *burst* state emitting at
    ``burst_rate`` and a *gap* state emitting at ``base_rate`` (often 0).
    State holding times are exponential with means ``mean_burst`` and
    ``mean_gap`` — the classic on/off traffic model whose arrival counts
    are overdispersed relative to Poisson (index of dispersion > 1),
    which is exactly the property that stresses admission queues.
    """

    burst_rate: float
    mean_burst: float
    mean_gap: float
    base_rate: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.burst_rate) or self.burst_rate <= 0:
            raise TrafficError(
                f"burst_rate must be finite and > 0, got {self.burst_rate}"
            )
        if self.base_rate < 0 or not math.isfinite(self.base_rate):
            raise TrafficError(
                f"base_rate must be finite and >= 0, got {self.base_rate}"
            )
        for label, mean in (
            ("mean_burst", self.mean_burst),
            ("mean_gap", self.mean_gap),
        ):
            if not math.isfinite(mean) or mean <= 0:
                raise TrafficError(
                    f"{label} must be finite and > 0, got {mean}"
                )

    def times(self, rng: np.random.Generator, horizon: float) -> List[float]:
        _check_horizon(horizon)
        out: List[float] = []
        t = 0.0
        in_burst = True  # schedules open hot; the gap state follows
        while t < horizon:
            mean = self.mean_burst if in_burst else self.mean_gap
            rate = self.burst_rate if in_burst else self.base_rate
            state_end = min(horizon, t + float(rng.exponential(mean)))
            if rate > 0:
                s = t + float(rng.exponential(1.0 / rate))
                while s < state_end:
                    out.append(s)
                    s += float(rng.exponential(1.0 / rate))
            t = state_end
            in_burst = not in_burst
        return out

    def mean_rate(self) -> float:
        total = self.mean_burst + self.mean_gap
        return (
            self.burst_rate * self.mean_burst + self.base_rate * self.mean_gap
        ) / total


@dataclass(frozen=True)
class DiurnalArrivals:
    """Non-homogeneous Poisson with a sinusoidal day/night rate.

    Instantaneous rate ``base_rate * (1 + amplitude * sin(2*pi*t/period))``,
    sampled exactly with Lewis–Shedler thinning against the peak rate.
    ``amplitude`` in ``[0, 1]`` keeps the rate non-negative.
    """

    base_rate: float
    amplitude: float = 0.5
    period: float = 60.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.base_rate) or self.base_rate <= 0:
            raise TrafficError(
                f"base_rate must be finite and > 0, got {self.base_rate}"
            )
        if not 0.0 <= self.amplitude <= 1.0:
            raise TrafficError(
                f"amplitude must be in [0, 1], got {self.amplitude}"
            )
        if not math.isfinite(self.period) or self.period <= 0:
            raise TrafficError(
                f"period must be finite and > 0, got {self.period}"
            )

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at traffic time ``t``."""
        return self.base_rate * (
            1.0
            + self.amplitude
            * math.sin(2.0 * math.pi * (t + self.phase) / self.period)
        )

    def times(self, rng: np.random.Generator, horizon: float) -> List[float]:
        _check_horizon(horizon)
        peak = self.base_rate * (1.0 + self.amplitude)
        out: List[float] = []
        t = float(rng.exponential(1.0 / peak))
        while t < horizon:
            if float(rng.random()) * peak <= self.rate_at(t):
                out.append(t)
            t += float(rng.exponential(1.0 / peak))
        return out

    def mean_rate(self) -> float:
        # The sinusoid integrates to zero over whole periods.
        return self.base_rate
