"""Online selection prediction from accumulated store history.

:class:`SelectionPredictor` sits inside the
:class:`~repro.serve.store.SelectionStore`: every *measured* publish
(a micro-profiled winner — predicted publishes are excluded so the
model cannot feed on its own guesses) becomes one training example, and
the serving layer consults :meth:`SelectionPredictor.predict` before a
cold workload class pays a micro-profile.  A confident prediction skips
profiling outright (``"predicted selection"``,
:func:`repro.core.policy.decide`); anything else falls back to the
existing lease-coordinated micro-profile, so prediction can only remove
cold-start cost, never correctness.

Models are grouped per (kernel, device-kind) — the granularity at which
selections transfer — and refit lazily from a bounded, deduplicated
example set (one example per distinct feature vector; repeat evidence
accumulates weight, contradicting evidence replaces the label).  Drift
confirmations feed back through :meth:`SelectionPredictor.correct` with
extra weight, so a class the model got wrong teaches the next refit.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from ..errors import PredictError
from .features import parse_key
from .model import DecisionTree, Prediction


@dataclass(frozen=True)
class PredictConfig:
    """Tuning for the selection predictor (all fields validated)."""

    #: Minimum calibrated confidence for a prediction to skip the
    #: micro-profile; lower-confidence classes fall back to the lease.
    confidence_threshold: float = 0.7
    #: Distinct workload classes a (kernel, device-kind) group must have
    #: seen before it predicts at all.
    min_examples: int = 6
    #: Bounded per-group example set (oldest distinct class evicted).
    max_examples: int = 256
    #: Decision-tree depth cap.
    max_depth: int = 6
    #: Minimum total example weight on each side of a tree split.
    min_leaf_weight: float = 1.0
    #: Sample weight of a drift-correction example (vs 1.0 per measured
    #: publish), so one confirmed mistake outweighs stale evidence.
    correction_weight: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence_threshold <= 1.0:
            raise PredictError(
                f"confidence_threshold must be in (0, 1], got "
                f"{self.confidence_threshold}"
            )
        if self.min_examples < 1:
            raise PredictError(
                f"min_examples must be >= 1, got {self.min_examples}"
            )
        if self.max_examples < self.min_examples:
            raise PredictError(
                f"max_examples ({self.max_examples}) must be >= "
                f"min_examples ({self.min_examples})"
            )
        if self.max_depth < 1:
            raise PredictError(
                f"max_depth must be >= 1, got {self.max_depth}"
            )
        if self.min_leaf_weight <= 0:
            raise PredictError(
                f"min_leaf_weight must be positive, got "
                f"{self.min_leaf_weight}"
            )
        if self.correction_weight <= 0:
            raise PredictError(
                f"correction_weight must be positive, got "
                f"{self.correction_weight}"
            )


@dataclass
class PredictStats:
    """Training/serving counters (monotonic over the predictor's life)."""

    #: Measured publishes folded into the example sets.
    examples: int = 0
    #: Drift-confirmed corrections fed back into training.
    corrections: int = 0
    #: Lazy tree refits triggered by dirty example sets.
    refits: int = 0


class _Group:
    """One (kernel, device-kind) model: examples + lazily fitted tree."""

    __slots__ = ("examples", "tree", "dirty")

    def __init__(self) -> None:
        #: feature vector → (winning variant, accumulated weight);
        #: insertion-ordered so eviction drops the oldest class.
        self.examples: Dict[Tuple[float, ...], Tuple[str, float]] = {}
        self.tree: Optional[DecisionTree] = None
        self.dirty = False


class SelectionPredictor:
    """Thread-safe per-(kernel, device-kind) selection models."""

    def __init__(self, config: Optional[PredictConfig] = None) -> None:
        self.config = config if config is not None else PredictConfig()
        self._groups: Dict[Tuple[str, str], _Group] = {}
        self._lock = threading.RLock()
        self.stats = PredictStats()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def learn(self, key: str, selected: str, weight: float = 1.0) -> bool:
        """Fold one measured selection into the training set.

        Repeat evidence for the same (class, winner) accumulates weight;
        a different winner for a known class *replaces* its label — the
        newest measurement describes the current regime.  Returns False
        for unparseable keys or non-positive weights (nothing learned).
        """
        parsed = parse_key(key)
        if parsed is None or weight <= 0:
            return False
        with self._lock:
            group = self._groups.setdefault(
                (parsed.kernel, parsed.device_kind), _Group()
            )
            existing = group.examples.get(parsed.vector)
            if existing is not None and existing[0] == selected:
                group.examples[parsed.vector] = (
                    selected,
                    existing[1] + weight,
                )
            else:
                if (
                    existing is None
                    and len(group.examples) >= self.config.max_examples
                ):
                    group.examples.pop(next(iter(group.examples)))
                group.examples[parsed.vector] = (selected, weight)
            group.dirty = True
            self.stats.examples += 1
        return True

    def correct(self, key: str, selected: str) -> bool:
        """Feed a drift-confirmed mistake back as a weighted correction.

        Called when a re-profile overturns a *predicted* entry: the
        fresh winner replaces the class's label with
        :attr:`PredictConfig.correction_weight` behind it, so the next
        refit stops repeating the mistake.
        """
        learned = self.learn(
            key, selected, weight=self.config.correction_weight
        )
        if learned:
            with self._lock:
                self.stats.corrections += 1
        return learned

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def predict(self, key: str) -> Optional[Prediction]:
        """The model's best guess for a workload class, or ``None``.

        ``None`` when the key is unparseable, the group has seen fewer
        than :attr:`PredictConfig.min_examples` distinct classes, or the
        model has nothing to say.  The caller decides whether the
        returned confidence clears the threshold (:meth:`confident`).
        """
        parsed = parse_key(key)
        if parsed is None:
            return None
        with self._lock:
            group = self._groups.get((parsed.kernel, parsed.device_kind))
            if (
                group is None
                or len(group.examples) < self.config.min_examples
            ):
                return None
            tree = self._fitted(group)
            return tree.predict(parsed.vector)

    def confident(self, prediction: Optional[Prediction]) -> bool:
        """Whether a prediction clears the configured threshold."""
        return (
            prediction is not None
            and prediction.confidence >= self.config.confidence_threshold
        )

    def _fitted(self, group: _Group) -> DecisionTree:
        """The group's tree, refit if examples changed since last fit."""
        if group.tree is None or group.dirty:
            tree = DecisionTree(
                max_depth=self.config.max_depth,
                min_leaf_weight=self.config.min_leaf_weight,
            )
            tree.fit(
                [
                    (vector, label, weight)
                    for vector, (label, weight) in group.examples.items()
                ]
            )
            group.tree = tree
            group.dirty = False
            self.stats.refits += 1
        return group.tree

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Distinct training classes across all groups."""
        with self._lock:
            return sum(
                len(group.examples) for group in self._groups.values()
            )

    def groups(self) -> Tuple[Tuple[str, str], ...]:
        """The (kernel, device-kind) pairs with any training history."""
        with self._lock:
            return tuple(sorted(self._groups))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-representable snapshot (config, examples, fitted trees).

        Dirty groups are refit first so the snapshot always carries the
        model that matches its own example set.
        """
        with self._lock:
            groups = []
            for (kernel, device_kind), group in sorted(
                self._groups.items()
            ):
                tree = self._fitted(group) if group.examples else None
                groups.append(
                    {
                        "kernel": kernel,
                        "device_kind": device_kind,
                        "examples": [
                            {
                                "vector": list(vector),
                                "label": label,
                                "weight": weight,
                            }
                            for vector, (label, weight) in
                            group.examples.items()
                        ],
                        "tree": (
                            tree.to_payload() if tree is not None else None
                        ),
                    }
                )
            return {
                "config": asdict(self.config),
                "stats": asdict(self.stats),
                "groups": groups,
            }

    def load_payload(self, payload: object) -> None:
        """Restore examples and fitted trees written by :meth:`to_payload`.

        All-or-nothing: the new state is staged and validated completely
        before it replaces the current one, and :class:`PredictError` is
        raised on any malformed shape.  The predictor's *own* config is
        kept — a loaded snapshot carries history, not policy.
        """
        if not isinstance(payload, dict):
            raise PredictError(
                f"predictor payload must be an object, got "
                f"{type(payload).__name__}"
            )
        raw_groups = payload.get("groups", [])
        if not isinstance(raw_groups, list):
            raise PredictError(
                f"predictor payload 'groups' must be a list, got "
                f"{type(raw_groups).__name__}"
            )
        staged: Dict[Tuple[str, str], _Group] = {}
        for raw in raw_groups:
            if not isinstance(raw, dict):
                raise PredictError(f"malformed predictor group: {raw!r}")
            kernel = raw.get("kernel")
            device_kind = raw.get("device_kind")
            if not isinstance(kernel, str) or not isinstance(
                device_kind, str
            ):
                raise PredictError(
                    f"malformed predictor group identity: "
                    f"{kernel!r}/{device_kind!r}"
                )
            group = _Group()
            examples = raw.get("examples", [])
            if not isinstance(examples, list):
                raise PredictError(
                    f"group {kernel!r}/{device_kind!r} 'examples' must be "
                    f"a list, got {type(examples).__name__}"
                )
            for example in examples:
                if not isinstance(example, dict):
                    raise PredictError(f"malformed example: {example!r}")
                vector = example.get("vector")
                label = example.get("label")
                weight = example.get("weight")
                if (
                    not isinstance(vector, list)
                    or not all(
                        isinstance(v, (int, float)) for v in vector
                    )
                    or not isinstance(label, str)
                    or not isinstance(weight, (int, float))
                    or weight <= 0
                ):
                    raise PredictError(f"malformed example: {example!r}")
                group.examples[tuple(float(v) for v in vector)] = (
                    label,
                    float(weight),
                )
            tree_doc = raw.get("tree")
            if tree_doc is not None:
                group.tree = DecisionTree.from_payload(tree_doc)
            staged[(kernel, device_kind)] = group
        raw_stats = payload.get("stats", {})
        if not isinstance(raw_stats, dict):
            raise PredictError(
                f"predictor payload 'stats' must be an object, got "
                f"{type(raw_stats).__name__}"
            )
        staged_stats = {}
        for name in ("examples", "corrections", "refits"):
            value = raw_stats.get(name, 0)
            if not isinstance(value, int) or value < 0:
                raise PredictError(
                    f"malformed predictor stat {name!r}: {value!r}"
                )
            staged_stats[name] = value
        with self._lock:
            self._groups = staged
            for name, value in staged_stats.items():
                setattr(self.stats, name, value)

    @classmethod
    def from_payload(cls, payload: object) -> "SelectionPredictor":
        """Rebuild a predictor, taking its config from the snapshot."""
        if not isinstance(payload, dict):
            raise PredictError(
                f"predictor payload must be an object, got "
                f"{type(payload).__name__}"
            )
        raw_config = payload.get("config", {})
        if not isinstance(raw_config, dict):
            raise PredictError(
                f"predictor payload 'config' must be an object, got "
                f"{type(raw_config).__name__}"
            )
        try:
            config = PredictConfig(**raw_config)
        except TypeError as exc:
            raise PredictError(
                f"malformed predictor config: {exc}"
            ) from exc
        predictor = cls(config)
        predictor.load_payload(payload)
        return predictor
