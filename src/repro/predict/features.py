"""Numeric features behind the selection predictor.

The predictor never sees raw kernel arguments.  It trains on the same
workload-class keys the :class:`~repro.serve.store.SelectionStore`
persists (``kernel|device_kind|name=value|...``, see
:mod:`repro.serve.signature`), so every selection the store has already
measured is trainable history for free — no second feature pipeline to
keep in sync with the key-derivation rules.

:func:`parse_key` decodes a key back into a fixed-width numeric vector.
Each column is one bucketed observation the signature layer may have
emitted (units/rows/nnz log2 buckets, density decade, row-length CV
bucket, ...); a feature the key does not carry reads as :data:`MISSING`
so sparse and dense workloads live in one feature space and the tree can
split on absence itself.  Argument prefixes are dropped (``m.rows^2``
and ``a.rows^2`` land in the same column); when a key carries several
arguments with the same feature, the lexicographically first argument
wins — keys list features sorted, so the choice is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Feature-vector column order.  Stable: persisted models index into it.
FEATURE_NAMES: Tuple[str, ...] = (
    "units",
    "rows",
    "nnz",
    "rownnz",
    "density",
    "cv",
    "bytes",
    "empty",
)

#: Column value for a feature the key does not carry.  Every emitted
#: signature bucket is a non-negative integer, so -1 is unambiguous.
MISSING = -1.0

#: Key feature suffix (after the argument-name prefix) → vector column.
_SUFFIXES = {
    "units^2": "units",
    "rows^2": "rows",
    "nnz^2": "nnz",
    "rownnz^2": "rownnz",
    "density^10": "density",
    "cv": "cv",
    "bytes^2": "bytes",
    "empty": "empty",
}


@dataclass(frozen=True)
class ParsedKey:
    """One workload-class key, decoded for the predictor."""

    #: Kernel signature name (models are grouped per kernel).
    kernel: str
    #: Device kind the selection transfers within.
    device_kind: str
    #: Numeric feature vector, one column per :data:`FEATURE_NAMES`.
    vector: Tuple[float, ...]


def parse_key(key: str) -> Optional[ParsedKey]:
    """Decode a workload-class key into a numeric feature vector.

    Returns ``None`` for keys that do not look like
    ``kernel|device_kind|...`` at all (hand-built signatures with empty
    components); unknown or malformed feature parts are skipped rather
    than fatal, so a predictor never chokes on a key written by a newer
    feature extractor.
    """
    parts = key.split("|")
    if len(parts) < 2 or not parts[0] or not parts[1]:
        return None
    columns = {name: MISSING for name in FEATURE_NAMES}
    for part in parts[2:]:
        name, sep, value = part.partition("=")
        if not sep:
            continue
        column = _SUFFIXES.get(name.rsplit(".", 1)[-1])
        if column is None or columns[column] != MISSING:
            continue
        try:
            columns[column] = float(int(value))
        except ValueError:
            continue
    return ParsedKey(
        kernel=parts[0],
        device_kind=parts[1],
        vector=tuple(columns[name] for name in FEATURE_NAMES),
    )
