"""A tiny CART decision tree with calibrated leaf confidence.

Dependency-free on purpose: the predictor must ride inside
:class:`~repro.serve.store.SelectionStore` snapshots and serve from the
launch path, so it cannot pull in a learning framework.  A weighted
Gini-impurity tree over a handful of bucketed integer features is
enough — the signature layer already quantized the input space, so the
tree only has to carve bucket boundaries, and its JSON payload is small
and human-auditable.

Confidence is Laplace-smoothed leaf purity:
``(weight(majority) + 1) / (weight(leaf) + n_classes)``.  A pure leaf
backed by one example reads ~0.67 (two classes), a pure leaf backed by
many reads → 1.0 — exactly the "trust grows with evidence" calibration
the serving layer's confidence threshold wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PredictError

#: One training row: (feature vector, winning variant, sample weight).
Example = Tuple[Tuple[float, ...], str, float]

#: Minimum Gini improvement for a split to be worth keeping.
_MIN_GAIN = 1e-9


@dataclass(frozen=True)
class Prediction:
    """A predicted winner and how much the model trusts it."""

    #: Predicted winning variant name.
    variant: str
    #: Calibrated confidence in (0, 1); compare against
    #: :attr:`repro.predict.PredictConfig.confidence_threshold`.
    confidence: float


def _gini(counts: Dict[str, float], total: float) -> float:
    """Gini impurity of one weighted label distribution."""
    if total <= 0:
        return 0.0
    return 1.0 - sum((w / total) ** 2 for w in counts.values())


def _label_weights(rows: Sequence[Example]) -> Dict[str, float]:
    """Total weight per label over a set of rows."""
    counts: Dict[str, float] = {}
    for _, label, weight in rows:
        counts[label] = counts.get(label, 0.0) + weight
    return counts


class DecisionTree:
    """A fitted CART classifier over fixed-width numeric vectors.

    Nodes are plain JSON-representable dicts — a leaf is
    ``{"counts": {label: weight}}``, a split is ``{"feature": i,
    "threshold": t, "low": node, "high": node}`` — so
    :meth:`to_payload` / :meth:`from_payload` round-trip the fitted
    model byte-for-byte through store snapshots.
    """

    def __init__(
        self, max_depth: int = 6, min_leaf_weight: float = 1.0
    ) -> None:
        if max_depth < 1:
            raise PredictError(f"max_depth must be >= 1, got {max_depth}")
        if min_leaf_weight <= 0:
            raise PredictError(
                f"min_leaf_weight must be positive, got {min_leaf_weight}"
            )
        self.max_depth = max_depth
        self.min_leaf_weight = min_leaf_weight
        self._root: Optional[dict] = None
        self._classes: Tuple[str, ...] = ()

    @property
    def classes(self) -> Tuple[str, ...]:
        """Labels seen at fit time (sorted; sizes the Laplace smoothing)."""
        return self._classes

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, examples: Sequence[Example]) -> "DecisionTree":
        """Fit the tree on weighted examples (returns ``self``)."""
        rows: List[Example] = [
            (tuple(float(v) for v in vector), str(label), float(weight))
            for vector, label, weight in examples
        ]
        if not rows:
            raise PredictError("cannot fit a decision tree on zero examples")
        if any(weight <= 0 for _, _, weight in rows):
            raise PredictError("example weights must be positive")
        widths = {len(vector) for vector, _, _ in rows}
        if len(widths) != 1:
            raise PredictError(
                f"inconsistent feature-vector widths: {sorted(widths)}"
            )
        self._classes = tuple(sorted({label for _, label, _ in rows}))
        self._root = self._build(rows, depth=0)
        return self

    def _build(self, rows: List[Example], depth: int) -> dict:
        counts = _label_weights(rows)
        if depth >= self.max_depth or len(counts) == 1:
            return {"counts": counts}
        split = self._best_split(rows, counts)
        if split is None:
            return {"counts": counts}
        feature, threshold, low, high = split
        return {
            "feature": feature,
            "threshold": threshold,
            "low": self._build(low, depth + 1),
            "high": self._build(high, depth + 1),
        }

    def _best_split(
        self, rows: List[Example], counts: Dict[str, float]
    ) -> Optional[Tuple[int, float, List[Example], List[Example]]]:
        """Lowest-impurity (feature, threshold) partition, if any helps.

        Candidate thresholds are midpoints between adjacent observed
        values; ties break toward the lowest (feature, threshold) so a
        refit over the same examples rebuilds the identical tree.
        """
        total = sum(counts.values())
        parent = _gini(counts, total)
        best: Optional[Tuple[int, float, List[Example], List[Example]]] = None
        best_score = parent - _MIN_GAIN
        for feature in range(len(rows[0][0])):
            values = sorted({vector[feature] for vector, _, _ in rows})
            for lo, hi in zip(values, values[1:]):
                threshold = (lo + hi) / 2.0
                low = [r for r in rows if r[0][feature] <= threshold]
                high = [r for r in rows if r[0][feature] > threshold]
                low_w = sum(w for _, _, w in low)
                high_w = sum(w for _, _, w in high)
                if (
                    low_w < self.min_leaf_weight
                    or high_w < self.min_leaf_weight
                ):
                    continue
                score = (
                    low_w * _gini(_label_weights(low), low_w)
                    + high_w * _gini(_label_weights(high), high_w)
                ) / total
                if score < best_score:
                    best_score = score
                    best = (feature, threshold, low, high)
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, vector: Sequence[float]) -> Optional[Prediction]:
        """The majority label of the vector's leaf, with confidence.

        ``None`` before :meth:`fit`.  Ties break lexicographically so
        prediction is deterministic.
        """
        if self._root is None:
            return None
        node = self._root
        while "feature" in node:
            branch = (
                "low"
                if vector[node["feature"]] <= node["threshold"]
                else "high"
            )
            node = node[branch]
        counts: Dict[str, float] = node["counts"]
        label = max(sorted(counts), key=lambda name: counts[name])
        total = sum(counts.values())
        confidence = (counts[label] + 1.0) / (
            total + max(1, len(self._classes))
        )
        return Prediction(variant=label, confidence=min(1.0, confidence))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-representable snapshot of the fitted model."""
        return {
            "max_depth": self.max_depth,
            "min_leaf_weight": self.min_leaf_weight,
            "classes": list(self._classes),
            "root": self._root,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "DecisionTree":
        """Rebuild a fitted tree; :class:`PredictError` when malformed."""
        if not isinstance(payload, dict):
            raise PredictError(
                f"tree payload must be an object, got "
                f"{type(payload).__name__}"
            )
        try:
            tree = cls(
                max_depth=int(payload["max_depth"]),
                min_leaf_weight=float(payload["min_leaf_weight"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PredictError(f"malformed tree payload: {exc}") from exc
        classes = payload.get("classes")
        if not isinstance(classes, list) or not all(
            isinstance(name, str) for name in classes
        ):
            raise PredictError(
                f"tree payload 'classes' must be a list of strings, got "
                f"{classes!r}"
            )
        root = payload.get("root")
        if root is not None:
            _check_node(root)
        tree._classes = tuple(classes)
        tree._root = root
        return tree


def _check_node(node: object) -> None:
    """Validate one persisted tree node (recursively)."""
    if not isinstance(node, dict):
        raise PredictError(
            f"tree node must be an object, got {type(node).__name__}"
        )
    if "counts" in node:
        counts = node["counts"]
        if (
            not isinstance(counts, dict)
            or not counts
            or not all(
                isinstance(label, str)
                and isinstance(weight, (int, float))
                and weight > 0
                for label, weight in counts.items()
            )
        ):
            raise PredictError(f"malformed leaf counts: {counts!r}")
        return
    if not isinstance(node.get("feature"), int) or node["feature"] < 0:
        raise PredictError(f"malformed split feature: {node.get('feature')!r}")
    if not isinstance(node.get("threshold"), (int, float)):
        raise PredictError(
            f"malformed split threshold: {node.get('threshold')!r}"
        )
    _check_node(node.get("low"))
    _check_node(node.get("high"))
