"""Predictive zero-profile selection (Seer-style, dependency-free).

DySel's remaining cold-start cost is the micro-profile every unseen
(pool, device-kind, workload-class) key must pay.  This subpackage
eliminates it for classes the accumulated
:class:`~repro.serve.store.SelectionStore` history already explains: a
small decision tree per (kernel, device-kind) is trained online from
measured publishes (:mod:`repro.predict.predictor`), features are
decoded straight from the persisted workload-class keys
(:mod:`repro.predict.features`), and a confident prediction lets
:func:`repro.core.policy.decide` skip profiling with an explicit
``"predicted selection"`` reason.  Low confidence falls back to the
lease-coordinated micro-profile; drift confirmations on predicted
entries feed back as weighted training corrections.

Opt in by arming a store: ``SelectionStore(predict=PredictConfig())``.
See ``docs/prediction.md`` for the fallback ladder and tuning.
"""

from .features import FEATURE_NAMES, MISSING, ParsedKey, parse_key
from .model import DecisionTree, Prediction
from .predictor import PredictConfig, PredictStats, SelectionPredictor

__all__ = [
    "DecisionTree",
    "FEATURE_NAMES",
    "MISSING",
    "ParsedKey",
    "Prediction",
    "PredictConfig",
    "PredictStats",
    "SelectionPredictor",
    "parse_key",
]
