"""Serve-layer QoS: admission control, fair queuing, and backpressure.

The scheduler's stream pools bound *per-device* concurrency, but nothing
bounded what piles up in front of them: under overload every client
thread queued on stream locks with no ordering, no tenant isolation, and
no shedding.  :class:`AdmissionController` puts a QoS layer in front:

- **Bounded queue**: at most ``max_queue_depth`` requests wait; the next
  one is refused with a structured
  :class:`~repro.errors.AdmissionRejected` so clients can shed load.
- **Strict priority classes** with **weighted fair sharing** inside a
  class: when a slot frees, the highest class wins; within it, the
  tenant with the least admitted-work-per-weight; within a tenant, the
  earliest deadline (EDF), then arrival order.
- **Anti-starvation aging**: a waiter bypassed ``max_bypass`` times is
  promoted to the front regardless of class, so sustained high-priority
  load cannot starve background tenants forever (strict priority would).
- **Profiling backpressure**: queue pressure (waiting / bound) crossing
  ``defer_watermark`` flips the controller into *deferring* mode — the
  scheduler then runs cold classes on their stored/predicted/default
  variant instead of taking new micro-profile leases — and pressure
  falling to ``resume_watermark`` flips it back (hysteresis, so the flag
  does not flap at the boundary).  DySel's asynchronous flow makes the
  deferral legal: profiling is an optimization overlapped with
  productive work, never a correctness requirement.
"""

from __future__ import annotations

import itertools
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AdmissionRejected, ServeError

#: Default bound on waiting (not yet admitted) requests.
DEFAULT_QUEUE_DEPTH = 64

#: Default bypass count after which a waiter is aged to the front.
DEFAULT_MAX_BYPASS = 64


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service contract, as the scheduler sees it.

    ``priority`` is a strict admission class — 0 is the highest; a
    request never waits behind a lower class (modulo anti-starvation
    aging).  ``weight`` is the fair-share weight among tenants of the
    same class.  ``deadline_cycles`` is the default per-request latency
    budget in fleet cycles (``None`` = no deadline); individual requests
    may override it.
    """

    name: str
    priority: int = 1
    weight: float = 1.0
    deadline_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("tenant name must be non-empty")
        if self.priority < 0:
            raise ServeError(
                f"tenant {self.name!r}: priority must be >= 0, "
                f"got {self.priority}"
            )
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise ServeError(
                f"tenant {self.name!r}: weight must be finite and > 0, "
                f"got {self.weight}"
            )
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ServeError(
                f"tenant {self.name!r}: deadline_cycles must be > 0, "
                f"got {self.deadline_cycles}"
            )


@dataclass(frozen=True)
class QoSConfig:
    """Admission, fairness, and backpressure knobs for one scheduler.

    ``max_inflight`` bounds concurrently admitted requests (``None``
    derives the fleet's stream capacity).  Watermarks are fractions of
    ``max_queue_depth``: deferring engages when waiting/bound reaches
    ``defer_watermark`` and releases when it falls to
    ``resume_watermark``.  ``defer_watermark=0.0`` defers permanently
    (profiling fully off under QoS — the benchmark's "backpressure
    always on" arm); any value > 1 never engages (the "off" arm).
    """

    tenants: Tuple[TenantSpec, ...] = ()
    max_queue_depth: int = DEFAULT_QUEUE_DEPTH
    max_inflight: Optional[int] = None
    defer_watermark: float = 0.75
    resume_watermark: float = 0.25
    max_bypass: int = DEFAULT_MAX_BYPASS
    #: Contract for tenants not listed in ``tenants``.
    default_tenant: TenantSpec = field(
        default_factory=lambda: TenantSpec("default")
    )

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ServeError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1 or None, got {self.max_inflight}"
            )
        if self.defer_watermark < 0 or not math.isfinite(
            self.defer_watermark
        ):
            raise ServeError(
                f"defer_watermark must be finite and >= 0, "
                f"got {self.defer_watermark}"
            )
        if not 0 <= self.resume_watermark <= self.defer_watermark:
            raise ServeError(
                f"resume_watermark must be in [0, defer_watermark], got "
                f"{self.resume_watermark} (defer={self.defer_watermark})"
            )
        if self.max_bypass < 1:
            raise ServeError(
                f"max_bypass must be >= 1, got {self.max_bypass}"
            )
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ServeError(f"duplicate tenant names: {names}")

    def spec(self, tenant: Optional[str]) -> TenantSpec:
        """The contract for one tenant name (default when unlisted)."""
        for candidate in self.tenants:
            if candidate.name == tenant:
                return candidate
        if tenant is None or tenant == self.default_tenant.name:
            return self.default_tenant
        # Unlisted tenants share the default contract under their own
        # accounting identity.
        return TenantSpec(
            tenant,
            priority=self.default_tenant.priority,
            weight=self.default_tenant.weight,
            deadline_cycles=self.default_tenant.deadline_cycles,
        )


class _Waiter:
    """One queued request: its contract, deadline, and wake-up event."""

    __slots__ = (
        "tenant", "priority", "weight", "deadline", "seq", "bypasses",
        "event",
    )

    def __init__(
        self,
        tenant: str,
        priority: int,
        weight: float,
        deadline: Optional[float],
        seq: int,
    ) -> None:
        self.tenant = tenant
        self.priority = priority
        self.weight = weight
        self.deadline = deadline
        self.seq = seq
        self.bypasses = 0
        self.event = threading.Event()


class AdmissionController:
    """Thread-safe bounded admission with fairness and backpressure."""

    def __init__(self, config: QoSConfig, capacity: int) -> None:
        if capacity < 1:
            raise ServeError(f"capacity must be >= 1, got {capacity}")
        self.config = config
        self.capacity = capacity
        self._lock = threading.Lock()
        self._waiters: List[_Waiter] = []
        self._inflight = 0
        self._tenant_inflight: Dict[str, int] = {}
        self._ticket = itertools.count()
        self._deferring = False
        # Lifetime counters (read under the lock via snapshot()).
        self.admitted = 0
        self.rejected = 0
        self.rejected_by_tenant: Dict[str, int] = {}
        self.max_depth_seen = 0
        self.defer_transitions = 0

    # ------------------------------------------------------------------
    # Pressure / backpressure state
    # ------------------------------------------------------------------

    def _pressure_locked(self) -> float:
        return len(self._waiters) / self.config.max_queue_depth

    def _update_deferring_locked(self) -> None:
        pressure = self._pressure_locked()
        if not self._deferring and pressure >= self.config.defer_watermark:
            self._deferring = True
            self.defer_transitions += 1
        elif self._deferring and pressure <= self.config.resume_watermark:
            # A zero defer watermark pins the controller in deferring
            # mode: "resume" would immediately re-engage, so don't flap.
            if self.config.defer_watermark > 0:
                self._deferring = False

    @property
    def deferring(self) -> bool:
        """Whether profiling backpressure is currently engaged."""
        with self._lock:
            return self._deferring

    def pressure(self) -> float:
        """Current queue pressure: waiting requests / queue bound."""
        with self._lock:
            return self._pressure_locked()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(
        self,
        tenant: str,
        priority: int,
        weight: float,
        deadline: Optional[float] = None,
    ) -> int:
        """Block until admitted; returns the waits this request endured.

        Raises :class:`~repro.errors.AdmissionRejected` when the waiting
        queue is at ``max_queue_depth``.  Every successful ``admit`` must
        be paired with exactly one :meth:`release` (the scheduler does so
        in a ``finally``).
        """
        with self._lock:
            if self._inflight < self.capacity and not self._waiters:
                # Keep the backpressure flag fresh even on the fast
                # path: a zero defer watermark engages from the very
                # first admit, not from the first queued waiter.
                self._update_deferring_locked()
                self._grant_locked(tenant)
                return 0
            if len(self._waiters) >= self.config.max_queue_depth:
                self.rejected += 1
                self.rejected_by_tenant[tenant] = (
                    self.rejected_by_tenant.get(tenant, 0) + 1
                )
                raise AdmissionRejected(
                    f"admission queue full ({len(self._waiters)} waiting "
                    f">= bound {self.config.max_queue_depth}); request "
                    f"from tenant {tenant!r} refused",
                    tenant=tenant,
                    queue_depth=len(self._waiters),
                    limit=self.config.max_queue_depth,
                )
            waiter = _Waiter(
                tenant, priority, weight, deadline, next(self._ticket)
            )
            self._waiters.append(waiter)
            self.max_depth_seen = max(
                self.max_depth_seen, len(self._waiters)
            )
            self._update_deferring_locked()
        waiter.event.wait()
        return waiter.bypasses

    def release(self, tenant: str) -> None:
        """Retire one admitted request and wake the next waiter, if any."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if tenant in self._tenant_inflight:
                remaining = self._tenant_inflight[tenant] - 1
                if remaining > 0:
                    self._tenant_inflight[tenant] = remaining
                else:
                    del self._tenant_inflight[tenant]
            self._wake_next_locked()

    def _grant_locked(self, tenant: str) -> None:
        self._inflight += 1
        self._tenant_inflight[tenant] = (
            self._tenant_inflight.get(tenant, 0) + 1
        )
        self.admitted += 1

    def _wake_next_locked(self) -> None:
        if not self._waiters or self._inflight >= self.capacity:
            self._update_deferring_locked()
            return
        chosen = self._select_locked()
        self._waiters.remove(chosen)
        for waiter in self._waiters:
            waiter.bypasses += 1
        self._grant_locked(chosen.tenant)
        self._update_deferring_locked()
        chosen.event.set()

    def _select_locked(self) -> _Waiter:
        """Pick the next waiter: aging > priority > fair share > EDF.

        Aged waiters are ordered by how long they have been bypassed
        (ties: earliest arrival), *not* by priority — ordering the aged
        pool by priority again would let a sustained high-priority
        stream starve a background waiter forever, since every bypass
        ages the whole queue together.
        """
        aged = [
            w
            for w in self._waiters
            if w.bypasses >= self.config.max_bypass
        ]
        if aged:
            return max(aged, key=lambda w: (w.bypasses, -w.seq))
        pool = self._waiters
        top = min(w.priority for w in pool)
        pool = [w for w in pool if w.priority == top]

        def share(waiter: _Waiter) -> float:
            return (
                self._tenant_inflight.get(waiter.tenant, 0) / waiter.weight
            )

        least = min(share(w) for w in pool)
        pool = [w for w in pool if share(w) == least]
        return min(
            pool,
            key=lambda w: (
                w.deadline if w.deadline is not None else math.inf,
                w.seq,
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A consistent counter snapshot (for stats and benches)."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "waiting": len(self._waiters),
                "pressure": self._pressure_locked(),
                "deferring": self._deferring,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "rejected_by_tenant": dict(self.rejected_by_tenant),
                "max_depth_seen": self.max_depth_seen,
                "defer_transitions": self.defer_transitions,
            }
