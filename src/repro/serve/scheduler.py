"""The concurrent launch scheduler: many clients, many devices, one brain.

:class:`LaunchScheduler` is the serving front-end over a fleet of
simulated devices.  Each device gets its own :class:`DySelRuntime` (one
engine, one clock, one trace timeline) plus a bounded
:class:`~repro.device.stream.StreamPool`; client threads call
:meth:`LaunchScheduler.launch` concurrently and the scheduler:

1. **enqueues** the request (``SERVE_ENQUEUE``),
2. **admits** it onto the least-loaded device by leasing a stream from
   that device's pool (``SERVE_ADMIT``) — pool capacity is the per-device
   admission limit,
3. resolves the request's **workload class** (input-aware signature,
   :mod:`repro.serve.signature`) and consults the persistent
   :class:`~repro.serve.store.SelectionStore`:

   * **warm** — a live entry pins the stored winner; the launch runs
     profiling-off (``STORE_HIT``),
   * **cold** — the request races for the class's *profile lease*
     (:mod:`repro.serve.lease`); the winner consults the armed
     selection predictor (:mod:`repro.predict`) — a confident guess
     skips the micro-profile outright (``PREDICTION``) — otherwise
     micro-profiles (``PROFILE_LEASE_GRANT``/``STEAL``,
     ``PREDICTION_FALLBACK``) and publishes the selection; everyone
     else runs eagerly with the current-best variant,

4. serializes engine access per device (simulated engines are
   single-clocked), runs the launch, releases stream and lease.

This generalizes the paper's asynchronous flow (§2.4) from
chunks-within-a-launch to launches-within-a-fleet: profiling happens once
per (pool, device-kind, workload-class) while the rest of the traffic
keeps flowing with the best answer known so far.

Scheduler-level events land on the scheduler's own tracer, whose "time"
axis is a monotonically increasing admission sequence number — request
ordering, not device cycles (each device keeps its own cycle timeline, so
a fleet has no single clock).  Per-device launch traces remain available
from each runtime and reconcile with :func:`repro.obs.export.reconcile`.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analyze.dominance import cold_start_estimate, policy_from_settings
from ..compiler.analyses.safe_point import lcm_of
from ..compiler.variants import VariantPool
from ..config import ReproConfig
from ..core.policy import (
    PLACEMENT_POLICIES,
    PlacementCandidate,
    PlacementDecision,
    decide_placement,
)
from ..core.runtime import DySelRuntime, LaunchResult
from ..device.base import Device
from ..device.stream import StreamPool
from ..drift import DriftSignal
from ..errors import AdmissionRejected, ServeError
from ..faults.plan import FaultPlan
from ..kernel.kernel import WorkRange
from ..modes import OrchestrationFlow, ProfilingMode
from ..obs.events import EventKind, TraceEvent
from ..obs.tracer import NULL_TRACER, RecordingTracer
from ..predict import Prediction
from .lease import ProfileLeaseTable
from .qos import AdmissionController, QoSConfig, TenantSpec
from .signature import WorkloadSignature, derive_signature
from .store import SelectionStore

#: Default streams (= concurrently admitted requests) per device.
DEFAULT_STREAMS_PER_DEVICE = 4

#: Default profile-lease steal timeout, in store-clock seconds.
DEFAULT_LEASE_TIMEOUT = 30.0


def partition_units(
    units: int, weights: Sequence[float], align: int
) -> List[Tuple[int, int]]:
    """Split ``[0, units)`` into ``len(weights)`` aligned half-open parts.

    Part sizes are proportional to ``weights`` (a faster device gets a
    larger share), with every interior cut snapped to a multiple of
    ``align`` — the LCM of the pools' work-assignment factors, so any
    variant the policy later picks can start a part on a work-group
    boundary.  The tail part absorbs the unaligned remainder.  Parts
    may come back empty when rounding collapses a cut; callers skip
    those (and their devices).
    """
    if units < 0:
        raise ServeError(f"units must be >= 0, got {units}")
    if align < 1:
        raise ServeError(f"align must be >= 1, got {align}")
    total = sum(weights)
    if total <= 0 or len(weights) <= 1:
        return [(0, units)]
    ranges: List[Tuple[int, int]] = []
    prev = 0
    acc = 0.0
    for weight in weights[:-1]:
        acc += weight
        cut = int(round(units * acc / total / align)) * align
        cut = max(prev, min(cut, units))
        ranges.append((prev, cut))
        prev = cut
    ranges.append((prev, units))
    return ranges


@dataclass(frozen=True)
class ServeRequest:
    """One client launch request.

    ``args`` must be a fresh mapping per request (output buffers are
    written); ``signature`` overrides the derived workload class when the
    caller knows better than the feature extractor.
    """

    kernel: str
    args: Mapping[str, object]
    workload_units: int
    mode: Optional[ProfilingMode] = None
    flow: OrchestrationFlow = OrchestrationFlow.ASYNC
    signature: Optional[WorkloadSignature] = None
    #: Pin the placement dimension: run on this device kind (``"cpu"``,
    #: ``"gpu"``), bypassing the placement policy the way a pinned
    #: variant bypasses selection.  A pinned kind that is unknown or
    #: fully quarantined is ignored with an explicit note.
    device_kind: Optional[str] = None
    #: Split this launch across up to this many devices
    #: (:meth:`LaunchScheduler.launch_split`); ``None`` leaves the
    #: request whole unless the scheduler's ``split_threshold`` says
    #: otherwise.
    split: Optional[int] = None
    #: Tenant identity for QoS accounting and admission fairness;
    #: ``None`` serves under the scheduler's default tenant contract.
    tenant: Optional[str] = None
    #: Admission priority class override (0 is highest); ``None``
    #: inherits the tenant's configured class.
    priority: Optional[int] = None
    #: Per-request latency budget in fleet cycles; ``None`` inherits
    #: the tenant's configured deadline (or no deadline at all).
    deadline_cycles: Optional[float] = None


@dataclass(frozen=True)
class ServeOutcome:
    """What the scheduler did with one request."""

    request: ServeRequest
    #: Device the request was admitted to.
    device: str
    #: Workload-class key the selection was cached under.
    workload_class: str
    #: The underlying launch's result.
    result: LaunchResult
    #: Whether this request ran the micro-profile for its class.
    profiled: bool
    #: Whether a persisted selection served this request.
    store_hit: bool
    #: ``"granted"``/``"stolen"`` when this request held the profile
    #: lease, else ``None``.
    lease: Optional[str]
    #: Admission sequence number (the scheduler-trace time axis).
    sequence: int
    #: Why the request landed on this device kind (the placement-
    #: dimension reason, e.g. ``"store-measured placement"``); empty on
    #: single-kind fleets where there was nothing to decide.
    placement: str = ""
    #: Tenant the request was accounted to (``"default"`` when the
    #: request carried none).
    tenant: str = "default"
    #: Fleet-cycle sojourn of this request: total cycles the fleet's
    #: device clocks advanced between enqueue and completion.  On an
    #: otherwise-idle fleet this is the launch's own elapsed cycles;
    #: under load it also counts the work the request waited behind,
    #: which is what tail-latency percentiles must see.
    latency_cycles: float = 0.0
    #: The latency budget this request was held to (``None`` = none).
    deadline_cycles: Optional[float] = None
    #: Whether ``latency_cycles`` exceeded the budget.
    deadline_missed: bool = False

    @property
    def deferred(self) -> bool:
        """Whether profiling backpressure deferred this class's lease."""
        return self.lease == ProfileLeaseTable.DEFERRED


@dataclass(frozen=True)
class SplitOutcome:
    """One large launch served as stitched per-device parts.

    Each part ran a disjoint :class:`~repro.kernel.kernel.WorkRange` of
    the original workload against the *same* argument buffers, so the
    output needs no explicit stitching — part ``i`` wrote exactly the
    output slice its range covers.  Parts never micro-profile (they ride
    whatever selection their class already has), so splitting composes
    with warm stores, prediction, and quarantine but never races the
    profile lease.
    """

    request: ServeRequest
    #: Per-part outcomes, in range order.
    parts: Tuple[ServeOutcome, ...]
    #: The half-open unit ranges the parts covered, in order.
    ranges: Tuple[Tuple[int, int], ...]
    #: Admission sequence number of the split itself.
    sequence: int
    #: Tenant the split was accounted to (see :class:`ServeOutcome`).
    tenant: str = "default"
    #: Fleet-cycle sojourn of the whole split (see :class:`ServeOutcome`).
    latency_cycles: float = 0.0
    #: The latency budget the split was held to (``None`` = none).
    deadline_cycles: Optional[float] = None
    #: Whether ``latency_cycles`` exceeded the budget.
    deadline_missed: bool = False

    @property
    def devices(self) -> Tuple[str, ...]:
        """Device each part ran on, in range order."""
        return tuple(part.device for part in self.parts)

    @property
    def elapsed_cycles(self) -> float:
        """Stitched makespan: the slowest part's elapsed cycles.

        Parts run on independent device clocks, so the launch as a whole
        is done when its slowest part is.
        """
        return max(
            (part.result.elapsed_cycles for part in self.parts),
            default=0.0,
        )


@dataclass
class TenantStats:
    """One tenant's service record over a scheduler's lifetime.

    ``latencies`` holds every served request's fleet-cycle sojourn
    (:attr:`ServeOutcome.latency_cycles`), so tail percentiles are exact
    over the run rather than approximated from a sketch — serving runs
    here are bounded benchmark/test traffic, not unbounded production
    streams.
    """

    requests: int = 0
    deadline_misses: int = 0
    admission_rejects: int = 0
    profiles_deferred: int = 0
    latencies: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Linear-interpolated latency percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ServeError(f"percentile must be in [0, 100], got {q}")
        if not self.latencies:
            return 0.0
        data = sorted(self.latencies)
        pos = (len(data) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    @property
    def p50(self) -> float:
        """Median latency, in fleet cycles."""
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        """99th-percentile latency, in fleet cycles."""
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        """99.9th-percentile latency, in fleet cycles."""
        return self.percentile(99.9)


@dataclass
class ServeStats:
    """Aggregate counters over one scheduler's lifetime."""

    requests: int = 0
    profiled_launches: int = 0
    store_hits: int = 0
    eager_launches: int = 0
    #: Cold classes served by the predictor without a micro-profile.
    predicted_launches: int = 0
    #: Cold classes that paid the micro-profile despite an armed
    #: predictor (untrained, under-confident, or gated out).
    prediction_fallbacks: int = 0
    profiling_latency_cycles: float = 0.0
    workload_units: int = 0
    per_device: Dict[str, int] = field(default_factory=dict)
    #: Requests placed per device kind (the placement dimension).
    placements: Dict[str, int] = field(default_factory=dict)
    #: Launches served as stitched multi-device splits.
    split_launches: int = 0
    #: Requests refused by the bounded admission queue.
    admission_rejects: int = 0
    #: Served requests whose latency exceeded their deadline budget.
    deadline_misses: int = 0
    #: Cold-class micro-profiles postponed by backpressure.
    profiles_deferred: int = 0
    #: Per-tenant service records (latency percentiles live here).
    tenants: Dict[str, TenantStats] = field(default_factory=dict)

    def tenant(self, name: str) -> TenantStats:
        """Get-or-create one tenant's record (callers hold the lock)."""
        if name not in self.tenants:
            self.tenants[name] = TenantStats()
        return self.tenants[name]

    @property
    def profile_rate(self) -> float:
        """Fraction of requests that paid a micro-profile."""
        if self.requests <= 0:
            return 0.0
        return self.profiled_launches / self.requests


class _DeviceWorker:
    """One device's serving state: runtime, stream pool, engine lock."""

    def __init__(
        self,
        device: Device,
        config: ReproConfig,
        streams_per_device: int,
        index: int,
    ) -> None:
        self.name = f"{device.kind}{index}"
        self.runtime = DySelRuntime(device, config)
        self.streams = StreamPool(
            self.runtime.engine, streams_per_device, prefix=f"{self.name}"
        )
        #: Simulated engines advance one global clock per device; two
        #: threads interleaving host calls would corrupt it.  The lock
        #: serializes launches per device — cross-device launches still
        #: overlap, which is where fleet throughput comes from.
        self.lock = threading.Lock()
        self._load_lock = threading.Lock()
        self._pending_cycles = 0.0
        self._completed_cycles = 0.0
        self._completed_launches = 0

    @property
    def device_kind(self) -> str:
        """The device's architecture kind (selections transfer within it)."""
        return self.runtime.device.kind

    def estimate_cost(
        self,
        known_cost: Optional[float],
        static_cost: Optional[float] = None,
    ) -> float:
        """Estimated cycles one request will cost on this device.

        Prefers the caller's workload-class estimate (from the selection
        store); then the static cost-bound midpoint for the kernel (the
        cold-start prior from :mod:`repro.analyze.costbound`, available
        before any store entry exists); then this device's observed mean
        launch cost; then zero before any launch has completed.
        """
        if known_cost is not None:
            return known_cost
        if static_cost is not None:
            return static_cost
        with self._load_lock:
            if self._completed_launches > 0:
                return self._completed_cycles / self._completed_launches
        return 0.0

    def commit(self, estimated_cycles: float) -> None:
        """Reserve one admitted request's estimated cycles."""
        with self._load_lock:
            self._pending_cycles += estimated_cycles

    def complete(self, estimated_cycles: float, elapsed_cycles: float) -> None:
        """Retire an admitted request: drop its reservation, log its cost."""
        with self._load_lock:
            self._pending_cycles = max(
                0.0, self._pending_cycles - estimated_cycles
            )
            self._completed_cycles += elapsed_cycles
            self._completed_launches += 1

    def abort(self, estimated_cycles: float) -> None:
        """Drop a reservation whose launch failed (cost stays unknown)."""
        with self._load_lock:
            self._pending_cycles = max(
                0.0, self._pending_cycles - estimated_cycles
            )

    def projected_clock(self) -> float:
        """Estimated device clock once current in-flight work finishes.

        The engine clock only advances when a launch completes, so a
        device with several admitted-but-unfinished requests looks idle
        by clock alone; the pending reservations cover that gap.
        """
        with self._load_lock:
            return self.runtime.engine.now + self._pending_cycles


class LaunchScheduler:
    """Thread-safe multi-device serving front-end (see module docstring)."""

    def __init__(
        self,
        devices: Sequence[Device],
        config: Optional[ReproConfig] = None,
        store: Optional[SelectionStore] = None,
        streams_per_device: int = DEFAULT_STREAMS_PER_DEVICE,
        lease_timeout: Optional[float] = DEFAULT_LEASE_TIMEOUT,
        fault_plan: Optional[FaultPlan] = None,
        placement_policy: str = "cost-model",
        split_threshold: Optional[int] = None,
        qos: Optional[QoSConfig] = None,
    ) -> None:
        """Build a scheduler over a fleet of devices.

        Parameters
        ----------
        devices:
            The simulated fleet; one runtime + stream pool per device.
            Kinds may mix (CPU + GPU): placement becomes part of the
            selection tuple (:func:`repro.core.policy.decide_placement`).
        config:
            Shared :class:`ReproConfig` (defaults to the first device's);
            ``config.trace`` also enables the scheduler-level tracer.
        store:
            Persistent selection store; defaults to a fresh in-memory
            store (no TTL).  Pass a loaded store for warm starts.
        streams_per_device:
            Stream-pool capacity = per-device admission limit.
        lease_timeout:
            Profile-lease steal timeout in store-clock seconds (``None``
            disables stealing).
        fault_plan:
            Chaos-testing fault plan (:mod:`repro.faults`); installs one
            injector per device runtime, arming the hardened launch
            paths fleet-wide.  ``None`` (the default) serves clean.
        placement_policy:
            How the device-kind dimension is resolved on mixed fleets:
            ``"cost-model"`` (default) picks the least projected finish
            time — load plus the store-measured EWMA estimate when warm,
            else the static cost-bound prior; ``"dynamic-load"`` picks
            the least projected load alone (the oneDPL
            ``dynamic_load_policy`` rule).
        split_threshold:
            Auto-split launches of at least this many workload units
            across the fleet (:meth:`launch_split`); ``None`` (default)
            splits only on explicit ``ServeRequest.split``.
        qos:
            Admission control, per-tenant fairness, deadlines, and
            profiling backpressure (:class:`~repro.serve.qos.QoSConfig`).
            ``None`` (the default) serves exactly as before: unbounded
            admission, no tenant ordering, no deferral — per-request
            deadlines are still honored for latency accounting.
        """
        if not devices:
            raise ServeError("a scheduler needs at least one device")
        if placement_policy not in PLACEMENT_POLICIES:
            raise ServeError(
                f"unknown placement_policy {placement_policy!r} "
                f"(expected one of {list(PLACEMENT_POLICIES)})"
            )
        if split_threshold is not None and split_threshold < 1:
            raise ServeError(
                f"split_threshold must be >= 1 or None, got {split_threshold}"
            )
        self.placement_policy = placement_policy
        self.split_threshold = split_threshold
        self.config = config if config is not None else devices[0].config
        self.store = store if store is not None else SelectionStore()
        self._workers = [
            _DeviceWorker(device, self.config, streams_per_device, i)
            for i, device in enumerate(devices)
        ]
        #: Device kinds in fleet order (first appearance wins), and the
        #: workers serving each kind.
        self._kinds: List[str] = list(
            dict.fromkeys(w.device_kind for w in self._workers)
        )
        self._kind_workers: Dict[str, List[_DeviceWorker]] = {}
        for worker in self._workers:
            self._kind_workers.setdefault(worker.device_kind, []).append(
                worker
            )
        # One fleet, one fault ledger: a variant that misbehaves for one
        # client is barred for every client, and the ledger rides along
        # in the store's save/load snapshots.  The scheduler's config
        # governs its thresholds (a loaded store carries entries, not
        # policy).
        self.store.quarantine.policy = self.config.faults
        for worker in self._workers:
            worker.runtime.quarantine = self.store.quarantine
            if fault_plan is not None:
                worker.runtime.install_faults(fault_plan)
        self.leases = ProfileLeaseTable(
            timeout=lease_timeout, clock=self.store._clock
        )
        self.tracer = (
            RecordingTracer() if self.config.trace else NULL_TRACER
        )
        self.stats = ServeStats()
        self.qos = qos
        self.admission: Optional[AdmissionController] = None
        if qos is not None:
            capacity = (
                qos.max_inflight
                if qos.max_inflight is not None
                else streams_per_device * len(self._workers)
            )
            self.admission = AdmissionController(qos, capacity)
        self._seq = itertools.count()
        self._stats_lock = threading.Lock()
        self._dispatch_lock = threading.Lock()
        #: Cached static per-unit cost priors, keyed by (kernel, device
        #: kind); ``None`` entries mean "no bounded prior" (dominance
        #: off, unknown kernel/kind, or an unbounded interval).  Guarded
        #: by ``_static_lock``; invalidated both by the runtime hooks
        #: (re-registration, extension) and by :meth:`register_pool`
        #: itself — a *first* registration fires no hook, and a ``None``
        #: cached before it must not outlive it.
        self._static_estimates: Dict[
            Tuple[str, str], Optional[float]
        ] = {}
        self._static_lock = threading.Lock()
        for worker in self._workers:
            worker.runtime.add_invalidation_hook(self._on_invalidate)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_pool(
        self, pool: VariantPool, device_kind: Optional[str] = None
    ) -> None:
        """Register a kernel pool on the fleet.

        ``device_kind`` restricts the registration to devices of one kind
        — how heterogeneous fleets register kind-specific pools (the CPU
        variants of a kernel on the CPUs, the GPU variants on the GPUs)
        under one kernel signature name.  ``None`` (the default)
        registers on every device, preserving the homogeneous behavior.

        Any cached static cost prior for the kernel is dropped here, not
        just in the invalidation hook: the hook only fires when an
        *existing* registration is replaced or extended, so a prior
        (including a cached ``None`` = "no bounded prior") computed
        before the first registration would otherwise stay stale
        forever.
        """
        if device_kind is not None and device_kind not in self._kind_workers:
            raise ServeError(
                f"no {device_kind!r} devices in this fleet "
                f"(kinds: {self._kinds})"
            )
        targets = (
            self._workers
            if device_kind is None
            else self._kind_workers[device_kind]
        )
        for worker in targets:
            worker.runtime.register_pool(pool)
        self._drop_static_estimates(pool.name)

    def _drop_static_estimates(self, kernel: str) -> None:
        """Forget every cached (kernel, device-kind) cost prior."""
        with self._static_lock:
            for key in [
                k for k in self._static_estimates if k[0] == kernel
            ]:
                del self._static_estimates[key]

    def _static_unit_cost(
        self, kernel: str, device_kind: str
    ) -> Optional[float]:
        """The kernel's static per-unit cost prior on one device kind.

        The midpoint of the pool default's static cost interval
        (:func:`repro.analyze.dominance.cold_start_estimate`), cached per
        (kernel, kind).  ``None`` when ``config.analyze.dominance`` is
        off, the kernel is unknown on that kind, or the interval is
        unbounded — dispatch then falls back to observed means exactly
        as before.
        """
        settings = self.config.analyze
        if not settings.dominance:
            return None
        key = (kernel, device_kind)
        with self._static_lock:
            if key in self._static_estimates:
                return self._static_estimates[key]
            estimate: Optional[float] = None
            for worker in self._workers:
                if worker.device_kind != device_kind:
                    continue
                if kernel in worker.runtime.registry:
                    estimate = cold_start_estimate(
                        worker.runtime.registry.pool(kernel),
                        device_kind,
                        policy=policy_from_settings(settings),
                    )
                break
            self._static_estimates[key] = estimate
            return estimate

    def _on_invalidate(self, kernel: str, why: str) -> None:
        """Runtime invalidation hook → evict persisted selections too."""
        self._drop_static_estimates(kernel)
        evicted = self.store.invalidate_kernel(kernel)
        if evicted and self.tracer.enabled:
            self.tracer.instant(
                EventKind.STORE_EVICT,
                kernel,
                float(next(self._seq)),
                evicted=evicted,
                reason=why,
            )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _fleet_cycles(self) -> float:
        """Sum of every device clock: the fleet's total-work axis.

        A fleet has no single clock, but the *sum* of device clocks
        advances exactly by the cycles executed anywhere, so the delta
        between two reads is "fleet work done meanwhile" — a
        deterministic, queueing-sensitive latency axis.  On an idle
        fleet a request's delta is its own elapsed cycles; under load it
        also counts everything the request waited behind.
        """
        return sum(worker.runtime.engine.now for worker in self._workers)

    def _tenant_spec(self, request: ServeRequest) -> Optional[TenantSpec]:
        """The request's QoS contract (``None`` when QoS is off)."""
        if self.qos is None:
            return None
        return self.qos.spec(request.tenant)

    def _deadline_for(
        self, request: ServeRequest, spec: Optional[TenantSpec]
    ) -> Optional[float]:
        """Resolve the latency budget: request override, else contract."""
        if request.deadline_cycles is not None:
            return request.deadline_cycles
        return spec.deadline_cycles if spec is not None else None

    def _defer_profiling(self) -> bool:
        """Whether profiling backpressure is currently engaged."""
        return self.admission is not None and self.admission.deferring

    def _record_deferral(
        self, request: ServeRequest, key: str, seq: int, what: str
    ) -> None:
        """Account one backpressure-deferred profile lease."""
        tenant = request.tenant if request.tenant is not None else "default"
        with self._stats_lock:
            self.stats.profiles_deferred += 1
            self.stats.tenant(tenant).profiles_deferred += 1
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.PROFILE_DEFERRED,
                request.kernel,
                float(seq),
                workload_class=key,
                tenant=tenant,
                what=what,
                pressure=self.admission.pressure(),
            )

    def launch(self, request: ServeRequest):
        """Serve one request (blocking; safe to call from many threads).

        Returns a :class:`ServeOutcome` — or a :class:`SplitOutcome`
        when the request asked to be split (``ServeRequest.split``) or
        the scheduler's ``split_threshold`` promotes it.  With a QoS
        config installed the request first passes admission control,
        which may block (queue) or raise
        :class:`~repro.errors.AdmissionRejected` (bounded queue full).
        """
        spec = self._tenant_spec(request)
        tenant = request.tenant if request.tenant is not None else (
            spec.name if spec is not None else "default"
        )
        deadline = self._deadline_for(request, spec)
        enq_cycles = self._fleet_cycles()
        admitted = False
        if self.admission is not None:
            assert spec is not None
            priority = (
                request.priority
                if request.priority is not None
                else spec.priority
            )
            try:
                bypasses = self.admission.admit(
                    tenant, priority, spec.weight, deadline
                )
            except AdmissionRejected as exc:
                with self._stats_lock:
                    self.stats.admission_rejects += 1
                    self.stats.tenant(tenant).admission_rejects += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        EventKind.ADMISSION,
                        request.kernel,
                        float(next(self._seq)),
                        tenant=tenant,
                        admitted=False,
                        queue_depth=exc.queue_depth,
                        limit=exc.limit,
                    )
                raise
            admitted = True
            if self.tracer.enabled:
                self.tracer.instant(
                    EventKind.ADMISSION,
                    request.kernel,
                    float(next(self._seq)),
                    tenant=tenant,
                    admitted=True,
                    priority=priority,
                    bypasses=bypasses,
                )
        try:
            if self._should_split(request):
                outcome = self.launch_split(request)
            else:
                outcome = self._serve_whole(request, enqueue=True)
        finally:
            if admitted:
                self.admission.release(tenant)
        return self._finalize(request, outcome, tenant, deadline, enq_cycles)

    def _finalize(
        self,
        request: ServeRequest,
        outcome,
        tenant: str,
        deadline: Optional[float],
        enq_cycles: float,
    ):
        """Stamp latency and deadline accounting onto a served outcome."""
        latency = max(0.0, self._fleet_cycles() - enq_cycles)
        missed = deadline is not None and latency > deadline
        with self._stats_lock:
            record = self.stats.tenant(tenant)
            record.requests += 1
            record.latencies.append(latency)
            if missed:
                record.deadline_misses += 1
                self.stats.deadline_misses += 1
        if missed and self.tracer.enabled:
            self.tracer.instant(
                EventKind.DEADLINE_MISS,
                request.kernel,
                float(next(self._seq)),
                tenant=tenant,
                deadline_cycles=deadline,
                latency_cycles=latency,
            )
        return replace(
            outcome,
            tenant=tenant,
            latency_cycles=latency,
            deadline_cycles=deadline,
            deadline_missed=missed,
        )

    def _should_split(self, request: ServeRequest) -> bool:
        """Whether this request gets the multi-device split path."""
        if request.split is not None:
            return request.split > 1
        return (
            self.split_threshold is not None
            and request.workload_units >= self.split_threshold
            and len(self._workers) > 1
        )

    def _placement_candidates(
        self, request: ServeRequest
    ) -> Tuple[
        List[PlacementCandidate],
        Dict[str, WorkloadSignature],
        Dict[str, List[_DeviceWorker]],
        Dict[str, Optional[float]],
        Dict[str, Optional[float]],
    ]:
        """Per-device-kind bids for one request.

        For each kind that has the kernel registered: the workload-class
        signature (kinds cost independently — the kind is part of the
        key), the store-measured cost when the class is warm there, the
        static cost-bound prior, the least-loaded same-kind worker's
        projected clock, and whether the kind's whole pool is
        quarantined.  Raises when no kind has the kernel.
        """
        units = request.workload_units
        candidates: List[PlacementCandidate] = []
        signatures: Dict[str, WorkloadSignature] = {}
        kind_workers: Dict[str, List[_DeviceWorker]] = {}
        costs: Dict[str, Optional[float]] = {}
        statics: Dict[str, Optional[float]] = {}
        for kind in self._kinds:
            workers = [
                w
                for w in self._kind_workers[kind]
                if request.kernel in w.runtime.registry
            ]
            if not workers:
                continue
            kind_workers[kind] = workers
            sig = request.signature or derive_signature(
                request.kernel, kind, request.args, units
            )
            signatures[kind] = sig
            entry = self.store.peek(sig.key)
            costs[kind] = (
                entry.cycles_per_unit * units if entry is not None else None
            )
            unit_cost = self._static_unit_cost(request.kernel, kind)
            statics[kind] = (
                unit_cost * units if unit_cost is not None else None
            )
            pool = workers[0].runtime.registry.pool(request.kernel)
            barred = self.store.quarantine.quarantined(pool.name)
            candidates.append(
                PlacementCandidate(
                    device_kind=kind,
                    load_cycles=min(w.projected_clock() for w in workers),
                    measured_cycles=costs[kind],
                    static_cycles=statics[kind],
                    quarantined=all(
                        name in barred for name in pool.variant_names
                    ),
                )
            )
        if not candidates:
            raise ServeError(
                f"kernel {request.kernel!r} is not registered on any "
                f"device (fleet kinds: {self._kinds})"
            )
        return candidates, signatures, kind_workers, costs, statics

    def _dispatch(
        self, request: ServeRequest, seq: int
    ) -> Tuple[_DeviceWorker, WorkloadSignature, float, PlacementDecision]:
        """Two-level cost-aware dispatch: pick a kind, then a device.

        The *kind* is the placement dimension of the selection tuple,
        resolved by :func:`repro.core.policy.decide_placement` under the
        scheduler's placement policy (store-measured EWMA estimates once
        the class is warm, static cost-bound priors cold, projected load
        always).  Within the chosen kind the earliest projected finish
        wins, and the winner's estimate is reserved on its pending load
        under the dispatch lock, so concurrent clients don't pile onto
        the same momentarily-idle device.

        When every kind's pool is fully quarantined the quarantine flags
        are ignored here: dispatch still picks a device and the runtime
        raises its structured ``LaunchAbortedError`` (with the
        quarantined-variant detail), exactly as before placement
        existed.
        """
        candidates, signatures, kind_workers, costs, statics = (
            self._placement_candidates(request)
        )
        if all(c.quarantined for c in candidates):
            candidates = [
                replace(c, quarantined=False) for c in candidates
            ]
        decision = decide_placement(
            request.kernel,
            candidates,
            policy=self.placement_policy,
            pinned_kind=request.device_kind,
        )
        kind = decision.device_kind
        with self._dispatch_lock:
            worker = min(
                kind_workers[kind],
                key=lambda w: (
                    w.projected_clock()
                    + w.estimate_cost(costs[kind], statics[kind]),
                    w.streams.in_flight,
                ),
            )
            estimate = worker.estimate_cost(costs[kind], statics[kind])
            worker.commit(estimate)
        if self.tracer.enabled and (
            len(candidates) > 1 or request.device_kind is not None
        ):
            self.tracer.instant(
                EventKind.PLACEMENT,
                request.kernel,
                float(seq),
                device=worker.name,
                device_kind=kind,
                reason=decision.reason,
                projected={
                    k: round(v, 3) for k, v in decision.projected.items()
                },
            )
        return worker, signatures[kind], estimate, decision

    # ------------------------------------------------------------------
    # Work splitting
    # ------------------------------------------------------------------

    def _split_alignment(
        self, kind_workers: Dict[str, List[_DeviceWorker]], kernel: str
    ) -> int:
        """Unit alignment every split cut must respect.

        The LCM of the work-assignment factors across every eligible
        kind's pool: any variant the per-part policy later picks can
        then start its part on a work-group boundary (ranged launches
        require aligned starts; see
        :meth:`repro.kernel.kernel.KernelVariant.groups_for_units`).
        """
        factors: List[int] = []
        for workers in kind_workers.values():
            pool = workers[0].runtime.registry.pool(kernel)
            factors.extend(v.wa_factor for v in pool.variants)
        return lcm_of(factors) if factors else 1

    def launch_split(
        self, request: ServeRequest, parts: Optional[int] = None
    ) -> SplitOutcome:
        """Split one large launch across the fleet and stitch the parts.

        The workload's unit range is partitioned into up to ``parts``
        (default: ``request.split``, else one per eligible device)
        contiguous aligned sub-ranges, sized inversely to each target
        device kind's estimated cycles per unit (store-measured EWMA
        when warm, static cost-bound prior cold, equal shares when
        neither exists), and each part runs as a ranged profiling-off
        launch on its own device — against the *same* argument buffers,
        whose disjoint output slices stitch the result by construction.
        Parts never micro-profile or publish; the class warms up through
        whole launches only.

        Quarantined kinds are excluded from splitting the way they are
        excluded from placement; a fleet (or request) that cannot
        sustain more than one part degrades to a normal
        :meth:`launch`-style single-device serve, still wrapped in a
        :class:`SplitOutcome`.
        """
        seq = next(self._seq)
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.SERVE_ENQUEUE,
                request.kernel,
                float(seq),
                workload_units=request.workload_units,
                split_requested=parts or request.split,
            )
        whole = replace(request, split=None)
        candidates, _, kind_workers, costs, statics = (
            self._placement_candidates(request)
        )
        eligible_kinds = [
            c.device_kind for c in candidates if not c.quarantined
        ] or [c.device_kind for c in candidates]
        if request.device_kind is not None and (
            request.device_kind in eligible_kinds
        ):
            eligible_kinds = [request.device_kind]
        workers = [
            w for kind in eligible_kinds for w in kind_workers[kind]
        ]
        align = self._split_alignment(
            {k: kind_workers[k] for k in eligible_kinds}, request.kernel
        )
        units = request.workload_units
        max_parts = min(
            parts if parts is not None else (request.split or len(workers)),
            len(workers),
            max(1, units // align),
        )
        if max_parts <= 1:
            outcome = self._serve_whole(whole)
            return SplitOutcome(
                request=request,
                parts=(outcome,),
                ranges=((0, units),),
                sequence=seq,
            )
        # Least-loaded devices first; a part per chosen device.
        chosen = sorted(workers, key=lambda w: w.projected_clock())[
            :max_parts
        ]

        def unit_cost(worker: _DeviceWorker) -> Optional[float]:
            kind = worker.device_kind
            for basis in (costs[kind], statics[kind]):
                if basis is not None and units > 0:
                    return basis / units
            return None

        per_unit = [unit_cost(w) for w in chosen]
        if any(c is None or c <= 0 for c in per_unit):
            weights = [1.0] * len(chosen)
        else:
            weights = [1.0 / c for c in per_unit]
        ranges = partition_units(units, weights, align)
        assignments = [
            (worker, WorkRange(start, end))
            for worker, (start, end) in zip(chosen, ranges)
            if end > start
        ]
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.SPLIT_LAUNCH,
                request.kernel,
                float(seq),
                parts=len(assignments),
                devices=[w.name for w, _ in assignments],
                ranges=[(r.start, r.end) for _, r in assignments],
                align=align,
            )
        outcomes: List[ServeOutcome] = []
        for index, (worker, work_range) in enumerate(assignments):
            part_seq = next(self._seq)
            part_units = len(work_range)
            part = replace(
                whole,
                workload_units=part_units,
                device_kind=worker.device_kind,
            )
            part_sig = request.signature or derive_signature(
                request.kernel, worker.device_kind, request.args, part_units
            )
            cost = unit_cost(worker)
            estimate = worker.estimate_cost(
                cost * part_units if cost is not None else None
            )
            worker.commit(estimate)
            stream = worker.streams.acquire()
            try:
                outcomes.append(
                    self._serve_admitted(
                        part,
                        worker,
                        stream,
                        part_seq,
                        part_sig,
                        estimate,
                        placement=(
                            f"split part {index + 1}/{len(assignments)}"
                        ),
                        work_range=work_range,
                    )
                )
            finally:
                worker.streams.release(stream)
        with self._stats_lock:
            self.stats.split_launches += 1
        return SplitOutcome(
            request=request,
            parts=tuple(outcomes),
            ranges=tuple((r.start, r.end) for _, r in assignments),
            sequence=seq,
        )

    def _serve_whole(
        self, request: ServeRequest, enqueue: bool = False
    ) -> ServeOutcome:
        """Serve one whole request on one device.

        ``enqueue`` traces the ``SERVE_ENQUEUE`` instant — the plain
        :meth:`launch` path; the split path traces its own enqueue for
        the parent request and serves degraded singletons silently.
        """
        seq = next(self._seq)
        if enqueue and self.tracer.enabled:
            self.tracer.instant(
                EventKind.SERVE_ENQUEUE,
                request.kernel,
                float(seq),
                workload_units=request.workload_units,
                **(
                    {"tenant": request.tenant}
                    if request.tenant is not None
                    else {}
                ),
            )
        worker, signature, estimate, placement = self._dispatch(request, seq)
        stream = worker.streams.acquire()
        try:
            return self._serve_admitted(
                request,
                worker,
                stream,
                seq,
                signature,
                estimate,
                placement=placement.reason,
            )
        finally:
            worker.streams.release(stream)

    def _serve_admitted(
        self,
        request,
        worker,
        stream,
        seq,
        signature,
        estimate,
        placement: str = "",
        work_range: Optional[WorkRange] = None,
    ) -> ServeOutcome:
        """Run an admitted request (stream leased, cost reserved).

        ``work_range`` marks a split part: parts never race the profile
        lease, never re-arm drift, and never publish — they ride the
        selection their class already has (store entry, else pool
        default) so splitting cannot perturb selection state.
        """
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.SERVE_ADMIT,
                request.kernel,
                float(seq),
                device=worker.name,
                stream=stream.name,
            )
        key = signature.key

        entry = self.store.lookup(key)
        lease: Optional[str] = None
        pinned: Optional[str] = None
        profiling = False
        deferred = False
        drift = self.store.drift
        drift_rearm = False
        prediction: Optional[Prediction] = None
        with contextlib.ExitStack() as stack:
            if work_range is not None:
                if entry is not None:
                    pinned = entry.selected
                    if self.tracer.enabled:
                        self.tracer.instant(
                            EventKind.STORE_HIT,
                            request.kernel,
                            float(seq),
                            workload_class=key,
                            selected=entry.selected,
                            samples=entry.samples,
                        )
            elif entry is not None:
                if drift is not None and drift.should_rearm(key):
                    if self._defer_profiling():
                        # Backpressure: leave the drift episode open (no
                        # claim consumed) and serve pinned; a launch
                        # after pressure clears re-profiles the class.
                        self._record_deferral(
                            request, key, seq, what="drift re-profile"
                        )
                    # A confirmed drift wants this class re-profiled.
                    # Claim is consume-once and the profile lease rides
                    # along, so concurrent launches of a drifting class
                    # produce exactly one re-profile per episode.
                    elif drift.claim(key):
                        lease = stack.enter_context(
                            self.leases.holding(key, seq)
                        )
                        if lease is not None:
                            drift_rearm = True
                        else:
                            drift.release(key)
                if not drift_rearm:
                    pinned = entry.selected
                    if self.tracer.enabled:
                        self.tracer.instant(
                            EventKind.STORE_HIT,
                            request.kernel,
                            float(seq),
                            workload_class=key,
                            selected=entry.selected,
                            samples=entry.samples,
                        )
            elif self._defer_profiling():
                # Overload: run this cold class on the policy's best
                # known variant without racing for the lease, publishing
                # nothing — the class stays cold, so profiling resumes
                # (and the store still converges to the measured oracle)
                # once pressure clears.
                lease = self.leases.defer(key)
                deferred = True
                self._record_deferral(
                    request, key, seq, what="micro-profile"
                )
            else:
                # ``holding`` releases in a finally, so a launch that
                # raises (fault-aborted, verification refusal) cannot
                # wedge the class's lease until the steal timeout.
                lease = stack.enter_context(self.leases.holding(key, seq))
                profiling = lease is not None
                if lease is not None and self.tracer.enabled:
                    kind = (
                        EventKind.PROFILE_LEASE_GRANT
                        if lease == ProfileLeaseTable.GRANTED
                        else EventKind.PROFILE_LEASE_STEAL
                    )
                    self.tracer.instant(
                        kind,
                        request.kernel,
                        float(seq),
                        workload_class=key,
                        device=worker.name,
                    )
                if lease is not None:
                    prediction = self._consult_predictor(request, key, seq)

            held = lease in (
                ProfileLeaseTable.GRANTED,
                ProfileLeaseTable.STOLEN,
            )
            result = None
            try:
                with worker.lock:
                    result = worker.runtime.launch_kernel(
                        request.kernel,
                        request.args,
                        request.workload_units,
                        profiling=profiling or deferred,
                        mode=request.mode,
                        flow=request.flow,
                        pinned_variant=pinned,
                        stream_name=stream.name,
                        drift_rearm=drift_rearm,
                        predicted=prediction,
                        work_range=work_range,
                        deferred=deferred,
                    )
                worker.complete(estimate, result.elapsed_cycles)
                if held:
                    predicted = self._prediction_applied(prediction, result)
                    self._publish(
                        key, request, result, predicted=predicted
                    )
                    self._trace_prediction(
                        request, key, seq, prediction, predicted
                    )
                    if result.profiled:
                        self._close_drift_episode(
                            key,
                            request,
                            result,
                            seq,
                            stale_predicted=(
                                entry is not None and entry.predicted
                            ),
                        )
                    elif drift_rearm:
                        # The runtime demoted the re-armed launch to
                        # profiling-off; the episode stays open for the
                        # next launch to retry.
                        drift.release(key)
            finally:
                if result is None:
                    worker.abort(estimate)
                    if drift_rearm:
                        drift.release(key)

        served_from_store = entry is not None and not drift_rearm
        self._observe_drift(key, request, result, served_from_store, seq)
        self._account(request, worker, result, served_from_store)
        return ServeOutcome(
            request=request,
            device=worker.name,
            workload_class=key,
            result=result,
            profiled=result.profiled,
            store_hit=served_from_store,
            lease=lease,
            sequence=seq,
            placement=placement,
        )

    def _consult_predictor(
        self, request: ServeRequest, key: str, seq: int
    ) -> Optional[Prediction]:
        """The predictor's confident guess for a cold class, or ``None``.

        Called only by the lease holder of a cold workload class — the
        one launch that would otherwise micro-profile.  An untrained or
        under-confident model falls back to that micro-profile and the
        fallback is recorded (``PREDICTION_FALLBACK``), so predicted
        serving is always auditable from the trace alone.
        """
        predictor = self.store.predictor
        if predictor is None:
            return None
        candidate = predictor.predict(key)
        if predictor.confident(candidate):
            return candidate
        with self._stats_lock:
            self.stats.prediction_fallbacks += 1
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.PREDICTION_FALLBACK,
                request.kernel,
                float(seq),
                workload_class=key,
                reason=(
                    "untrained" if candidate is None else "below threshold"
                ),
                confidence=(
                    None if candidate is None else candidate.confidence
                ),
            )
        return None

    @staticmethod
    def _prediction_applied(
        prediction: Optional[Prediction], result: LaunchResult
    ) -> bool:
        """Whether the launch actually ran on the predicted selection.

        The policy may reject a prediction (drift re-arm, dominance
        exclusion, variant gone from the pool) or resolve the launch by
        a stronger gate whose fallback variant merely coincides with the
        guess — only an explicit ``"predicted selection"`` decision
        counts.
        """
        return (
            prediction is not None
            and not result.profiled
            and result.selected == prediction.variant
            and result.reason.startswith("predicted selection")
        )

    def _trace_prediction(
        self,
        request: ServeRequest,
        key: str,
        seq: int,
        prediction: Optional[Prediction],
        applied: bool,
    ) -> None:
        """Account one lease-held launch's prediction outcome."""
        if prediction is None:
            return
        with self._stats_lock:
            if applied:
                self.stats.predicted_launches += 1
            else:
                self.stats.prediction_fallbacks += 1
        if not self.tracer.enabled:
            return
        if applied:
            self.tracer.instant(
                EventKind.PREDICTION,
                request.kernel,
                float(seq),
                workload_class=key,
                variant=prediction.variant,
                confidence=prediction.confidence,
            )
        else:
            self.tracer.instant(
                EventKind.PREDICTION_FALLBACK,
                request.kernel,
                float(seq),
                workload_class=key,
                reason="rejected by policy",
                confidence=prediction.confidence,
            )

    def _publish(
        self,
        key: str,
        request: ServeRequest,
        result: LaunchResult,
        predicted: bool = False,
    ) -> None:
        """Persist a lease holder's selection for future warm lookups.

        Micro-profiled launches publish the winner's measured cycles per
        unit; launches the runtime demoted to profiling-off (small
        workload, single-variant pool, infeasible plan) publish the
        variant that actually ran with a coarse elapsed-based estimate —
        still worth persisting, because it stops every later request of
        this class from re-racing for the lease.  Predicted launches
        publish the same way but flagged ``predicted``: the entry serves
        and drifts like a measured one without feeding the predictor's
        own training set.
        """
        if result.record is not None and result.record.selected is not None:
            cycles = result.record.best_measurement().cycles_per_unit
        elif request.workload_units > 0:
            cycles = result.elapsed_cycles / request.workload_units
        else:
            return
        self.store.publish(
            key,
            kernel=request.kernel,
            selected=result.selected,
            cycles_per_unit=cycles,
            mode=result.mode.value if result.mode is not None else None,
            flow=result.flow.value if result.flow is not None else None,
            predicted=predicted,
        )

    def _observe_drift(
        self,
        key: str,
        request: ServeRequest,
        result: LaunchResult,
        served_from_store: bool,
        seq: int,
    ) -> None:
        """Feed one pinned-replay launch into the fleet's drift loop.

        Only store-served (pinned, profiling-off) launches feed the
        detector: they replay one fixed variant, so their cycles per
        unit track the *selection's* throughput under live traffic.
        Cold eager launches and profiled launches mix variant churn and
        profiling overhead into the measurement and are skipped.
        """
        drift = self.store.drift
        if (
            drift is None
            or not served_from_store
            or result.profiled
            or request.workload_units <= 0
            or result.elapsed_cycles <= 0.0
        ):
            return
        cycles_per_unit = result.elapsed_cycles / request.workload_units
        signal = drift.observe(
            key, request.kernel, result.selected, cycles_per_unit
        )
        if signal is DriftSignal.NONE or not self.tracer.enabled:
            return
        kind = (
            EventKind.DRIFT_SUSPECT
            if signal is DriftSignal.SUSPECT
            else EventKind.DRIFT_CONFIRMED
        )
        self.tracer.instant(
            kind,
            request.kernel,
            float(seq),
            workload_class=key,
            variant=result.selected,
            cycles_per_unit=cycles_per_unit,
        )

    def _close_drift_episode(
        self,
        key: str,
        request: ServeRequest,
        result: LaunchResult,
        seq: int,
        stale_predicted: bool = False,
    ) -> None:
        """Close the class's open drift episode with the fresh winner.

        Called for every lease-held publish (drift re-profiles *and*
        cold re-profiles of a class whose decayed entry already
        expired), so an episode cannot be left dangling by whichever
        path re-measured first.  A no-op when no episode is open.

        ``stale_predicted`` marks an episode whose demoted entry came
        from the predictor: the re-measured winner is fed back as a
        weighted training correction
        (:meth:`repro.predict.SelectionPredictor.correct`), so a model
        that drifted wrong stops repeating the mistake.
        """
        drift = self.store.drift
        if drift is None:
            return
        episode = drift.complete(key, result.selected)
        if (
            episode is not None
            and stale_predicted
            and self.store.predictor is not None
        ):
            self.store.predictor.correct(key, result.selected)
        if episode is not None and self.tracer.enabled:
            self.tracer.instant(
                EventKind.RESELECTION,
                request.kernel,
                float(seq),
                workload_class=key,
                stale_variant=episode.stale_variant,
                new_variant=result.selected,
                reselected=episode.reselected,
            )

    def _account(self, request, worker, result, store_hit: bool) -> None:
        """Fold one served request into the aggregate counters."""
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.workload_units += request.workload_units
            self.stats.profiled_launches += int(result.profiled)
            self.stats.store_hits += int(store_hit)
            self.stats.eager_launches += int(
                not result.profiled and not store_hit
            )
            self.stats.profiling_latency_cycles += (
                result.profiling_latency_cycles
            )
            self.stats.per_device[worker.name] = (
                self.stats.per_device.get(worker.name, 0) + 1
            )
            self.stats.placements[worker.device_kind] = (
                self.stats.placements.get(worker.device_kind, 0) + 1
            )

    def serve_all(
        self, requests: Sequence[ServeRequest], clients: int = 8
    ) -> List[ServeOutcome]:
        """Serve many requests from a pool of ``clients`` threads.

        Outcomes are returned in request order regardless of completion
        order.  This is the benchmark's (and tests') entry point for
        simulating concurrent traffic.
        """
        if clients < 1:
            raise ServeError(f"clients must be >= 1, got {clients}")
        if clients == 1:
            return [self.launch(request) for request in requests]
        with ThreadPoolExecutor(max_workers=clients) as executor:
            return list(executor.map(self.launch, requests))

    # ------------------------------------------------------------------
    # Fleet introspection
    # ------------------------------------------------------------------

    @property
    def devices(self) -> Tuple[str, ...]:
        """Names of the fleet's devices (``cpu0``, ``gpu1``, ...)."""
        return tuple(worker.name for worker in self._workers)

    def runtime(self, device: str) -> DySelRuntime:
        """The runtime serving one named device."""
        for worker in self._workers:
            if worker.name == device:
                return worker.runtime
        raise ServeError(
            f"unknown device {device!r} (fleet: {list(self.devices)})"
        )

    def makespan_cycles(self) -> float:
        """Fleet makespan: the furthest-advanced device clock.

        Device clocks are independent, so the fleet's simulated wall time
        for a batch of requests is the maximum over devices — the number
        throughput comparisons divide by.
        """
        return max(
            worker.runtime.engine.now for worker in self._workers
        )

    def device_traces(self) -> Dict[str, Tuple[TraceEvent, ...]]:
        """Each device's recorded launch trace (empty when tracing off).

        Per-device traces are sequential (the engine lock serializes
        launches per device) and therefore reconcile with
        :func:`repro.obs.export.reconcile` individually.
        """
        return {
            worker.name: worker.runtime.tracer.events
            for worker in self._workers
        }
