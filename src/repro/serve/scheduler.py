"""The concurrent launch scheduler: many clients, many devices, one brain.

:class:`LaunchScheduler` is the serving front-end over a fleet of
simulated devices.  Each device gets its own :class:`DySelRuntime` (one
engine, one clock, one trace timeline) plus a bounded
:class:`~repro.device.stream.StreamPool`; client threads call
:meth:`LaunchScheduler.launch` concurrently and the scheduler:

1. **enqueues** the request (``SERVE_ENQUEUE``),
2. **admits** it onto the least-loaded device by leasing a stream from
   that device's pool (``SERVE_ADMIT``) — pool capacity is the per-device
   admission limit,
3. resolves the request's **workload class** (input-aware signature,
   :mod:`repro.serve.signature`) and consults the persistent
   :class:`~repro.serve.store.SelectionStore`:

   * **warm** — a live entry pins the stored winner; the launch runs
     profiling-off (``STORE_HIT``),
   * **cold** — the request races for the class's *profile lease*
     (:mod:`repro.serve.lease`); the winner consults the armed
     selection predictor (:mod:`repro.predict`) — a confident guess
     skips the micro-profile outright (``PREDICTION``) — otherwise
     micro-profiles (``PROFILE_LEASE_GRANT``/``STEAL``,
     ``PREDICTION_FALLBACK``) and publishes the selection; everyone
     else runs eagerly with the current-best variant,

4. serializes engine access per device (simulated engines are
   single-clocked), runs the launch, releases stream and lease.

This generalizes the paper's asynchronous flow (§2.4) from
chunks-within-a-launch to launches-within-a-fleet: profiling happens once
per (pool, device-kind, workload-class) while the rest of the traffic
keeps flowing with the best answer known so far.

Scheduler-level events land on the scheduler's own tracer, whose "time"
axis is a monotonically increasing admission sequence number — request
ordering, not device cycles (each device keeps its own cycle timeline, so
a fleet has no single clock).  Per-device launch traces remain available
from each runtime and reconcile with :func:`repro.obs.export.reconcile`.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analyze.dominance import cold_start_estimate, policy_from_settings
from ..compiler.variants import VariantPool
from ..config import ReproConfig
from ..core.runtime import DySelRuntime, LaunchResult
from ..device.base import Device
from ..device.stream import StreamPool
from ..drift import DriftSignal
from ..errors import ServeError
from ..faults.plan import FaultPlan
from ..modes import OrchestrationFlow, ProfilingMode
from ..obs.events import EventKind, TraceEvent
from ..obs.tracer import NULL_TRACER, RecordingTracer
from ..predict import Prediction
from .lease import ProfileLeaseTable
from .signature import WorkloadSignature, derive_signature
from .store import SelectionStore

#: Default streams (= concurrently admitted requests) per device.
DEFAULT_STREAMS_PER_DEVICE = 4

#: Default profile-lease steal timeout, in store-clock seconds.
DEFAULT_LEASE_TIMEOUT = 30.0


@dataclass(frozen=True)
class ServeRequest:
    """One client launch request.

    ``args`` must be a fresh mapping per request (output buffers are
    written); ``signature`` overrides the derived workload class when the
    caller knows better than the feature extractor.
    """

    kernel: str
    args: Mapping[str, object]
    workload_units: int
    mode: Optional[ProfilingMode] = None
    flow: OrchestrationFlow = OrchestrationFlow.ASYNC
    signature: Optional[WorkloadSignature] = None


@dataclass(frozen=True)
class ServeOutcome:
    """What the scheduler did with one request."""

    request: ServeRequest
    #: Device the request was admitted to.
    device: str
    #: Workload-class key the selection was cached under.
    workload_class: str
    #: The underlying launch's result.
    result: LaunchResult
    #: Whether this request ran the micro-profile for its class.
    profiled: bool
    #: Whether a persisted selection served this request.
    store_hit: bool
    #: ``"granted"``/``"stolen"`` when this request held the profile
    #: lease, else ``None``.
    lease: Optional[str]
    #: Admission sequence number (the scheduler-trace time axis).
    sequence: int


@dataclass
class ServeStats:
    """Aggregate counters over one scheduler's lifetime."""

    requests: int = 0
    profiled_launches: int = 0
    store_hits: int = 0
    eager_launches: int = 0
    #: Cold classes served by the predictor without a micro-profile.
    predicted_launches: int = 0
    #: Cold classes that paid the micro-profile despite an armed
    #: predictor (untrained, under-confident, or gated out).
    prediction_fallbacks: int = 0
    profiling_latency_cycles: float = 0.0
    workload_units: int = 0
    per_device: Dict[str, int] = field(default_factory=dict)

    @property
    def profile_rate(self) -> float:
        """Fraction of requests that paid a micro-profile."""
        if self.requests <= 0:
            return 0.0
        return self.profiled_launches / self.requests


class _DeviceWorker:
    """One device's serving state: runtime, stream pool, engine lock."""

    def __init__(
        self,
        device: Device,
        config: ReproConfig,
        streams_per_device: int,
        index: int,
    ) -> None:
        self.name = f"{device.kind}{index}"
        self.runtime = DySelRuntime(device, config)
        self.streams = StreamPool(
            self.runtime.engine, streams_per_device, prefix=f"{self.name}"
        )
        #: Simulated engines advance one global clock per device; two
        #: threads interleaving host calls would corrupt it.  The lock
        #: serializes launches per device — cross-device launches still
        #: overlap, which is where fleet throughput comes from.
        self.lock = threading.Lock()
        self._load_lock = threading.Lock()
        self._pending_cycles = 0.0
        self._completed_cycles = 0.0
        self._completed_launches = 0

    @property
    def device_kind(self) -> str:
        """The device's architecture kind (selections transfer within it)."""
        return self.runtime.device.kind

    def estimate_cost(
        self,
        known_cost: Optional[float],
        static_cost: Optional[float] = None,
    ) -> float:
        """Estimated cycles one request will cost on this device.

        Prefers the caller's workload-class estimate (from the selection
        store); then the static cost-bound midpoint for the kernel (the
        cold-start prior from :mod:`repro.analyze.costbound`, available
        before any store entry exists); then this device's observed mean
        launch cost; then zero before any launch has completed.
        """
        if known_cost is not None:
            return known_cost
        if static_cost is not None:
            return static_cost
        with self._load_lock:
            if self._completed_launches > 0:
                return self._completed_cycles / self._completed_launches
        return 0.0

    def commit(self, estimated_cycles: float) -> None:
        """Reserve one admitted request's estimated cycles."""
        with self._load_lock:
            self._pending_cycles += estimated_cycles

    def complete(self, estimated_cycles: float, elapsed_cycles: float) -> None:
        """Retire an admitted request: drop its reservation, log its cost."""
        with self._load_lock:
            self._pending_cycles = max(
                0.0, self._pending_cycles - estimated_cycles
            )
            self._completed_cycles += elapsed_cycles
            self._completed_launches += 1

    def abort(self, estimated_cycles: float) -> None:
        """Drop a reservation whose launch failed (cost stays unknown)."""
        with self._load_lock:
            self._pending_cycles = max(
                0.0, self._pending_cycles - estimated_cycles
            )

    def projected_clock(self) -> float:
        """Estimated device clock once current in-flight work finishes.

        The engine clock only advances when a launch completes, so a
        device with several admitted-but-unfinished requests looks idle
        by clock alone; the pending reservations cover that gap.
        """
        with self._load_lock:
            return self.runtime.engine.now + self._pending_cycles


class LaunchScheduler:
    """Thread-safe multi-device serving front-end (see module docstring)."""

    def __init__(
        self,
        devices: Sequence[Device],
        config: Optional[ReproConfig] = None,
        store: Optional[SelectionStore] = None,
        streams_per_device: int = DEFAULT_STREAMS_PER_DEVICE,
        lease_timeout: Optional[float] = DEFAULT_LEASE_TIMEOUT,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        """Build a scheduler over a fleet of devices.

        Parameters
        ----------
        devices:
            The simulated fleet; one runtime + stream pool per device.
        config:
            Shared :class:`ReproConfig` (defaults to the first device's);
            ``config.trace`` also enables the scheduler-level tracer.
        store:
            Persistent selection store; defaults to a fresh in-memory
            store (no TTL).  Pass a loaded store for warm starts.
        streams_per_device:
            Stream-pool capacity = per-device admission limit.
        lease_timeout:
            Profile-lease steal timeout in store-clock seconds (``None``
            disables stealing).
        fault_plan:
            Chaos-testing fault plan (:mod:`repro.faults`); installs one
            injector per device runtime, arming the hardened launch
            paths fleet-wide.  ``None`` (the default) serves clean.
        """
        if not devices:
            raise ServeError("a scheduler needs at least one device")
        self.config = config if config is not None else devices[0].config
        self.store = store if store is not None else SelectionStore()
        self._workers = [
            _DeviceWorker(device, self.config, streams_per_device, i)
            for i, device in enumerate(devices)
        ]
        # One fleet, one fault ledger: a variant that misbehaves for one
        # client is barred for every client, and the ledger rides along
        # in the store's save/load snapshots.  The scheduler's config
        # governs its thresholds (a loaded store carries entries, not
        # policy).
        self.store.quarantine.policy = self.config.faults
        for worker in self._workers:
            worker.runtime.quarantine = self.store.quarantine
            if fault_plan is not None:
                worker.runtime.install_faults(fault_plan)
        self.leases = ProfileLeaseTable(
            timeout=lease_timeout, clock=self.store._clock
        )
        self.tracer = (
            RecordingTracer() if self.config.trace else NULL_TRACER
        )
        self.stats = ServeStats()
        self._seq = itertools.count()
        self._stats_lock = threading.Lock()
        self._dispatch_lock = threading.Lock()
        #: Cached static per-unit cost priors, keyed by (kernel, device
        #: kind); ``None`` entries mean "no bounded prior" (dominance
        #: off, unknown kernel/kind, or an unbounded interval).  Guarded
        #: by ``_static_lock``; invalidated both by the runtime hooks
        #: (re-registration, extension) and by :meth:`register_pool`
        #: itself — a *first* registration fires no hook, and a ``None``
        #: cached before it must not outlive it.
        self._static_estimates: Dict[
            Tuple[str, str], Optional[float]
        ] = {}
        self._static_lock = threading.Lock()
        for worker in self._workers:
            worker.runtime.add_invalidation_hook(self._on_invalidate)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_pool(self, pool: VariantPool) -> None:
        """Register a kernel pool on every device in the fleet.

        Any cached static cost prior for the kernel is dropped here, not
        just in the invalidation hook: the hook only fires when an
        *existing* registration is replaced or extended, so a prior
        (including a cached ``None`` = "no bounded prior") computed
        before the first registration would otherwise stay stale
        forever.
        """
        for worker in self._workers:
            worker.runtime.register_pool(pool)
        self._drop_static_estimates(pool.name)

    def _drop_static_estimates(self, kernel: str) -> None:
        """Forget every cached (kernel, device-kind) cost prior."""
        with self._static_lock:
            for key in [
                k for k in self._static_estimates if k[0] == kernel
            ]:
                del self._static_estimates[key]

    def _static_unit_cost(
        self, kernel: str, device_kind: str
    ) -> Optional[float]:
        """The kernel's static per-unit cost prior on one device kind.

        The midpoint of the pool default's static cost interval
        (:func:`repro.analyze.dominance.cold_start_estimate`), cached per
        (kernel, kind).  ``None`` when ``config.analyze.dominance`` is
        off, the kernel is unknown on that kind, or the interval is
        unbounded — dispatch then falls back to observed means exactly
        as before.
        """
        settings = self.config.analyze
        if not settings.dominance:
            return None
        key = (kernel, device_kind)
        with self._static_lock:
            if key in self._static_estimates:
                return self._static_estimates[key]
            estimate: Optional[float] = None
            for worker in self._workers:
                if worker.device_kind != device_kind:
                    continue
                if kernel in worker.runtime.registry:
                    estimate = cold_start_estimate(
                        worker.runtime.registry.pool(kernel),
                        device_kind,
                        policy=policy_from_settings(settings),
                    )
                break
            self._static_estimates[key] = estimate
            return estimate

    def _on_invalidate(self, kernel: str, why: str) -> None:
        """Runtime invalidation hook → evict persisted selections too."""
        self._drop_static_estimates(kernel)
        evicted = self.store.invalidate_kernel(kernel)
        if evicted and self.tracer.enabled:
            self.tracer.instant(
                EventKind.STORE_EVICT,
                kernel,
                float(next(self._seq)),
                evicted=evicted,
                reason=why,
            )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def launch(self, request: ServeRequest) -> ServeOutcome:
        """Serve one request (blocking; safe to call from many threads)."""
        seq = next(self._seq)
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.SERVE_ENQUEUE,
                request.kernel,
                float(seq),
                workload_units=request.workload_units,
            )
        worker, signature, estimate = self._dispatch(request)
        stream = worker.streams.acquire()
        try:
            return self._serve_admitted(
                request, worker, stream, seq, signature, estimate
            )
        finally:
            worker.streams.release(stream)

    def _dispatch(
        self, request: ServeRequest
    ) -> Tuple[_DeviceWorker, WorkloadSignature, float]:
        """Cost-aware dispatch: the earliest projected finish wins.

        The request is costed per device *kind* from the persistent store
        (``cycles_per_unit × units`` for its workload class — signatures
        embed the kind, so heterogeneous fleets cost independently); a
        device with no class estimate falls back to its observed mean
        launch cost.  The winner's estimate is reserved on its pending
        load under the dispatch lock, so concurrent clients don't pile
        onto the same momentarily-idle device.
        """
        signatures: Dict[str, WorkloadSignature] = {}
        costs: Dict[str, Optional[float]] = {}
        statics: Dict[str, Optional[float]] = {}
        for kind in {w.device_kind for w in self._workers}:
            sig = request.signature or derive_signature(
                request.kernel, kind, request.args, request.workload_units
            )
            signatures[kind] = sig
            entry = self.store.peek(sig.key)
            costs[kind] = (
                entry.cycles_per_unit * request.workload_units
                if entry is not None
                else None
            )
            unit_cost = self._static_unit_cost(request.kernel, kind)
            statics[kind] = (
                unit_cost * request.workload_units
                if unit_cost is not None
                else None
            )
        with self._dispatch_lock:
            worker = min(
                self._workers,
                key=lambda w: (
                    w.projected_clock()
                    + w.estimate_cost(
                        costs[w.device_kind], statics[w.device_kind]
                    ),
                    w.streams.in_flight,
                ),
            )
            estimate = worker.estimate_cost(
                costs[worker.device_kind], statics[worker.device_kind]
            )
            worker.commit(estimate)
        return worker, signatures[worker.device_kind], estimate

    def _serve_admitted(
        self, request, worker, stream, seq, signature, estimate
    ) -> ServeOutcome:
        """Run an admitted request (stream leased, cost reserved)."""
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.SERVE_ADMIT,
                request.kernel,
                float(seq),
                device=worker.name,
                stream=stream.name,
            )
        key = signature.key

        entry = self.store.lookup(key)
        lease: Optional[str] = None
        pinned: Optional[str] = None
        profiling = False
        drift = self.store.drift
        drift_rearm = False
        prediction: Optional[Prediction] = None
        with contextlib.ExitStack() as stack:
            if entry is not None:
                if drift is not None and drift.should_rearm(key):
                    # A confirmed drift wants this class re-profiled.
                    # Claim is consume-once and the profile lease rides
                    # along, so concurrent launches of a drifting class
                    # produce exactly one re-profile per episode.
                    if drift.claim(key):
                        lease = stack.enter_context(
                            self.leases.holding(key, seq)
                        )
                        if lease is not None:
                            drift_rearm = True
                        else:
                            drift.release(key)
                if not drift_rearm:
                    pinned = entry.selected
                    if self.tracer.enabled:
                        self.tracer.instant(
                            EventKind.STORE_HIT,
                            request.kernel,
                            float(seq),
                            workload_class=key,
                            selected=entry.selected,
                            samples=entry.samples,
                        )
            else:
                # ``holding`` releases in a finally, so a launch that
                # raises (fault-aborted, verification refusal) cannot
                # wedge the class's lease until the steal timeout.
                lease = stack.enter_context(self.leases.holding(key, seq))
                profiling = lease is not None
                if lease is not None and self.tracer.enabled:
                    kind = (
                        EventKind.PROFILE_LEASE_GRANT
                        if lease == ProfileLeaseTable.GRANTED
                        else EventKind.PROFILE_LEASE_STEAL
                    )
                    self.tracer.instant(
                        kind,
                        request.kernel,
                        float(seq),
                        workload_class=key,
                        device=worker.name,
                    )
                if lease is not None:
                    prediction = self._consult_predictor(request, key, seq)

            result = None
            try:
                with worker.lock:
                    result = worker.runtime.launch_kernel(
                        request.kernel,
                        request.args,
                        request.workload_units,
                        profiling=profiling,
                        mode=request.mode,
                        flow=request.flow,
                        pinned_variant=pinned,
                        stream_name=stream.name,
                        drift_rearm=drift_rearm,
                        predicted=prediction,
                    )
                worker.complete(estimate, result.elapsed_cycles)
                if lease is not None:
                    predicted = self._prediction_applied(prediction, result)
                    self._publish(
                        key, request, result, predicted=predicted
                    )
                    self._trace_prediction(
                        request, key, seq, prediction, predicted
                    )
                    if result.profiled:
                        self._close_drift_episode(
                            key,
                            request,
                            result,
                            seq,
                            stale_predicted=(
                                entry is not None and entry.predicted
                            ),
                        )
                    elif drift_rearm:
                        # The runtime demoted the re-armed launch to
                        # profiling-off; the episode stays open for the
                        # next launch to retry.
                        drift.release(key)
            finally:
                if result is None:
                    worker.abort(estimate)
                    if drift_rearm:
                        drift.release(key)

        served_from_store = entry is not None and not drift_rearm
        self._observe_drift(key, request, result, served_from_store, seq)
        self._account(request, worker, result, served_from_store)
        return ServeOutcome(
            request=request,
            device=worker.name,
            workload_class=key,
            result=result,
            profiled=result.profiled,
            store_hit=served_from_store,
            lease=lease,
            sequence=seq,
        )

    def _consult_predictor(
        self, request: ServeRequest, key: str, seq: int
    ) -> Optional[Prediction]:
        """The predictor's confident guess for a cold class, or ``None``.

        Called only by the lease holder of a cold workload class — the
        one launch that would otherwise micro-profile.  An untrained or
        under-confident model falls back to that micro-profile and the
        fallback is recorded (``PREDICTION_FALLBACK``), so predicted
        serving is always auditable from the trace alone.
        """
        predictor = self.store.predictor
        if predictor is None:
            return None
        candidate = predictor.predict(key)
        if predictor.confident(candidate):
            return candidate
        with self._stats_lock:
            self.stats.prediction_fallbacks += 1
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.PREDICTION_FALLBACK,
                request.kernel,
                float(seq),
                workload_class=key,
                reason=(
                    "untrained" if candidate is None else "below threshold"
                ),
                confidence=(
                    None if candidate is None else candidate.confidence
                ),
            )
        return None

    @staticmethod
    def _prediction_applied(
        prediction: Optional[Prediction], result: LaunchResult
    ) -> bool:
        """Whether the launch actually ran on the predicted selection.

        The policy may reject a prediction (drift re-arm, dominance
        exclusion, variant gone from the pool) or resolve the launch by
        a stronger gate whose fallback variant merely coincides with the
        guess — only an explicit ``"predicted selection"`` decision
        counts.
        """
        return (
            prediction is not None
            and not result.profiled
            and result.selected == prediction.variant
            and result.reason.startswith("predicted selection")
        )

    def _trace_prediction(
        self,
        request: ServeRequest,
        key: str,
        seq: int,
        prediction: Optional[Prediction],
        applied: bool,
    ) -> None:
        """Account one lease-held launch's prediction outcome."""
        if prediction is None:
            return
        with self._stats_lock:
            if applied:
                self.stats.predicted_launches += 1
            else:
                self.stats.prediction_fallbacks += 1
        if not self.tracer.enabled:
            return
        if applied:
            self.tracer.instant(
                EventKind.PREDICTION,
                request.kernel,
                float(seq),
                workload_class=key,
                variant=prediction.variant,
                confidence=prediction.confidence,
            )
        else:
            self.tracer.instant(
                EventKind.PREDICTION_FALLBACK,
                request.kernel,
                float(seq),
                workload_class=key,
                reason="rejected by policy",
                confidence=prediction.confidence,
            )

    def _publish(
        self,
        key: str,
        request: ServeRequest,
        result: LaunchResult,
        predicted: bool = False,
    ) -> None:
        """Persist a lease holder's selection for future warm lookups.

        Micro-profiled launches publish the winner's measured cycles per
        unit; launches the runtime demoted to profiling-off (small
        workload, single-variant pool, infeasible plan) publish the
        variant that actually ran with a coarse elapsed-based estimate —
        still worth persisting, because it stops every later request of
        this class from re-racing for the lease.  Predicted launches
        publish the same way but flagged ``predicted``: the entry serves
        and drifts like a measured one without feeding the predictor's
        own training set.
        """
        if result.record is not None and result.record.selected is not None:
            cycles = result.record.best_measurement().cycles_per_unit
        elif request.workload_units > 0:
            cycles = result.elapsed_cycles / request.workload_units
        else:
            return
        self.store.publish(
            key,
            kernel=request.kernel,
            selected=result.selected,
            cycles_per_unit=cycles,
            mode=result.mode.value if result.mode is not None else None,
            flow=result.flow.value if result.flow is not None else None,
            predicted=predicted,
        )

    def _observe_drift(
        self,
        key: str,
        request: ServeRequest,
        result: LaunchResult,
        served_from_store: bool,
        seq: int,
    ) -> None:
        """Feed one pinned-replay launch into the fleet's drift loop.

        Only store-served (pinned, profiling-off) launches feed the
        detector: they replay one fixed variant, so their cycles per
        unit track the *selection's* throughput under live traffic.
        Cold eager launches and profiled launches mix variant churn and
        profiling overhead into the measurement and are skipped.
        """
        drift = self.store.drift
        if (
            drift is None
            or not served_from_store
            or result.profiled
            or request.workload_units <= 0
            or result.elapsed_cycles <= 0.0
        ):
            return
        cycles_per_unit = result.elapsed_cycles / request.workload_units
        signal = drift.observe(
            key, request.kernel, result.selected, cycles_per_unit
        )
        if signal is DriftSignal.NONE or not self.tracer.enabled:
            return
        kind = (
            EventKind.DRIFT_SUSPECT
            if signal is DriftSignal.SUSPECT
            else EventKind.DRIFT_CONFIRMED
        )
        self.tracer.instant(
            kind,
            request.kernel,
            float(seq),
            workload_class=key,
            variant=result.selected,
            cycles_per_unit=cycles_per_unit,
        )

    def _close_drift_episode(
        self,
        key: str,
        request: ServeRequest,
        result: LaunchResult,
        seq: int,
        stale_predicted: bool = False,
    ) -> None:
        """Close the class's open drift episode with the fresh winner.

        Called for every lease-held publish (drift re-profiles *and*
        cold re-profiles of a class whose decayed entry already
        expired), so an episode cannot be left dangling by whichever
        path re-measured first.  A no-op when no episode is open.

        ``stale_predicted`` marks an episode whose demoted entry came
        from the predictor: the re-measured winner is fed back as a
        weighted training correction
        (:meth:`repro.predict.SelectionPredictor.correct`), so a model
        that drifted wrong stops repeating the mistake.
        """
        drift = self.store.drift
        if drift is None:
            return
        episode = drift.complete(key, result.selected)
        if (
            episode is not None
            and stale_predicted
            and self.store.predictor is not None
        ):
            self.store.predictor.correct(key, result.selected)
        if episode is not None and self.tracer.enabled:
            self.tracer.instant(
                EventKind.RESELECTION,
                request.kernel,
                float(seq),
                workload_class=key,
                stale_variant=episode.stale_variant,
                new_variant=result.selected,
                reselected=episode.reselected,
            )

    def _account(self, request, worker, result, store_hit: bool) -> None:
        """Fold one served request into the aggregate counters."""
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.workload_units += request.workload_units
            self.stats.profiled_launches += int(result.profiled)
            self.stats.store_hits += int(store_hit)
            self.stats.eager_launches += int(
                not result.profiled and not store_hit
            )
            self.stats.profiling_latency_cycles += (
                result.profiling_latency_cycles
            )
            self.stats.per_device[worker.name] = (
                self.stats.per_device.get(worker.name, 0) + 1
            )

    def serve_all(
        self, requests: Sequence[ServeRequest], clients: int = 8
    ) -> List[ServeOutcome]:
        """Serve many requests from a pool of ``clients`` threads.

        Outcomes are returned in request order regardless of completion
        order.  This is the benchmark's (and tests') entry point for
        simulating concurrent traffic.
        """
        if clients < 1:
            raise ServeError(f"clients must be >= 1, got {clients}")
        if clients == 1:
            return [self.launch(request) for request in requests]
        with ThreadPoolExecutor(max_workers=clients) as executor:
            return list(executor.map(self.launch, requests))

    # ------------------------------------------------------------------
    # Fleet introspection
    # ------------------------------------------------------------------

    @property
    def devices(self) -> Tuple[str, ...]:
        """Names of the fleet's devices (``cpu0``, ``gpu1``, ...)."""
        return tuple(worker.name for worker in self._workers)

    def runtime(self, device: str) -> DySelRuntime:
        """The runtime serving one named device."""
        for worker in self._workers:
            if worker.name == device:
                return worker.runtime
        raise ServeError(
            f"unknown device {device!r} (fleet: {list(self.devices)})"
        )

    def makespan_cycles(self) -> float:
        """Fleet makespan: the furthest-advanced device clock.

        Device clocks are independent, so the fleet's simulated wall time
        for a batch of requests is the maximum over devices — the number
        throughput comparisons divide by.
        """
        return max(
            worker.runtime.engine.now for worker in self._workers
        )

    def device_traces(self) -> Dict[str, Tuple[TraceEvent, ...]]:
        """Each device's recorded launch trace (empty when tracing off).

        Per-device traces are sequential (the engine lock serializes
        launches per device) and therefore reconcile with
        :func:`repro.obs.export.reconcile` individually.
        """
        return {
            worker.name: worker.runtime.tracer.events
            for worker in self._workers
        }
