"""Input-aware workload signatures: the persistent cache's key space.

A cached kernel selection is only reusable when the *workload shape* that
produced it recurs — the paper's Case Study IV (§4.4) shows the winning
variant flipping between a random and a diagonal matrix at the same size,
so "same kernel" is not a sufficient key.  This module derives a compact
:class:`WorkloadSignature` from a launch's arguments: coarse size buckets
plus sparsity/regularity features for sparse inputs, quantized so that
noise-level input variation maps to the same key while regime changes
(cache-resident vs DRAM-resident, regular vs irregular) map to different
keys.

Feature extraction is duck-typed, not imported from :mod:`repro.workloads`
— anything exposing the CSR-matrix surface (``rows``/``cols``/``nnz``/
``row_nnz``) contributes sparsity features, anything exposing a buffer
surface (``data`` ndarray) contributes footprint features — so user
workloads outside the benchmark suite get input-aware keys for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Tuple

import numpy as np

#: Quantization step for the row-length coefficient of variation.  One
#: step separates "perfectly regular" (banded/diagonal, cv ~ 0) from
#: "mildly irregular" (uniform random, cv ~ 0.3) from "power-law" inputs.
CV_BUCKET_STEP = 0.25


def log2_bucket(value: float) -> int:
    """Floor-of-log2 size bucket (values < 1 collapse to bucket 0).

    Doubling the workload moves one bucket; same-regime sizes share one.
    """
    if value < 1:
        return 0
    return int(math.floor(math.log2(value)))


@dataclass(frozen=True)
class WorkloadSignature:
    """One launch's workload class, as a stable hashable key.

    ``features`` is a sorted tuple of ``(name, value)`` pairs — the
    bucketed observations extracted from the arguments.  Two launches
    with equal signatures are assumed interchangeable for selection
    purposes: a variant measured as fastest for one is trusted for the
    other without re-profiling.
    """

    kernel: str
    device_kind: str
    features: Tuple[Tuple[str, str], ...] = ()

    @property
    def key(self) -> str:
        """Canonical string form, used as the persistent store's key."""
        parts = [self.kernel, self.device_kind]
        parts.extend(f"{name}={value}" for name, value in self.features)
        return "|".join(parts)

    def __str__(self) -> str:
        return self.key


def _sparse_features(name: str, value: object) -> Tuple[Tuple[str, str], ...]:
    """Sparsity/regularity features of one CSR-shaped argument."""
    rows = int(value.rows)  # type: ignore[attr-defined]
    cols = int(value.cols)  # type: ignore[attr-defined]
    nnz = int(value.nnz)  # type: ignore[attr-defined]
    row_nnz = np.asarray(value.row_nnz, dtype=float)  # type: ignore[attr-defined]
    features = [
        (f"{name}.rows^2", str(log2_bucket(rows))),
        (f"{name}.nnz^2", str(log2_bucket(nnz))),
    ]
    if nnz <= 0 or row_nnz.size == 0:
        # Degenerate sparsity (no stored entries, or no per-row shape
        # information).  Without an explicit marker these inputs would
        # silently drop the density/regularity features below and alias
        # with dense-regime classes that share the same size buckets.
        features.append((f"{name}.empty", "1"))
    if rows > 0 and cols > 0 and nnz > 0:
        density = nnz / (float(rows) * float(cols))
        # One bucket per decade of density: 1% and 0.8% share a key,
        # 1% and 0.01% do not.  Duplicate entries can push nnz past
        # rows*cols (density > 1), which would produce a *negative*
        # decade — clamp to bucket 0 ("dense"), same as density 1.0.
        bucket = (
            max(0, int(round(-math.log10(density))))
            if math.isfinite(density) and density > 0
            else 0
        )
        features.append((f"{name}.density^10", str(bucket)))
    if row_nnz.size:
        mean = float(row_nnz.mean())
        features.append((f"{name}.rownnz^2", str(log2_bucket(mean))))
        # Regularity: coefficient of variation of row lengths, the
        # feature behind the DFO/BFO crossover (short regular rows are
        # loop-setup-dominated; long irregular rows are not).
        cv = float(row_nnz.std() / mean) if mean > 0 else 0.0
        if not math.isfinite(cv):
            cv = 0.0
        features.append(
            (f"{name}.cv", str(int(round(cv / CV_BUCKET_STEP))))
        )
    return tuple(features)


def _buffer_features(name: str, value: object) -> Tuple[Tuple[str, str], ...]:
    """Footprint bucket of one buffer-shaped argument."""
    data = np.asarray(value.data)  # type: ignore[attr-defined]
    return ((f"{name}.bytes^2", str(log2_bucket(float(data.nbytes)))),)


def _is_sparse_like(value: object) -> bool:
    """Duck-typed CSR shape: rows/cols/nnz/row_nnz attributes."""
    return all(
        hasattr(value, attr) for attr in ("rows", "cols", "nnz", "row_nnz")
    )


def _is_buffer_like(value: object) -> bool:
    """Duck-typed dense buffer: a .data payload with .nbytes."""
    data = getattr(value, "data", None)
    return data is not None and hasattr(data, "nbytes")


def derive_signature(
    kernel: str,
    device_kind: str,
    args: Mapping[str, object],
    workload_units: int,
) -> WorkloadSignature:
    """Derive the workload class of one launch.

    The units bucket always contributes (size regime); each argument
    contributes sparsity features (CSR-shaped), a footprint bucket
    (buffer-shaped), or nothing (scalars and opaque objects).  Sparse
    arguments suppress their redundant footprint feature.
    """
    features = [("units^2", str(log2_bucket(workload_units)))]
    for name in sorted(args):
        value = args[name]
        if _is_sparse_like(value):
            features.extend(_sparse_features(name, value))
        elif _is_buffer_like(value):
            features.extend(_buffer_features(name, value))
    return WorkloadSignature(
        kernel=kernel,
        device_kind=device_kind,
        features=tuple(sorted(features)),
    )
