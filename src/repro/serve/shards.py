"""Sharded selection store: per-shard files, merge-on-load.

One JSON file is the known scalability cliff of :class:`SelectionStore`
once many concurrent clients contend on it: every save serializes the
whole map and every saver queues behind one atomic rename.
:class:`ShardedSelectionStore` splits the key space across ``shards``
inner stores by ``crc32(key) % shards`` — the key already encodes the
full selection tuple ``kernel|device_kind|class`` (see
:mod:`repro.serve.signature`), so one shard owns all updates for a slice
of (kernel, device-kind, class) space and two clients publishing
different classes almost never touch the same lock *or the same file*.

On disk a sharded store is a directory::

    store/
      store.meta.json    # schema version, shard count, quarantine/drift/
                         # predict side-state (always rewritten)
      shard-0000.json    # entries whose crc32(key) % count == 0
      shard-0001.json    # ... written only when dirty, atomically

Save semantics: each shard file is written with the same temp-file +
rename atomicity as the single-file store, and **only dirty shards** are
rewritten — a 64-client fleet that touched 3 shards since the last
checkpoint writes 3 files, not the whole map.  Load semantics
(*merge-on-load*): every ``shard-*.json`` in the directory is read and
the union re-hashed into the current layout, so a store saved with 8
shards loads fine with 4 or 16; duplicate keys (possible after a layout
change mid-crash) keep the freshest entry by recorded age.  Shards that
declare **mixed schema versions** are rejected with a structured
:class:`~repro.errors.StoreSchemaError` (``.versions`` maps each file to
its declared version) rather than partially loaded, while a single
*torn* shard (unparseable JSON from a crash mid-rename) is skipped with
a warning — its selections re-profile, the other shards' survive —
matching the single-file store's crash-recovery philosophy.

Fleet-wide state that is not per-key — the quarantine ledger, the drift
controller, the selection predictor — is owned once at the sharded level
and shared *into* every inner shard, so the semantics match
:class:`SelectionStore` exactly: a publish on any shard trains the one
predictor, a drift confirmation decays the entry in whichever shard owns
its key, and one quarantine bars a variant for every client.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from typing import Callable, Dict, Iterator, List, Optional

from ..drift import DriftConfig, ReselectionController
from ..errors import DriftError, PredictError, StoreError, StoreSchemaError
from ..faults.quarantine import VariantQuarantine
from ..predict import PredictConfig, SelectionPredictor
from .store import (
    DEFAULT_DECAY_GRACE,
    DEFAULT_EWMA_ALPHA,
    MIGRATABLE_VERSIONS,
    SCHEMA_VERSION,
    SelectionStore,
    StoreEntry,
    StoreStats,
    _atomic_write_json,
    parse_entry,
)

#: Default shard count: enough that 64 concurrent clients rarely collide
#: on one file, small enough that a checkpoint directory stays readable.
DEFAULT_SHARDS = 8

#: File name of the side-state / layout document inside a store directory.
META_FILENAME = "store.meta.json"


def shard_filename(index: int) -> str:
    """The on-disk file name of one shard (``shard-0007.json``)."""
    return f"shard-{index:04d}.json"


class ShardedSelectionStore:
    """A :class:`SelectionStore` split across per-shard files.

    Duck-types the full ``SelectionStore`` surface the serving layer
    uses (``lookup`` / ``peek`` / ``publish`` / ``decay`` /
    ``invalidate_kernel`` / ``save`` / ``load`` / ``stats`` /
    ``quarantine`` / ``drift`` / ``predictor``), so
    :class:`~repro.serve.scheduler.LaunchScheduler` accepts either
    interchangeably.
    """

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        ttl: Optional[float] = None,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        clock: Optional[Callable[[], float]] = None,
        drift: Optional[DriftConfig] = None,
        decay_grace: float = DEFAULT_DECAY_GRACE,
        predict: Optional[PredictConfig] = None,
    ) -> None:
        """Create an empty sharded store (parameters as for
        :class:`SelectionStore`, plus the shard count)."""
        if not isinstance(shards, int) or shards < 1:
            raise StoreError(f"shards must be a positive int, got {shards!r}")
        self.shard_count = shards
        # Inner shards are built bare (no drift/predict of their own) and
        # then share the fleet-wide subsystems owned here, so every shard
        # sees one quarantine ledger, one drift loop, one predictor.
        self._shards: List[SelectionStore] = [
            SelectionStore(
                ttl=ttl,
                ewma_alpha=ewma_alpha,
                clock=clock,
                decay_grace=decay_grace,
            )
            for _ in range(shards)
        ]
        self.ttl = ttl
        self.ewma_alpha = ewma_alpha
        self.decay_grace = decay_grace
        self._clock = self._shards[0]._clock
        self.quarantine = VariantQuarantine(clock=self._clock)
        self.drift: Optional[ReselectionController] = (
            ReselectionController(drift, decay_hook=self.decay)
            if drift is not None
            else None
        )
        self.predictor: Optional[SelectionPredictor] = (
            SelectionPredictor(predict) if predict is not None else None
        )
        for shard in self._shards:
            shard.quarantine = self.quarantine
            shard.drift = self.drift
            shard.predictor = self.predictor
        #: Per-shard "has un-saved mutations" flags; cleared (before
        #: serialization, so a racing publish re-dirties) by :meth:`save`.
        self._dirty: List[bool] = [False] * shards

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_index(self, key: str) -> int:
        """Which shard owns a workload-class key."""
        return zlib.crc32(key.encode("utf-8")) % self.shard_count

    def _shard(self, key: str) -> SelectionStore:
        return self._shards[self.shard_index(key)]

    # ------------------------------------------------------------------
    # SelectionStore surface (delegated per key / fanned out)
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> Optional[StoreEntry]:
        """See :meth:`SelectionStore.lookup` (routed to the owning shard)."""
        return self._shard(key).lookup(key)

    def peek(self, key: str) -> Optional[StoreEntry]:
        """See :meth:`SelectionStore.peek` (routed to the owning shard)."""
        return self._shard(key).peek(key)

    def publish(self, key: str, *args: object, **kwargs: object) -> StoreEntry:
        """See :meth:`SelectionStore.publish` (routed; marks shard dirty)."""
        index = self.shard_index(key)
        entry = self._shards[index].publish(key, *args, **kwargs)
        self._dirty[index] = True
        return entry

    def decay(self, key: str, grace: Optional[float] = None) -> bool:
        """See :meth:`SelectionStore.decay` (routed; marks shard dirty)."""
        index = self.shard_index(key)
        demoted = self._shards[index].decay(key, grace)
        if demoted:
            self._dirty[index] = True
        return demoted

    def invalidate_kernel(self, kernel: str) -> int:
        """See :meth:`SelectionStore.invalidate_kernel` (all shards)."""
        dropped = 0
        for index, shard in enumerate(self._shards):
            count = shard.invalidate_kernel(kernel)
            if count:
                self._dirty[index] = True
            dropped += count
        return dropped

    @property
    def stats(self) -> StoreStats:
        """Aggregate counters over every shard."""
        total = StoreStats()
        for shard in self._shards:
            total.hits += shard.stats.hits
            total.misses += shard.stats.misses
            total.expirations += shard.stats.expirations
            total.invalidations += shard.stats.invalidations
            total.puts += shard.stats.puts
            total.decays += shard.stats.decays
        return total

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: str) -> bool:
        return key in self._shard(key)

    def keys(self) -> Iterator[str]:
        """Snapshot of live keys across every shard (no TTL filtering)."""
        snapshot: List[str] = []
        for shard in self._shards:
            snapshot.extend(shard.keys())
        return iter(tuple(snapshot))

    def dirty_shards(self) -> List[int]:
        """Indices of shards with mutations since the last save."""
        return [i for i, dirty in enumerate(self._dirty) if dirty]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str, only_dirty: bool = True) -> None:
        """Checkpoint into directory ``path``.

        The meta document (shard layout + quarantine/drift/predict side
        state) is always rewritten; shard files are rewritten only when
        dirty (or missing on disk), each with the single-file store's
        temp-file + atomic-rename discipline.  Pass ``only_dirty=False``
        to force a full rewrite.
        """
        os.makedirs(path, exist_ok=True)
        meta: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "layout": "sharded",
            "shard_count": self.shard_count,
        }
        # The shards share this store's quarantine/drift/predictor, so
        # any one shard serializes the fleet-wide side state faithfully.
        meta.update(self._shards[0].side_payloads())
        _atomic_write_json(os.path.join(path, META_FILENAME), meta)
        for index, shard in enumerate(self._shards):
            target = os.path.join(path, shard_filename(index))
            # Clear-before-serialize: a publish racing this save flips
            # the flag back on and the *next* checkpoint rewrites the
            # shard, so no mutation is ever silently lost.
            was_dirty, self._dirty[index] = self._dirty[index], False
            if only_dirty and not was_dirty and os.path.exists(target):
                continue
            doc = {
                "schema_version": SCHEMA_VERSION,
                "shard_index": index,
                "shard_count": self.shard_count,
                "entries": shard.entry_payloads(),
            }
            _atomic_write_json(target, doc)

    @classmethod
    def load(
        cls,
        path: str,
        shards: Optional[int] = None,
        ttl: Optional[float] = None,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        clock: Optional[Callable[[], float]] = None,
        drift: Optional[DriftConfig] = None,
        decay_grace: float = DEFAULT_DECAY_GRACE,
        predict: Optional[PredictConfig] = None,
    ) -> "ShardedSelectionStore":
        """Merge-on-load a directory written by :meth:`save`.

        ``shards`` overrides the layout (defaults to the saved
        ``shard_count``); entries are re-hashed into the requested
        layout, so growing or shrinking the shard count is just a load +
        save away.  Duplicate keys across shard files — possible after a
        layout change interrupted mid-save — keep the freshest entry.

        Failure semantics, matching :meth:`SelectionStore.load`:

        * Unreadable directory / meta file → :class:`StoreError`.
        * Any shard (or the meta) declaring an incompatible schema
          version, or shards declaring **mixed** versions → structured
          :class:`StoreSchemaError` whose ``.versions`` maps every file
          to its declared version.  Version agreement is checked across
          *all* shards before a single entry is interpreted — never a
          partial load.
        * A torn shard file (unparseable JSON from a crash mid-write) is
          skipped with a warning; its classes re-profile while every
          other shard's selections survive.
        """
        try:
            names = sorted(os.listdir(path))
        except OSError as exc:
            raise StoreError(
                f"cannot read sharded selection store {path!r}: {exc}"
            )
        shard_names = [
            n
            for n in names
            if n.startswith("shard-") and n.endswith(".json")
        ]
        meta: Dict[str, object] = {}
        versions: Dict[str, object] = {}
        meta_path = os.path.join(path, META_FILENAME)
        if META_FILENAME in names:
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta_doc = json.load(handle)
            except OSError as exc:
                raise StoreError(
                    f"cannot read sharded selection store meta "
                    f"{meta_path!r}: {exc}"
                )
            except json.JSONDecodeError as exc:
                warnings.warn(
                    f"sharded store meta {meta_path!r} is empty or torn "
                    f"({exc}); quarantine/drift/predict side-state is "
                    "lost, entries will still load",
                    stacklevel=2,
                )
                meta_doc = None
            if meta_doc is not None:
                if not isinstance(meta_doc, dict) or (
                    "schema_version" not in meta_doc
                ):
                    raise StoreSchemaError(
                        f"sharded store meta {meta_path!r} has no "
                        "schema_version; refusing to interpret it"
                    )
                meta = meta_doc
                versions[meta_path] = meta_doc["schema_version"]
        # Parse every shard document *before* interpreting any entry, so
        # version agreement is judged over the whole directory.
        docs: List[tuple] = []
        for name in shard_names:
            shard_path = os.path.join(path, name)
            try:
                with open(shard_path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
            except OSError as exc:
                raise StoreError(
                    f"cannot read selection store shard {shard_path!r}: "
                    f"{exc}"
                )
            except json.JSONDecodeError as exc:
                warnings.warn(
                    f"selection store shard {shard_path!r} is torn or "
                    f"truncated ({exc}); skipping it — its workload "
                    "classes will re-profile",
                    stacklevel=2,
                )
                continue
            if not isinstance(doc, dict) or "schema_version" not in doc:
                raise StoreSchemaError(
                    f"selection store shard {shard_path!r} has no "
                    "schema_version; refusing to interpret it"
                )
            versions[shard_path] = doc["schema_version"]
            docs.append((shard_path, doc))
        accepted = set(MIGRATABLE_VERSIONS) | {SCHEMA_VERSION}
        bad = {p: v for p, v in versions.items() if v not in accepted}
        if bad:
            raise StoreSchemaError(
                f"sharded selection store {path!r} declares unsupported "
                f"schema versions {sorted(set(bad.values()), key=repr)!r}; "
                f"this build speaks {SCHEMA_VERSION} "
                f"(migratable: {list(MIGRATABLE_VERSIONS)})",
                versions=versions,
            )
        if len(set(versions.values())) > 1:
            raise StoreSchemaError(
                f"sharded selection store {path!r} mixes schema versions "
                f"{sorted(set(versions.values()))!r} across its shards; "
                "refusing the partial load — re-save the store with one "
                "build before loading it with another",
                versions=versions,
            )
        saved_count = meta.get("shard_count")
        if shards is None:
            shards = (
                saved_count
                if isinstance(saved_count, int) and saved_count >= 1
                else max(1, len(shard_names)) or DEFAULT_SHARDS
            )
        if drift is None and isinstance(meta.get("drift"), dict):
            # Same rule as the single-file store: persisted drift state
            # arms the loop with default tuning rather than being lost.
            drift = DriftConfig()
        store = cls(
            shards=shards,
            ttl=ttl,
            ewma_alpha=ewma_alpha,
            clock=clock,
            drift=drift,
            decay_grace=decay_grace,
            predict=predict,
        )
        now = store._clock()
        merged: Dict[str, StoreEntry] = {}
        for shard_path, doc in docs:
            entries = doc.get("entries")
            if not isinstance(entries, list):
                raise StoreError(
                    f"selection store shard {shard_path!r} is corrupt: "
                    f"'entries' is {type(entries).__name__}, expected a "
                    "list"
                )
            for raw in entries:
                entry = parse_entry(raw, now, shard_path)
                kept = merged.get(entry.key)
                # Merge-on-load: the freshest copy of a key wins.
                if kept is None or entry.recorded_at >= kept.recorded_at:
                    merged[entry.key] = entry
        for entry in merged.values():
            store._shard(entry.key)._entries[entry.key] = entry
        if saved_count != store.shard_count:
            # The on-disk layout no longer matches: force a full rewrite
            # at the next checkpoint so stale shard files cannot linger.
            store._dirty = [True] * store.shard_count
        store._load_side_state(meta, meta_path)
        return store

    def _load_side_state(self, meta: Dict[str, object], source: str) -> None:
        """Arm quarantine/drift/predictor from a parsed meta document."""
        ledger = meta.get("quarantine")
        if ledger is not None:
            if not isinstance(ledger, dict):
                raise StoreError(
                    f"sharded store meta {source!r} is corrupt: "
                    f"'quarantine' is {type(ledger).__name__}, expected "
                    "an object"
                )
            self.quarantine.load_payload(ledger)
        drift_doc = meta.get("drift")
        if drift_doc is not None:
            if not isinstance(drift_doc, dict):
                raise StoreError(
                    f"sharded store meta {source!r} is corrupt: 'drift' "
                    f"is {type(drift_doc).__name__}, expected an object"
                )
            assert self.drift is not None
            try:
                self.drift.load_payload(drift_doc)
            except DriftError as exc:
                raise StoreError(
                    f"sharded store meta {source!r} is corrupt: {exc}"
                ) from exc
        predict_doc = meta.get("predict")
        if predict_doc is not None:
            if not isinstance(predict_doc, dict):
                raise StoreError(
                    f"sharded store meta {source!r} is corrupt: "
                    f"'predict' is {type(predict_doc).__name__}, "
                    "expected an object"
                )
            try:
                if self.predictor is not None:
                    self.predictor.load_payload(predict_doc)
                else:
                    self.predictor = SelectionPredictor.from_payload(
                        predict_doc
                    )
            except PredictError as exc:
                raise StoreError(
                    f"sharded store meta {source!r} is corrupt: {exc}"
                ) from exc
            for shard in self._shards:
                shard.predictor = self.predictor
