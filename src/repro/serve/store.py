"""Persistent, input-aware selection store (JSON on disk).

Cross-run persistence is what amortizes micro-profiling in real pipelines:
a serving process that restarts should not pay the warm-up again for
workload classes it has already measured.  :class:`SelectionStore` keeps
one :class:`StoreEntry` per workload-class key (see
:mod:`repro.serve.signature`), supports atomic JSON save/load with an
explicit schema version, ages entries out on a TTL so stale winners
re-profile, and exposes the invalidation surface the runtime's
registration hooks call into.

Four decay/invalidation mechanisms, from cheapest to strongest:

* **EWMA update** — re-profiles of a known class fold into the stored
  cycles-per-unit estimate instead of overwriting it.
* **TTL expiry** — entries older than ``ttl`` (seconds on the injected
  clock) are evicted at lookup time; the next request for that class
  acquires a profile lease and re-measures.
* **Drift decay** — a confirmed throughput drift (:mod:`repro.drift`)
  demotes the stale entry via :meth:`SelectionStore.decay`: it keeps
  serving for a grace period while one armed re-profile replaces it,
  but stops being immortal.
* **Registry invalidation** — pool re-registration/extension drops every
  entry of that kernel immediately (the candidate set changed; all bets
  are off), via :meth:`SelectionStore.invalidate_kernel` wired to
  :meth:`repro.core.runtime.DySelRuntime.add_invalidation_hook`.

The store is thread-safe; every method may be called concurrently from
serving threads.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import warnings
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterator, Optional

from ..drift import DriftConfig, ReselectionController
from ..errors import DriftError, PredictError, StoreError, StoreSchemaError
from ..faults.quarantine import VariantQuarantine
from ..predict import PredictConfig, SelectionPredictor

#: On-disk schema version.  Bump when the entry layout *or the key
#: derivation rules* change incompatibly — a persisted key is only
#: meaningful under the feature-bucketing rules that produced it.
#: v3: signature degenerate-input features (``.empty``, clamped density
#: decade) changed the key space, entries carry a ``predicted`` flag,
#: and snapshots may carry a fitted selection predictor.
#: v4: entries carry an explicit ``device_kind`` (the placement dimension
#: of the selection tuple, :mod:`repro.core.policy`), and stores may be
#: sharded across per-shard files (:mod:`repro.serve.shards`).  The key
#: derivation rules are unchanged from v3, so v3 files are *migrated* on
#: load (``device_kind`` is recovered from the key) instead of rejected.
SCHEMA_VERSION = 4

#: Older schema versions :meth:`SelectionStore.load` migrates in place.
#: Only versions whose key-derivation rules match the current build may
#: appear here — migration recovers missing fields, never reinterprets
#: keys.
MIGRATABLE_VERSIONS = (3,)

#: Default EWMA smoothing factor for repeated measurements of one class.
DEFAULT_EWMA_ALPHA = 0.3

#: Default grace period (clock seconds) a drift-demoted entry keeps
#: serving before it expires outright.  Long enough for the armed
#: re-profile to land on the next launch; short enough that a class with
#: no further traffic does not pin a stale winner forever.
DEFAULT_DECAY_GRACE = 300.0


@dataclass
class StoreEntry:
    """One workload class's persisted selection."""

    #: Workload-class key (:attr:`WorkloadSignature.key`).
    key: str
    #: Kernel signature name (denormalized from the key for invalidation).
    kernel: str
    #: Winning variant name.
    selected: str
    #: Profiling mode / orchestration flow that produced the selection
    #: (string values of the enums; informational).
    mode: Optional[str]
    flow: Optional[str]
    #: EWMA of the winner's measured cycles per workload unit.
    cycles_per_unit: float
    #: How many profiled launches folded into the EWMA.
    samples: int = 1
    #: Store-clock timestamp of the last update (drives TTL).
    recorded_at: float = 0.0
    #: How many lookups this entry has served.
    hits: int = 0
    #: Whether the selection came from the predictor instead of a
    #: micro-profile (:mod:`repro.predict`).  Predicted entries serve
    #: and drift like measured ones but are excluded from training, and
    #: a drift confirmation on one feeds back a training correction.
    predicted: bool = False
    #: Drift demotion deadline: absolute store-clock time after which the
    #: entry expires regardless of TTL (``None`` = not demoted).  Set by
    #: :meth:`SelectionStore.decay` when drift confirms the selection is
    #: stale; cleared by the next :meth:`SelectionStore.publish`.
    decay_at: Optional[float] = None

    #: Device kind the selection was measured on (the placement dimension
    #: of the selection tuple).  Denormalized from the key — the second
    #: ``|``-separated key field — so placement costing never re-parses
    #: keys.  Empty only for hand-built entries with non-signature keys.
    device_kind: str = ""

    def observe(self, cycles_per_unit: float, alpha: float) -> None:
        """Fold one fresh measurement into the EWMA."""
        self.cycles_per_unit += alpha * (cycles_per_unit - self.cycles_per_unit)
        self.samples += 1


def device_kind_from_key(key: str) -> str:
    """The device-kind field of a workload-class key.

    Keys are ``kernel|device_kind|feature=value|...``
    (:attr:`repro.serve.signature.WorkloadSignature.key`); a key without
    a second field yields ``""``.  Used to populate
    :attr:`StoreEntry.device_kind` and to migrate v3 snapshots.
    """
    parts = key.split("|")
    return parts[1] if len(parts) > 1 else ""


@dataclass
class StoreStats:
    """Lookup/update counters (monotonic over the store's lifetime)."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    invalidations: int = 0
    puts: int = 0
    decays: int = 0


#: Fields a persisted entry must carry, with their required types.
_REQUIRED_FIELDS = (
    ("key", str),
    ("kernel", str),
    ("selected", str),
    ("cycles_per_unit", (int, float)),
)


def parse_entry(raw: object, now: float, source: str) -> StoreEntry:
    """Rehydrate one persisted entry dict into a :class:`StoreEntry`.

    ``source`` names the file for error messages.  Entries written by a
    migratable schema (v3) lack ``device_kind``; it is recovered from the
    key — the key-derivation rules did not change between v3 and v4, so
    the recovery is exact.  Raises :class:`StoreError` on corrupt shapes.
    """
    if not isinstance(raw, dict):
        raise StoreError(
            f"selection store {source!r} is corrupt: entry {raw!r} "
            "is not an object"
        )
    for name, types in _REQUIRED_FIELDS:
        if not isinstance(raw.get(name), types):
            raise StoreError(
                f"selection store {source!r} is corrupt: entry "
                f"{raw.get('key')!r} field {name!r} is "
                f"{raw.get(name)!r}"
            )
    age = float(raw.get("age", 0.0))
    decay_in = raw.get("decay_in")
    return StoreEntry(
        key=raw["key"],
        kernel=raw["kernel"],
        selected=raw["selected"],
        mode=raw.get("mode"),
        flow=raw.get("flow"),
        cycles_per_unit=float(raw["cycles_per_unit"]),
        samples=int(raw.get("samples", 1)),
        recorded_at=now - age,
        hits=int(raw.get("hits", 0)),
        predicted=bool(raw.get("predicted", False)),
        decay_at=None if decay_in is None else now + float(decay_in),
        device_kind=str(
            raw.get("device_kind") or device_kind_from_key(raw["key"])
        ),
    )


def _atomic_write_json(path: str, doc: Dict[str, object]) -> None:
    """Write a JSON document atomically (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=1)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class SelectionStore:
    """Thread-safe persistent map: workload-class key → selection."""

    def __init__(
        self,
        ttl: Optional[float] = None,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        clock: Optional[Callable[[], float]] = None,
        drift: Optional[DriftConfig] = None,
        decay_grace: float = DEFAULT_DECAY_GRACE,
        predict: Optional[PredictConfig] = None,
    ) -> None:
        """Create an empty store.

        Parameters
        ----------
        ttl:
            Entry lifetime in clock seconds; ``None`` disables expiry.
        ewma_alpha:
            Smoothing factor for repeated measurements (0 < alpha <= 1).
        clock:
            Injectable time source (defaults to :func:`time.time`); tests
            pass a fake clock to exercise TTL deterministically.
        drift:
            Arm the fleet-wide drift loop with this detector tuning
            (:class:`repro.drift.DriftConfig`); ``None`` (the default)
            leaves drift detection off and the store behaves exactly as
            before.
        decay_grace:
            How long (clock seconds) a drift-demoted entry keeps serving
            before expiring outright (see :meth:`decay`).
        predict:
            Arm the selection predictor with this tuning
            (:class:`repro.predict.PredictConfig`): measured publishes
            train it and the serving layer consults it before paying a
            cold micro-profile.  ``None`` (the default) leaves
            prediction off.
        """
        if ttl is not None and ttl <= 0:
            raise StoreError(f"ttl must be positive or None, got {ttl}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise StoreError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        if decay_grace <= 0:
            raise StoreError(
                f"decay_grace must be positive, got {decay_grace}"
            )
        self.ttl = ttl
        self.ewma_alpha = ewma_alpha
        self.decay_grace = decay_grace
        self._clock = clock if clock is not None else time.time
        self._entries: Dict[str, StoreEntry] = {}
        self._lock = threading.RLock()
        self.stats = StoreStats()
        #: Fleet-wide fault ledger (see :mod:`repro.faults.quarantine`).
        #: The scheduler shares this one ledger into every worker runtime
        #: so a variant misbehaving for one client is barred for all, and
        #: it rides along in :meth:`save`/:meth:`load` snapshots.
        self.quarantine = VariantQuarantine(clock=self._clock)
        #: Fleet-wide drift loop (see :mod:`repro.drift`), ``None`` when
        #: drift detection is off.  Like the quarantine ledger it is
        #: owned here so the whole fleet shares one view and the state
        #: rides along in :meth:`save`/:meth:`load` snapshots; confirmed
        #: drift demotes the stale entry via :meth:`decay`.
        self.drift: Optional[ReselectionController] = (
            ReselectionController(drift, decay_hook=self.decay)
            if drift is not None
            else None
        )
        #: Fleet-wide selection predictor (see :mod:`repro.predict`),
        #: ``None`` when prediction is off.  Owned here like the drift
        #: loop: measured publishes train it in-line and the fitted
        #: models ride along in :meth:`save`/:meth:`load` snapshots.
        self.predictor: Optional[SelectionPredictor] = (
            SelectionPredictor(predict) if predict is not None else None
        )

    # ------------------------------------------------------------------
    # Lookup / update
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> Optional[StoreEntry]:
        """The live entry for a workload class, or ``None``.

        Expired entries are evicted here (lazy TTL): the miss the caller
        sees is what sends the next launch back to micro-profiling.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if self._expired(entry, self._clock()):
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            entry.hits += 1
            self.stats.hits += 1
            return entry

    def peek(self, key: str) -> Optional[StoreEntry]:
        """A side-effect-free read for load estimation.

        Unlike :meth:`lookup`, peeking never counts a hit or miss and
        never evicts: schedulers consult it when *costing* a request, not
        when serving one, so it must not skew the serving statistics.
        Expired entries still read as absent.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry, self._clock()):
                return None
            return entry

    def publish(
        self,
        key: str,
        kernel: str,
        selected: str,
        cycles_per_unit: float,
        mode: Optional[str] = None,
        flow: Optional[str] = None,
        predicted: bool = False,
    ) -> StoreEntry:
        """Record (or fold into) the selection for a workload class.

        A repeat publication with the *same* winner updates the EWMA; a
        different winner replaces the entry outright (the input regime
        crossed a crossover point — old statistics no longer describe the
        new champion).  A winner matching an entry past its TTL or
        ``decay_at`` deadline also starts fresh: expired history must
        not be resurrected into the new entry's EWMA (the whole point of
        expiry is that those statistics are no longer trusted).  Expiry
        is judged against one clock read per publish, so a deadline
        cannot fall between two reads within a single operation.

        ``predicted`` marks a selection the predictor chose without a
        micro-profile (:mod:`repro.predict`); measured publishes
        (``predicted=False``) additionally train the armed predictor —
        predicted ones never do, so the model cannot reinforce its own
        guesses.
        """
        with self._lock:
            now = self._clock()
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry.selected == selected
                and not self._expired(entry, now)
            ):
                entry.observe(cycles_per_unit, self.ewma_alpha)
                entry.recorded_at = now
                entry.mode, entry.flow = mode, flow
                entry.predicted = predicted
                # Fresh evidence for this winner lifts any drift demotion.
                entry.decay_at = None
            else:
                entry = StoreEntry(
                    key=key,
                    kernel=kernel,
                    selected=selected,
                    mode=mode,
                    flow=flow,
                    cycles_per_unit=float(cycles_per_unit),
                    recorded_at=now,
                    predicted=predicted,
                    device_kind=device_kind_from_key(key),
                )
                self._entries[key] = entry
            self.stats.puts += 1
            predictor = self.predictor
        if predictor is not None and not predicted:
            predictor.learn(key, selected)
        return entry

    def decay(self, key: str, grace: Optional[float] = None) -> bool:
        """Demote one entry: expire it ``grace`` seconds from now.

        This is drift's TTL-style demotion (softer than eviction): the
        stale selection keeps serving — it is still the best *known*
        answer, and yanking it would stampede every client of the class
        into the profile lease — but its remaining lifetime is capped,
        so even a class whose armed re-profile never lands (traffic
        stopped, every re-profile faults) eventually falls back to a
        cold lookup.  A subsequent :meth:`publish` (the re-profiled
        winner) clears the deadline.  Returns False when the key has no
        live entry.
        """
        with self._lock:
            now = self._clock()
            entry = self._entries.get(key)
            if entry is None or self._expired(entry, now):
                return False
            deadline = now + (
                grace if grace is not None else self.decay_grace
            )
            if entry.decay_at is None or deadline < entry.decay_at:
                entry.decay_at = deadline
            self.stats.decays += 1
            return True

    def invalidate_kernel(self, kernel: str) -> int:
        """Drop every entry of one kernel (registration changed).

        Returns the number of entries evicted; wired to the runtime's
        invalidation hooks so a pool re-registration anywhere in the
        fleet kills persisted selections for that kernel.
        """
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.kernel == kernel
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
        if self.drift is not None:
            # The candidate set changed: the per-class throughput history
            # describes variants that may no longer exist.
            for key in doomed:
                self.drift.monitor.drop(key)
        return len(doomed)

    def _expired(self, entry: StoreEntry, now: float) -> bool:
        """Whether an entry has outlived the store TTL or its decay.

        ``now`` is the caller's single clock read for the whole
        operation — reading the clock here again would let a deadline
        slip between "not expired" and "expired" inside one lookup or
        publish, which is exactly the ordering bug threaded serving
        must not have.
        """
        if entry.decay_at is not None and now > entry.decay_at:
            return True
        if self.ttl is None:
            return False
        return now - entry.recorded_at > self.ttl

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def entry_payloads(self) -> list:
        """JSON-ready entry dicts with *relative* timestamps.

        Timestamps are persisted as ages (``age``, remaining
        ``decay_in``) rather than absolutes, so TTL accounting survives
        process restarts on a different clock origin.  Shared by
        :meth:`save` and the sharded store's per-shard writer
        (:mod:`repro.serve.shards`).
        """
        with self._lock:
            now = self._clock()
            entries = []
            for entry in self._entries.values():
                raw = asdict(entry)
                raw.pop("decay_at")
                raw["age"] = max(0.0, now - entry.recorded_at)
                if entry.decay_at is not None:
                    raw["decay_in"] = max(0.0, entry.decay_at - now)
                entries.append(raw)
            return entries

    def side_payloads(self) -> Dict[str, object]:
        """The non-entry snapshot sections (quarantine, drift, predict).

        Each section is optional: absent in snapshots written before the
        subsystem existed or while it is disarmed, and such snapshots
        still load fine under the same schema version.
        """
        doc: Dict[str, object] = {}
        ledger = self.quarantine.to_payload()
        if ledger:
            doc["quarantine"] = ledger
        if self.drift is not None:
            # Detector baselines and episode history survive restarts so
            # a fleet does not re-learn every class from scratch.
            doc["drift"] = self.drift.to_payload()
        if self.predictor is not None:
            # The fitted selection models ride along so a restarted
            # fleet predicts from its first cold request.
            doc["predict"] = self.predictor.to_payload()
        return doc

    def save(self, path: str) -> None:
        """Serialize to JSON atomically (temp file + rename)."""
        doc = {
            "schema_version": SCHEMA_VERSION,
            "entries": self.entry_payloads(),
        }
        doc.update(self.side_payloads())
        _atomic_write_json(path, doc)

    @classmethod
    def load(
        cls,
        path: str,
        ttl: Optional[float] = None,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        clock: Optional[Callable[[], float]] = None,
        drift: Optional[DriftConfig] = None,
        predict: Optional[PredictConfig] = None,
    ) -> "SelectionStore":
        """Deserialize a store written by :meth:`save`.

        ``drift``/``predict`` re-arm those subsystems with the caller's
        tuning; when either is ``None`` but the snapshot carries that
        section, the subsystem is armed anyway (drift with default
        tuning, the predictor with the snapshot's own config) so
        persisted state is never silently dropped.

        Raises :class:`StoreSchemaError` when the file's
        ``schema_version`` does not match :data:`SCHEMA_VERSION` (a
        serving fleet must not trust keys derived under different
        bucketing rules), and :class:`StoreError` for unreadable files or
        structurally corrupt *JSON documents*.  Failure is all-or-nothing:
        a store is never partially loaded.

        A file that is empty or not parseable as JSON at all is treated
        like a *missing* store — a fresh empty store is returned with a
        warning.  That is the crash-mid-write case (power loss before the
        atomic rename, an empty file from ``touch``): the selections are
        gone either way, and a serving process that refuses to start over
        a zero-byte file turns a lost cache into an outage.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except OSError as exc:
            raise StoreError(f"cannot read selection store {path!r}: {exc}")
        except json.JSONDecodeError as exc:
            warnings.warn(
                f"selection store {path!r} is empty or truncated "
                f"({exc}); starting with a fresh store",
                stacklevel=2,
            )
            return cls(ttl=ttl, ewma_alpha=ewma_alpha, clock=clock, drift=drift)
        if not isinstance(doc, dict) or "schema_version" not in doc:
            raise StoreSchemaError(
                f"selection store {path!r} has no schema_version; refusing "
                "to interpret it"
            )
        version = doc["schema_version"]
        if version != SCHEMA_VERSION and version not in MIGRATABLE_VERSIONS:
            raise StoreSchemaError(
                f"selection store {path!r} has schema_version={version!r}, "
                f"this build speaks {SCHEMA_VERSION}; re-profile instead of "
                "trusting selections keyed under different rules",
                versions={path: version},
            )
        entries = doc.get("entries")
        if not isinstance(entries, list):
            raise StoreError(
                f"selection store {path!r} is corrupt: 'entries' is "
                f"{type(entries).__name__}, expected a list"
            )
        if drift is None and isinstance(doc.get("drift"), dict):
            # The snapshot carries drift state but the caller did not ask
            # for a specific tuning: arm the loop with defaults rather
            # than silently dropping persisted baselines and episodes.
            drift = DriftConfig()
        store = cls(
            ttl=ttl,
            ewma_alpha=ewma_alpha,
            clock=clock,
            drift=drift,
            predict=predict,
        )
        now = store._clock()
        for raw in entries:
            entry = parse_entry(raw, now, path)
            store._entries[entry.key] = entry
        ledger = doc.get("quarantine")
        if ledger is not None:
            if not isinstance(ledger, dict):
                raise StoreError(
                    f"selection store {path!r} is corrupt: 'quarantine' is "
                    f"{type(ledger).__name__}, expected an object"
                )
            store.quarantine.load_payload(ledger)
        drift_doc = doc.get("drift")
        if drift_doc is not None:
            if not isinstance(drift_doc, dict):
                raise StoreError(
                    f"selection store {path!r} is corrupt: 'drift' is "
                    f"{type(drift_doc).__name__}, expected an object"
                )
            assert store.drift is not None
            try:
                store.drift.load_payload(drift_doc)
            except DriftError as exc:
                raise StoreError(
                    f"selection store {path!r} is corrupt: {exc}"
                ) from exc
        predict_doc = doc.get("predict")
        if predict_doc is not None:
            if not isinstance(predict_doc, dict):
                raise StoreError(
                    f"selection store {path!r} is corrupt: 'predict' is "
                    f"{type(predict_doc).__name__}, expected an object"
                )
            try:
                if store.predictor is not None:
                    # The caller's tuning wins; the snapshot contributes
                    # history (examples + fitted trees) only.
                    store.predictor.load_payload(predict_doc)
                else:
                    # The snapshot carries a trained predictor but the
                    # caller did not ask for one: arm it with the
                    # snapshot's own config rather than silently
                    # dropping the fitted models.
                    store.predictor = SelectionPredictor.from_payload(
                        predict_doc
                    )
            except PredictError as exc:
                raise StoreError(
                    f"selection store {path!r} is corrupt: {exc}"
                ) from exc
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[str]:
        """Snapshot of the live keys (no TTL filtering)."""
        with self._lock:
            return iter(tuple(self._entries))
