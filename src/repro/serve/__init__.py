"""Concurrent serving layer: scheduler, profile leases, persistent cache.

This subpackage scales DySel from "one launch at a time on one device" to
a serving fleet: a thread-safe :class:`LaunchScheduler` multiplexes
concurrent launch requests onto per-device stream pools, coordinates
micro-profiling so each (pool, device-kind, workload-class) profiles
exactly once in flight (:class:`ProfileLeaseTable`), and persists
selections across process restarts keyed by input-aware workload
signatures (:class:`SelectionStore`, :class:`WorkloadSignature`).

See ``docs/serving.md`` for the cold-cache → warm-cache walkthrough and
``benchmarks/bench_serve.py`` for the throughput/latency benchmark.
"""

from ..predict import PredictConfig, Prediction, SelectionPredictor
from .lease import ProfileLease, ProfileLeaseTable
from .qos import (
    DEFAULT_MAX_BYPASS,
    DEFAULT_QUEUE_DEPTH,
    AdmissionController,
    QoSConfig,
    TenantSpec,
)
from .scheduler import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_STREAMS_PER_DEVICE,
    LaunchScheduler,
    ServeOutcome,
    ServeRequest,
    ServeStats,
    SplitOutcome,
    TenantStats,
    partition_units,
)
from .shards import DEFAULT_SHARDS, ShardedSelectionStore
from .signature import WorkloadSignature, derive_signature, log2_bucket
from .store import (
    SCHEMA_VERSION,
    SelectionStore,
    StoreEntry,
    StoreStats,
    device_kind_from_key,
)

__all__ = [
    "AdmissionController",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_BYPASS",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_SHARDS",
    "DEFAULT_STREAMS_PER_DEVICE",
    "LaunchScheduler",
    "QoSConfig",
    "PredictConfig",
    "Prediction",
    "ProfileLease",
    "ProfileLeaseTable",
    "SCHEMA_VERSION",
    "SelectionPredictor",
    "SelectionStore",
    "ServeOutcome",
    "ServeRequest",
    "ServeStats",
    "ShardedSelectionStore",
    "SplitOutcome",
    "StoreEntry",
    "StoreStats",
    "TenantSpec",
    "TenantStats",
    "WorkloadSignature",
    "derive_signature",
    "device_kind_from_key",
    "log2_bucket",
    "partition_units",
]
