"""Profile leases: at most one in-flight micro-profile per workload class.

The paper's asynchronous flow (§2.4) lets *chunks within one launch* run
eagerly while profiling completes at higher priority.  A serving fleet
generalizes that to *launches within the fleet*: when many concurrent
requests hit the same (pool, device-kind, workload-class), exactly one
should pay the micro-profiling cost — the rest run eagerly with the
current-best variant and pick up the published selection afterwards.
Without this, a cold-start burst of N identical requests would profile N
times, multiplying the warm-up cost the selection cache exists to
amortize.

:class:`ProfileLeaseTable` is that coordination point.  A lease is keyed
by the workload-class key, held by one request, and *stealable*: if the
holder has not released within ``timeout`` clock seconds (it stalled, or
its thread died mid-launch), the next requester takes the lease over so
the class does not starve unprofiled forever.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional


@dataclass
class ProfileLease:
    """One granted lease: who may micro-profile this class, since when."""

    key: str
    holder: int
    acquired_at: float


class ProfileLeaseTable:
    """Thread-safe lease map keyed by workload-class key."""

    #: ``acquire`` results (``None`` means the lease is held by someone
    #: else and still fresh — the caller should run eagerly instead).
    GRANTED = "granted"
    STOLEN = "stolen"
    #: :meth:`defer` result: the class *would* have profiled but
    #: backpressure postponed the lease.  No lease entry is created —
    #: the class stays cold and the next requester after pressure
    #: clears races for a real grant — but the deferral is accounted,
    #: so "never profiled because untrained/eager" and "never profiled
    #: because deferred by backpressure" stay distinguishable (the same
    #: distinction ``PREDICTION_FALLBACK`` reasons draw).
    DEFERRED = "deferred"

    def __init__(
        self,
        timeout: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Create an empty table.

        ``timeout`` (clock seconds) is how long a lease may be held
        before another requester can steal it; ``None`` disables
        stealing.  ``clock`` is injectable for deterministic tests.
        """
        self.timeout = timeout
        self._clock = clock if clock is not None else time.time
        self._leases: Dict[str, ProfileLease] = {}
        self._lock = threading.Lock()
        self.steals = 0
        self.grants = 0
        #: Total micro-profiles postponed by backpressure.
        self.deferrals = 0
        self._deferred_keys: Dict[str, int] = {}

    def acquire(self, key: str, holder: int) -> Optional[str]:
        """Try to take the profiling lease for a workload class.

        Returns :data:`GRANTED` (no live lease existed), :data:`STOLEN`
        (a lease existed but outlived the timeout), or ``None`` (a fresh
        lease is held elsewhere; do not profile).
        """
        with self._lock:
            now = self._clock()
            lease = self._leases.get(key)
            if lease is None:
                self._leases[key] = ProfileLease(key, holder, now)
                self.grants += 1
                return self.GRANTED
            if (
                self.timeout is not None
                and now - lease.acquired_at > self.timeout
            ):
                self._leases[key] = ProfileLease(key, holder, now)
                self.steals += 1
                return self.STOLEN
            return None

    def release(self, key: str, holder: int) -> bool:
        """Release a lease if ``holder`` still owns it.

        Returns False when the lease was already stolen or released — the
        late holder's publication should then defer to the newer one.
        """
        with self._lock:
            lease = self._leases.get(key)
            if lease is None or lease.holder != holder:
                return False
            del self._leases[key]
            return True

    @contextlib.contextmanager
    def holding(self, key: str, holder: int) -> Iterator[Optional[str]]:
        """Acquire-and-always-release wrapper around one lease attempt.

        Yields the :meth:`acquire` result (:data:`GRANTED`,
        :data:`STOLEN`, or ``None`` when someone else holds a fresh
        lease).  The release runs in a ``finally`` block, so a profiled
        launch that *raises* — a fault-aborted launch, a verification
        refusal, any bug in the holder — can never leave the class's
        lease stuck until the steal timeout.  Releasing is a no-op when
        nothing was granted or the lease was stolen meanwhile.
        """
        grant = self.acquire(key, holder)
        try:
            yield grant
        finally:
            if grant is not None:
                self.release(key, holder)

    def defer(self, key: str) -> str:
        """Record one backpressure deferral for a cold class.

        Returns :data:`DEFERRED`.  Deliberately creates *no* lease entry:
        a deferred request runs profiling-off and publishes nothing, so
        the class must stay open for a real :meth:`acquire` once
        pressure clears — a lease entry here would wedge the class until
        the steal timeout.
        """
        with self._lock:
            self.deferrals += 1
            self._deferred_keys[key] = self._deferred_keys.get(key, 0) + 1
            return self.DEFERRED

    def deferred_count(self, key: Optional[str] = None) -> int:
        """Deferrals recorded for one class (or in total)."""
        with self._lock:
            if key is None:
                return self.deferrals
            return self._deferred_keys.get(key, 0)

    def held(self, key: str) -> bool:
        """Whether any (possibly stale) lease exists for this class."""
        with self._lock:
            return key in self._leases

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)
