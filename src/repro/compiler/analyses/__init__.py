"""Static analyses feeding the DySel runtime (paper §3.4)."""

from .access import classify_access, schedule_locality_cost
from .safe_point import SafePointPlan, lcm_of, safe_point_plan
from .side_effect import (
    SideEffectFinding,
    SideEffectKind,
    SideEffectReport,
    analyze_side_effects,
    find_ir_side_effects,
)
from .uniform import UniformityReport, analyze_uniformity

__all__ = [
    "SafePointPlan",
    "SideEffectFinding",
    "SideEffectKind",
    "SideEffectReport",
    "UniformityReport",
    "analyze_side_effects",
    "analyze_uniformity",
    "classify_access",
    "find_ir_side_effects",
    "lcm_of",
    "safe_point_plan",
    "schedule_locality_cost",
]
