"""Safe point analysis: fair profiling-slice sizing (paper §3.4).

Variants differ in how much work each work-group processes (their *work
assignment factors*, changed by coarsening and tiling).  Comparing raw
per-work-group times would be unfair; instead the profiled workload per
variant is normalized to the least common multiple (LCM) of all factors,
so every variant profiles the **same number of workload units** and
throughput comparison is apples to apples.

The paper further multiplies this number by a constant so the profiled
work per variant is a multiple of the device's compute units, "to fully
utilize the hardware".  We scale until the *smallest* variant launch (the
most-coarsened variant) fills the device at least once, times the
configured ``safe_point_multiplier``.

The plan also respects the available workload: profiling cannot consume
more units than the launch has, and DySel deactivates profiling entirely
for small launches (paper §2.1) — that policy lives in
:mod:`repro.core.policy`; here we only clamp.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from ...errors import AnalysisError
from ...kernel.kernel import KernelVariant


@dataclass(frozen=True)
class SafePointPlan:
    """Result of safe point analysis for one kernel pool.

    ``units_per_variant`` is the workload-unit count each variant profiles
    (identical across variants — the fairness guarantee);
    ``groups_per_variant`` maps variant name to its work-group count for
    that slice (units / wa_factor, exact by construction).
    """

    units_per_variant: int
    groups_per_variant: Dict[str, int]

    def total_profile_units(self, num_variants_productive: int) -> int:
        """Units consumed from the workload by profiling.

        Fully-productive profiling consumes ``K`` distinct slices; the
        partial modes re-profile one shared slice, consuming one.
        """
        return self.units_per_variant * num_variants_productive


def lcm_of(values: Sequence[int]) -> int:
    """Least common multiple of positive integers."""
    if not values:
        raise AnalysisError("lcm_of requires at least one value")
    result = 1
    for value in values:
        if value < 1:
            raise AnalysisError(f"lcm_of requires positive values, got {value}")
        result = result * value // math.gcd(result, value)
    return result


def safe_point_plan(
    variants: Sequence[KernelVariant],
    compute_units: int,
    workload_units: int,
    multiplier: int = 1,
    max_workload_fraction: float = 0.5,
) -> SafePointPlan:
    """Compute the fair profiling-slice size for a variant pool.

    Parameters
    ----------
    variants:
        The registered kernel pool (at least one variant).
    compute_units:
        Device parallelism (cores / SMs) to fill during profiling.
    workload_units:
        Units available in this launch; the slice is clamped so that even
        K distinct slices (fully-productive mode) fit into this fraction.
    multiplier:
        Extra scaling constant (``ReproConfig.safe_point_multiplier``).
    max_workload_fraction:
        Upper bound on the fraction of the workload that profiling may
        claim across all variants.
    """
    if not variants:
        raise AnalysisError("safe_point_plan requires a non-empty pool")
    if compute_units < 1:
        raise AnalysisError(f"compute_units must be >= 1, got {compute_units}")
    if not 0 < max_workload_fraction <= 1:
        raise AnalysisError(
            f"max_workload_fraction must be in (0, 1], got {max_workload_fraction}"
        )

    factors = [variant.wa_factor for variant in variants]
    base_units = lcm_of(factors)

    # Scale so the most-coarsened variant still launches at least one
    # work-group per compute unit, then apply the configured constant.
    max_factor = max(factors)
    fill = math.ceil(compute_units * max_factor / base_units)
    units = base_units * max(1, fill) * max(1, multiplier)

    # Clamp to the available workload: all K slices (worst case,
    # fully-productive) must fit in the allowed fraction, and the slice
    # must stay a multiple of base_units for alignment.
    budget = int(workload_units * max_workload_fraction) // max(1, len(variants))
    if budget >= base_units:
        units = min(units, (budget // base_units) * base_units)
    else:
        # Degenerate small launch; profile a single LCM block if possible.
        units = min(units, base_units)
    units = min(units, workload_units)
    if units < base_units:
        raise AnalysisError(
            f"workload of {workload_units} units cannot host a fair "
            f"profiling slice (LCM of work assignment factors is "
            f"{base_units}); the launch policy should have deactivated "
            "profiling for a workload this small"
        )

    groups = {
        variant.name: max(1, units // variant.wa_factor)
        for variant in variants
    }
    return SafePointPlan(units_per_variant=units, groups_per_variant=groups)
