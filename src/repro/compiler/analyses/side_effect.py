"""Side effect analysis (paper §3.4).

Productive profiling is only safe when profiled work-groups write disjoint
parts of the final output.  This analysis detects the cases where that
cannot be guaranteed:

* **global atomic operations** — the paper's implementation "only detects
  global atomic operations" under the assumption that the original program
  is race-free/deterministic; we do the same over the IR;
* **declared output-range overlap / variation** — kernels whose IR states
  that work-groups write overlapping or differently-shaped output ranges
  (privatization, compaction, output binning, algorithm changes).

Either finding restricts micro-profiling to the swap-based mode, which
keeps a fully private output per candidate (paper §2.3).  The analysis is
conservative — atomics do not prove actual cross-work-group contention —
so the launch API lets programmers override the decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ...kernel.ir import AtomicKind, KernelIR


@dataclass(frozen=True)
class SideEffectReport:
    """Verdict and reasons for the side-effect restriction."""

    requires_swap: bool
    reasons: Tuple[str, ...] = ()


def analyze_ir_side_effects(ir: KernelIR, label: str = "kernel") -> Tuple[str, ...]:
    """Swap-forcing reasons for one variant's IR (empty if none)."""
    reasons = []
    for access in ir.accesses:
        if access.atomic is AtomicKind.GLOBAL:
            reasons.append(
                f"{label}: global atomic on buffer {access.buffer!r}"
            )
    if ir.output_ranges_overlap:
        reasons.append(f"{label}: work-group output ranges may overlap")
    if ir.output_range_varies:
        reasons.append(
            f"{label}: output range varies across kernel variants"
        )
    return tuple(reasons)


def analyze_side_effects(
    irs: Sequence[Tuple[str, KernelIR]]
) -> SideEffectReport:
    """Analyze a pool of (variant name, IR) pairs.

    One offending variant restricts the whole pool: profiling runs all
    candidates, so the weakest safety guarantee governs the mode.
    """
    reasons: Tuple[str, ...] = ()
    for name, ir in irs:
        reasons += analyze_ir_side_effects(ir, label=name)
    return SideEffectReport(requires_swap=bool(reasons), reasons=reasons)
