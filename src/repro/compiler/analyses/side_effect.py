"""Side effect analysis (paper §3.4).

Productive profiling is only safe when profiled work-groups write disjoint
parts of the final output.  This analysis detects the cases where that
cannot be guaranteed:

* **global atomic operations** — the paper's implementation "only detects
  global atomic operations" under the assumption that the original program
  is race-free/deterministic; we do the same over the IR;
* **declared output-range overlap / variation** — kernels whose IR states
  that work-groups write overlapping or differently-shaped output ranges
  (privatization, compaction, output binning, algorithm changes).

Either finding restricts micro-profiling to the swap-based mode, which
keeps a fully private output per candidate (paper §2.3).  The analysis is
conservative — atomics do not prove actual cross-work-group contention —
so the launch API lets programmers override the decision; the pool
verifier (:mod:`repro.analyze`) downgrades atomic findings to warnings
when that override is asserted.

Findings are structured (:class:`SideEffectFinding`: kind, variant,
buffer) so downstream consumers — the mode recommender here, and the
static verifier's diagnostics engine — share one analysis instead of
re-deriving the facts from the IR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ...kernel.ir import KernelIR


class SideEffectKind(enum.Enum):
    """Why a variant's writes may escape its own workload slice."""

    GLOBAL_ATOMIC = "global_atomic"
    OUTPUT_OVERLAP = "output_overlap"
    OUTPUT_VARIES = "output_varies"


@dataclass(frozen=True)
class SideEffectFinding:
    """One swap-forcing fact about one variant's IR."""

    kind: SideEffectKind
    variant: str
    buffer: Optional[str] = None

    @property
    def overridable(self) -> bool:
        """Whether the programmer override applies (atomics only).

        Atomics are a conservative proxy for cross-work-group races; a
        declared overlapping/varying output range is a stated fact, not a
        guess, so the override does not reach it.
        """
        return self.kind is SideEffectKind.GLOBAL_ATOMIC

    def describe(self) -> str:
        """Human-readable reason string."""
        if self.kind is SideEffectKind.GLOBAL_ATOMIC:
            return f"{self.variant}: global atomic on buffer {self.buffer!r}"
        if self.kind is SideEffectKind.OUTPUT_OVERLAP:
            return f"{self.variant}: work-group output ranges may overlap"
        return f"{self.variant}: output range varies across kernel variants"


@dataclass(frozen=True)
class SideEffectReport:
    """Verdict and reasons for the side-effect restriction."""

    requires_swap: bool
    reasons: Tuple[str, ...] = ()
    findings: Tuple[SideEffectFinding, ...] = ()


def find_ir_side_effects(
    ir: KernelIR, label: str = "kernel"
) -> Tuple[SideEffectFinding, ...]:
    """Structured swap-forcing findings for one variant's IR."""
    findings = []
    for buffer in ir.global_atomic_buffers:
        findings.append(
            SideEffectFinding(SideEffectKind.GLOBAL_ATOMIC, label, buffer)
        )
    if ir.output_ranges_overlap:
        findings.append(SideEffectFinding(SideEffectKind.OUTPUT_OVERLAP, label))
    if ir.output_range_varies:
        findings.append(SideEffectFinding(SideEffectKind.OUTPUT_VARIES, label))
    return tuple(findings)


def analyze_ir_side_effects(ir: KernelIR, label: str = "kernel") -> Tuple[str, ...]:
    """Swap-forcing reasons for one variant's IR (empty if none)."""
    return tuple(f.describe() for f in find_ir_side_effects(ir, label))


def analyze_side_effects(
    irs: Sequence[Tuple[str, KernelIR]]
) -> SideEffectReport:
    """Analyze a pool of (variant name, IR) pairs.

    One offending variant restricts the whole pool: profiling runs all
    candidates, so the weakest safety guarantee governs the mode.
    """
    findings: Tuple[SideEffectFinding, ...] = ()
    for name, ir in irs:
        findings += find_ir_side_effects(ir, label=name)
    return SideEffectReport(
        requires_swap=bool(findings),
        reasons=tuple(f.describe() for f in findings),
        findings=findings,
    )
