"""Uniform workload analysis (paper §3.4).

Determines whether loop bounds vary across work-groups — if they might,
fully-productive profiling would compare variants on unequal slices and
the throughput comparison would be unfair, so DySel must use a partial
productive mode (hybrid or swap) that profiles every variant on the same
slice.

The analysis is deliberately **conservative**, exactly as the paper
describes: a data-dependent loop bound is flagged non-uniform even if the
actual data happens to be uniform (the uniform-CSR-matrix example), and
early loop breaks / early kernel termination are flagged too.  Programmers
can override the resulting mode through the launch API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ...kernel.ir import KernelIR


@dataclass(frozen=True)
class UniformityReport:
    """Why (or that) a kernel pool is considered uniform.

    ``uniform`` is the verdict; ``reasons`` lists the conservative
    triggers, each tagged with the variant that raised it.
    """

    uniform: bool
    reasons: Tuple[str, ...] = ()


def analyze_ir_uniformity(ir: KernelIR, label: str = "kernel") -> Tuple[str, ...]:
    """Non-uniformity reasons for one variant's IR (empty if uniform)."""
    reasons = []
    for loop in ir.loops:
        if loop.bound.is_data_dependent:
            reasons.append(
                f"{label}: loop {loop.name!r} has a data-dependent bound"
                + (
                    f" ({loop.bound.description})"
                    if loop.bound.description
                    else ""
                )
            )
        if loop.has_early_exit:
            reasons.append(f"{label}: loop {loop.name!r} may exit early")
    return tuple(reasons)


def analyze_uniformity(irs: Sequence[Tuple[str, KernelIR]]) -> UniformityReport:
    """Analyze a pool of (variant name, IR) pairs.

    The pool is uniform only if every variant is: any variant's irregular
    loop makes the shared profiling slice unrepresentative for the whole
    comparison.
    """
    reasons: Tuple[str, ...] = ()
    for name, ir in irs:
        reasons += analyze_ir_uniformity(ir, label=name)
    return UniformityReport(uniform=not reasons, reasons=reasons)
