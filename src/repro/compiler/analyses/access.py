"""Access-pattern derivation from loop schedules.

When a compiler serializes OpenCL work-items into loops on a CPU (MCUDA /
pocl style), the chosen loop order decides each access's effective memory
pattern: the innermost loop whose variable appears in the index expression
sets the stride of consecutive touches.  This module derives
(pattern, stride) from an access's per-loop strides under a given loop
order — the machinery behind both the schedule transform
(:mod:`repro.compiler.transforms.schedule`) and the locality-centric
heuristic baseline (:mod:`repro.compiler.heuristics.lc`).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ...errors import AnalysisError
from ...kernel.ir import GATHER_STRIDE, AccessPattern, MemoryAccess
from ...device.memory import ELEM_BYTES

#: Trip count assumed for data-dependent loops by *static* consumers (the
#: LC heuristic).  Static analysis cannot see actual bounds; this guess is
#: what makes the heuristic mispick on inputs like the diagonal matrix
#: (Fig 8, Fig 11a), where real trip counts are ~1.
ASSUMED_DYNAMIC_TRIPS = 32.0


def classify_access(
    strides_by_loop: Mapping[str, int],
    loop_order: Sequence[str],
) -> Tuple[AccessPattern, int]:
    """Pattern and stride an access exhibits under a loop order.

    The *innermost* loop's stride decides the dynamic access stream:

    * zero → the address is invariant in the hot loop: the value lives in
      a register (or L1 after the first touch) → BROADCAST;
    * ``GATHER_STRIDE`` → data-dependent → GATHER;
    * one element → UNIT_STRIDE;
    * anything else → STRIDED with that stride (each re-entry of the
      innermost loop restarts the strided walk, defeating prefetch).
    """
    if not loop_order:
        raise AnalysisError("classify_access requires a non-empty loop order")
    stride = strides_by_loop.get(list(loop_order)[-1], 0)
    if stride == 0:
        return AccessPattern.BROADCAST, 0
    if stride == GATHER_STRIDE:
        return AccessPattern.GATHER, 0
    if stride == int(ELEM_BYTES):
        return AccessPattern.UNIT_STRIDE, 0
    return AccessPattern.STRIDED, int(stride)


def innermost_stride(
    strides_by_loop: Mapping[str, int],
    loop_order: Sequence[str],
) -> float:
    """Effective innermost stride in bytes (for locality scoring).

    GATHER counts as a worst-case stride of one cache line; BROADCAST as
    zero.
    """
    pattern, stride = classify_access(strides_by_loop, loop_order)
    if pattern is AccessPattern.GATHER:
        return 64.0
    if pattern is AccessPattern.UNIT_STRIDE:
        return ELEM_BYTES
    if pattern is AccessPattern.BROADCAST:
        return 0.0
    return float(stride)


def schedule_locality_cost(
    accesses: Sequence[MemoryAccess],
    loop_order: Sequence[str],
    static_trips: Mapping[str, Optional[int]],
) -> float:
    """LC-style static cost of a loop order: trip-weighted strides.

    For each access with stride metadata, the cost contribution is its
    effective innermost stride times the (statically estimated) execution
    count of its site.  Data-dependent loop bounds contribute
    :data:`ASSUMED_DYNAMIC_TRIPS` — the blind spot that lets DySel beat
    this heuristic on unfavourable inputs.
    """
    total = 0.0
    for access in accesses:
        if access.strides_by_loop is None:
            continue
        strides = dict(access.strides_by_loop)
        scope = access.scope if access.scope is not None else tuple(loop_order)
        weight = 1.0
        for loop_name in scope:
            trips = static_trips.get(loop_name)
            weight *= (
                float(trips) if trips is not None else ASSUMED_DYNAMIC_TRIPS
            )
        total += innermost_stride(strides, loop_order) * weight
    return total
