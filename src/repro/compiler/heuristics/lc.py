"""Locality-centric scheduling heuristic (Kim et al. [17]).

LC statically analyzes memory access patterns with respect to work-item
and kernel loops and picks the loop schedule that minimizes overall access
strides.  We reimplement the published idea over our IR: each candidate
order is scored by the trip-weighted innermost strides of all accesses
(:func:`~repro.compiler.analyses.access.schedule_locality_cost`), and the
minimum wins.

The blind spot the paper exploits (§4.2, §4.4): static trip counts.  A
data-dependent loop bound is assumed to have a "typical" trip count, so LC
chooses the depth-first order (kernel loops innermost) for spmv — correct
for the random matrix, but 1.15× off on the diagonal matrix whose rows
have a single nonzero each.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ...errors import AnalysisError
from ...kernel.kernel import KernelVariant
from ..analyses.access import schedule_locality_cost


def lc_select_schedule(
    family: Sequence[Tuple[Tuple[str, ...], KernelVariant]],
) -> KernelVariant:
    """Pick the schedule LC's static heuristic would choose.

    ``family`` pairs each candidate loop order with its rescheduled
    variant (as produced by
    :func:`~repro.compiler.transforms.schedule.enumerate_schedules`).
    Ties break toward the earlier candidate, mirroring a deterministic
    compiler.
    """
    if not family:
        raise AnalysisError("lc_select_schedule requires candidates")
    best_variant = None
    best_cost = float("inf")
    for order, variant in family:
        static_trips = {
            loop.name: loop.bound.static_trips for loop in variant.ir.loops
        }
        cost = schedule_locality_cost(
            variant.ir.accesses, order, static_trips
        )
        if cost < best_cost:
            best_cost = cost
            best_variant = variant
    assert best_variant is not None
    return best_variant
