"""Static selection baselines DySel is evaluated against.

Each module reimplements one published heuristic over our IR, *including
its documented blind spots* — the evaluation depends on them mispicking
exactly where the paper reports they do:

* :mod:`.lc` — locality-centric scheduling [17]: minimizes trip-weighted
  access strides, assuming a fixed trip count for data-dependent loops
  (mispicks spmv-csr on the diagonal matrix, Fig 8 / Fig 11a).
* :mod:`.porple` — PORPLE [7]: model-driven data placement with
  per-GPU-generation cache models (its Kepler-targeted policy loses 1.29×
  on spmv-csr, Fig 9).
* :mod:`.jang` — Jang et al. [15]: pattern-rule data placement without
  volume/working-set modeling (loses 2.29× on spmv-csr, Fig 9).
* :mod:`.intel_vec` — the Intel OpenCL vectorizer's width knob [21]
  (picks 4-way for sgemm and 8-way for divergent spmv, both suboptimal,
  Fig 1).
"""

from .intel_vec import intel_vector_width
from .jang import jang_placement
from .lc import lc_select_schedule
from .porple import GpuGeneration, porple_placement

__all__ = [
    "GpuGeneration",
    "intel_vector_width",
    "jang_placement",
    "lc_select_schedule",
    "porple_placement",
]
