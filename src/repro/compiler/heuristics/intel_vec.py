"""Intel OpenCL implicit-vectorizer width heuristic [21].

Reproduces the behaviour Fig 1 documents on the i7-3820: the production
stack "counterintuitively chooses 4-way vector for regular and control
divergence free sgemm, while it uses 8-way vector for spmv which exercises
control divergence".  The plausible rationale — regular kernels are
register-pressure-bound (back off to 4-way), divergent kernels need width
to amortize masking setup (go wide) — turns out wrong on both counts,
which is exactly the point of the figure.
"""

from __future__ import annotations

from ...kernel.ir import KernelIR


def intel_vector_width(ir: KernelIR) -> int:
    """Width the Intel heuristic would pick for this kernel."""
    if ir.divergence == 0.0:
        return 4
    return 8
