"""PORPLE-style model-driven data placement (Chen et al. [7]).

PORPLE scores candidate placements for each array with an internal memory
/cache model of the *target GPU generation* and picks the cheapest.  It is
the strongest static baseline in the paper's Case Study II — and still
loses 1.29× on spmv-csr because its model, lacking runtime locality
information, overrates the Kepler texture path for streaming arrays.
Amusingly, the paper notes the *optimal* Kepler placement was the one
PORPLE generated when targeting Fermi.

We reimplement the idea faithfully in miniature: a per-generation
parameter table (relative cost of each memory path per access pattern), a
scoring loop over read-only buffers, and an argmin.  The per-generation
tables encode each model's beliefs, blind spots included.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Sequence

from ...kernel.buffers import Buffer, MemorySpace
from ...kernel.ir import AccessPattern, KernelIR

#: Constant memory capacity PORPLE's model respects.
CONSTANT_CAPACITY_BYTES = 64 * 1024


class GpuGeneration(enum.Enum):
    """GPU generations PORPLE ships models for (PORPLE paper's three)."""

    FERMI = "fermi"
    KEPLER = "kepler"
    MAXWELL = "maxwell"


#: Relative per-byte cost each generation's model assigns to serving an
#: access pattern from a memory space.  These are PORPLE's *beliefs*, not
#: our simulator's ground truth — the divergence between the two is the
#: 1.29× mistake of Fig 9:
#:
#: * The FERMI model trusts the L1 cache for streams (global cheap) and
#:   reserves texture for gathers — which happens to be optimal on Kepler.
#: * The KEPLER model knows global loads bypass L1, so it (over-)favours
#:   the read-only texture path even for streaming arrays.
#: * The MAXWELL model believes the unified L1/tex cache serves global
#:   gathers well, so it leaves everything in global memory.
_MODEL_COST: Dict[GpuGeneration, Dict[MemorySpace, Dict[AccessPattern, float]]] = {
    GpuGeneration.FERMI: {
        MemorySpace.GLOBAL: {
            AccessPattern.COALESCED: 1.0,
            AccessPattern.UNIT_STRIDE: 4.0,
            AccessPattern.STRIDED: 4.0,
            AccessPattern.GATHER: 8.0,
            AccessPattern.BROADCAST: 1.0,
        },
        MemorySpace.TEXTURE: {
            AccessPattern.COALESCED: 1.5,
            AccessPattern.UNIT_STRIDE: 4.5,
            AccessPattern.STRIDED: 4.5,
            AccessPattern.GATHER: 3.0,
            AccessPattern.BROADCAST: 1.0,
        },
        MemorySpace.CONSTANT: {
            AccessPattern.COALESCED: 6.0,
            AccessPattern.UNIT_STRIDE: 8.0,
            AccessPattern.STRIDED: 8.0,
            AccessPattern.GATHER: 12.0,
            AccessPattern.BROADCAST: 0.2,
        },
    },
    GpuGeneration.KEPLER: {
        MemorySpace.GLOBAL: {
            # Kepler global loads bypass L1 — the model penalizes global
            # for everything, which overshoots for pure streams.
            AccessPattern.COALESCED: 1.6,
            AccessPattern.UNIT_STRIDE: 6.0,
            AccessPattern.STRIDED: 6.0,
            AccessPattern.GATHER: 9.0,
            AccessPattern.BROADCAST: 1.5,
        },
        MemorySpace.TEXTURE: {
            AccessPattern.COALESCED: 1.2,
            AccessPattern.UNIT_STRIDE: 4.0,
            AccessPattern.STRIDED: 4.0,
            AccessPattern.GATHER: 3.0,
            AccessPattern.BROADCAST: 0.8,
        },
        MemorySpace.CONSTANT: {
            AccessPattern.COALESCED: 6.0,
            AccessPattern.UNIT_STRIDE: 8.0,
            AccessPattern.STRIDED: 8.0,
            AccessPattern.GATHER: 12.0,
            AccessPattern.BROADCAST: 0.2,
        },
    },
    GpuGeneration.MAXWELL: {
        MemorySpace.GLOBAL: {
            # Unified L1/texture cache: the model trusts global for
            # gathers too, leaving texture unused.
            AccessPattern.COALESCED: 1.0,
            AccessPattern.UNIT_STRIDE: 3.0,
            AccessPattern.STRIDED: 3.0,
            AccessPattern.GATHER: 3.5,
            AccessPattern.BROADCAST: 1.0,
        },
        MemorySpace.TEXTURE: {
            AccessPattern.COALESCED: 1.4,
            AccessPattern.UNIT_STRIDE: 3.5,
            AccessPattern.STRIDED: 3.5,
            AccessPattern.GATHER: 3.6,
            AccessPattern.BROADCAST: 1.0,
        },
        MemorySpace.CONSTANT: {
            AccessPattern.COALESCED: 6.0,
            AccessPattern.UNIT_STRIDE: 8.0,
            AccessPattern.STRIDED: 8.0,
            AccessPattern.GATHER: 12.0,
            AccessPattern.BROADCAST: 0.2,
        },
    },
}


def porple_placement(
    ir: KernelIR,
    buffers: Mapping[str, Buffer],
    target: GpuGeneration,
    candidates: Sequence[MemorySpace] = (
        MemorySpace.GLOBAL,
        MemorySpace.TEXTURE,
        MemorySpace.CONSTANT,
    ),
) -> Dict[str, MemorySpace]:
    """Placement policy PORPLE's model would emit for the target GPU.

    Scores every read-only buffer against every candidate space with the
    target generation's belief table, weighted by the access's static byte
    volume (trip counts of data-dependent loops are unknown to the model,
    so each site counts its per-trip volume once — the missing runtime
    information the paper calls out).  Buffers any access writes stay in
    global memory.
    """
    model = _MODEL_COST[target]
    written = {access.buffer for access in ir.accesses if access.is_write}
    placement: Dict[str, MemorySpace] = {}
    for name, buffer in buffers.items():
        sites = [a for a in ir.accesses if a.buffer == name]
        if not sites:
            continue
        if name in written:
            placement[name] = MemorySpace.GLOBAL
            continue
        best_space = MemorySpace.GLOBAL
        best_score = float("inf")
        for space in candidates:
            if (
                space is MemorySpace.CONSTANT
                and buffer.nbytes > CONSTANT_CAPACITY_BYTES
            ):
                continue
            score = sum(
                model[space][site.pattern] * site.bytes_per_trip
                for site in sites
            )
            if score < best_score:
                best_score = score
                best_space = space
        placement[name] = best_space
    return placement
