"""Jang et al. pattern-rule data placement [15].

A purely syntactic rule table mapping access patterns to memory spaces,
with no volume weighting and no cache-capacity modeling beyond the hard
constant-memory limit.  Simpler and older than PORPLE — and, in Fig 9,
the worst placement for spmv-csr (2.29× off): its "small read-only array
accessed irregularly → constant memory" rule puts the dense vector on the
serializing constant bank.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ...kernel.buffers import Buffer, MemorySpace
from ...kernel.ir import AccessPattern, KernelIR

#: Constant-memory capacity the rules respect.
CONSTANT_CAPACITY_BYTES = 64 * 1024


def jang_placement(
    ir: KernelIR,
    buffers: Mapping[str, Buffer],
) -> Dict[str, MemorySpace]:
    """Placement the rule table produces for this kernel.

    Rules, applied per read-only buffer (written buffers stay global):

    1. broadcast-read data → constant memory;
    2. irregularly accessed (gather) data that fits the constant capacity
       → constant memory (the documented pitfall);
    3. irregularly accessed data larger than that → texture memory;
    4. everything else (regular streams) → global memory.
    """
    written = {access.buffer for access in ir.accesses if access.is_write}
    placement: Dict[str, MemorySpace] = {}
    for name, buffer in buffers.items():
        sites = [a for a in ir.accesses if a.buffer == name]
        if not sites:
            continue
        if name in written:
            placement[name] = MemorySpace.GLOBAL
            continue
        patterns = {site.pattern for site in sites}
        if patterns == {AccessPattern.BROADCAST}:
            placement[name] = MemorySpace.CONSTANT
        elif AccessPattern.GATHER in patterns:
            if buffer.nbytes <= CONSTANT_CAPACITY_BYTES:
                placement[name] = MemorySpace.CONSTANT
            else:
                placement[name] = MemorySpace.TEXTURE
        else:
            placement[name] = MemorySpace.GLOBAL
    return placement
