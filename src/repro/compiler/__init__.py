"""Compiler side of DySel: analyses, transforms, heuristic baselines.

DySel deliberately *relaxes* the compiler's job: instead of having to pick
the single best code arrangement, the compiler emits several likely
candidates (typically 2–10, paper §1) plus the metadata the runtime needs
to profile them fairly and safely.  This subpackage provides:

* :mod:`~repro.compiler.analyses` — the three analyses of paper §3.4
  (safe point, uniform workload, side effect) plus access-pattern
  derivation;
* :mod:`~repro.compiler.transforms` — the optimization axes the evaluation
  varies (scheduling, vectorization, tiling, coarsening, unrolling,
  prefetching, data placement), implemented as IR-rewriting functions over
  kernel variants;
* :mod:`~repro.compiler.heuristics` — reimplementations of the *static*
  selection baselines DySel is compared against (locality-centric
  scheduling [17], PORPLE [7], the Jang et al. placement rules [15], and
  the Intel vectorizer width heuristic [21]), including the documented
  cases where they mispick;
* :mod:`~repro.compiler.variants` — the variant-pool container handed to
  the DySel runtime.
"""

from .analyses.safe_point import SafePointPlan, safe_point_plan
from .analyses.side_effect import SideEffectReport, analyze_side_effects
from .analyses.uniform import UniformityReport, analyze_uniformity
from .variants import VariantPool, recommend_mode

__all__ = [
    "SafePointPlan",
    "SideEffectReport",
    "UniformityReport",
    "VariantPool",
    "analyze_side_effects",
    "analyze_uniformity",
    "recommend_mode",
    "safe_point_plan",
]
