"""Variant pools: what the compiler hands to the DySel runtime.

A :class:`VariantPool` bundles the kernel contract, the candidate variants
(typically 2–10, paper §1), the compiler's recommended productive
profiling mode (from uniform-workload and side-effect analyses), and the
suggested initial default for asynchronous eager execution (paper §2.4's
``Kdefault``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import RegistrationError
from ..kernel.kernel import KernelSpec, KernelVariant
from ..modes import ProfilingMode
from .analyses.safe_point import lcm_of
from .analyses.side_effect import analyze_side_effects
from .analyses.uniform import analyze_uniformity


def recommend_mode(variants: Sequence[KernelVariant]) -> ProfilingMode:
    """Compiler's conservative mode choice for a pool (paper §3.4).

    Side effects force swap-based profiling; otherwise a non-uniform
    workload forces hybrid; otherwise fully-productive applies.  Both
    analyses are conservative, and the launch API lets programmers
    override the result.
    """
    irs = [(variant.name, variant.ir) for variant in variants]
    if analyze_side_effects(irs).requires_swap:
        return ProfilingMode.SWAP
    if not analyze_uniformity(irs).uniform:
        return ProfilingMode.HYBRID
    return ProfilingMode.FULLY


@dataclass
class VariantPool:
    """The candidate set for one kernel signature.

    ``initial_default`` names the variant asynchronous eager execution
    starts with before profiling completes; when the compiler has no
    opinion it defaults to the first registered variant, mirroring how a
    conventional toolchain would simply ship its single static choice.
    """

    spec: KernelSpec
    variants: Tuple[KernelVariant, ...]
    mode: Optional[ProfilingMode] = None
    initial_default: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.variants:
            raise RegistrationError(
                f"kernel {self.spec.signature.name!r}: empty variant pool"
            )
        names = [variant.name for variant in self.variants]
        if len(names) != len(set(names)):
            duplicates = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise RegistrationError(
                f"kernel {self.spec.signature.name!r}: duplicate variant "
                f"names {duplicates}"
            )
        if self.mode is None:
            self.mode = recommend_mode(self.variants)
        if self.initial_default is None:
            self.initial_default = self.variants[0].name
        elif self.initial_default not in names:
            raise RegistrationError(
                f"kernel {self.spec.signature.name!r}: initial default "
                f"{self.initial_default!r} is not a registered variant"
            )

    @property
    def name(self) -> str:
        """Kernel signature name."""
        return self.spec.signature.name

    @property
    def variant_names(self) -> Tuple[str, ...]:
        """Registered variant names, in registration order."""
        return tuple(variant.name for variant in self.variants)

    @property
    def wa_lcm(self) -> int:
        """LCM of the pool's work-assignment factors (memoized).

        Eager chunking and mixed-plan slicing align every cut to this
        base on every launch; the variant set is immutable after
        construction, so the fold runs once per pool instead of once per
        launch on the orchestration hot path.
        """
        cached = self.__dict__.get("_wa_lcm")
        if cached is None:
            cached = lcm_of([variant.wa_factor for variant in self.variants])
            self.__dict__["_wa_lcm"] = cached
        return cached

    def variant(self, name: str) -> KernelVariant:
        """Look up one variant by name."""
        for candidate in self.variants:
            if candidate.name == name:
                return candidate
        raise RegistrationError(
            f"kernel {self.name!r} has no variant {name!r} "
            f"(registered: {list(self.variant_names)})"
        )

    def with_initial_default(self, name: str) -> "VariantPool":
        """Return a copy with a different async-mode initial default."""
        return VariantPool(
            spec=self.spec,
            variants=self.variants,
            mode=self.mode,
            initial_default=name,
        )
