"""Scratchpad tiling: stage reused data in on-chip memory.

Tiling loads a block of the inputs into scratchpad once and reuses it
across the work-group, cutting global traffic by the reuse factor — a big
win on GPUs, and (because scratchpad lowers to ordinary cached memory) a
pure copy-cost loss on CPUs, which is exactly the asymmetry behind
Fig 10a vs 10b.  The transform scales the tiled accesses' per-unit
traffic, charges the scratchpad footprint and barrier in the IR, and
multiplies the work assignment factor when a tile covers several units.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ...errors import TransformError
from ...kernel.kernel import KernelVariant


def tile_scratchpad(
    variant: KernelVariant,
    scratchpad_bytes: int,
    traffic_scale: Mapping[str, float],
    wa_factor_scale: int = 1,
    label: str = "",
) -> KernelVariant:
    """Return the variant tiled through scratchpad memory.

    Parameters
    ----------
    scratchpad_bytes:
        Per-work-group scratchpad footprint (staging cost on both devices;
        capacity/latency benefit only where scratchpad is real).
    traffic_scale:
        Per-buffer scaling of global traffic, e.g. ``{"a": 1/16}`` for a
        16-wide tile reusing each loaded element 16 times.
    wa_factor_scale:
        How many previous work-groups' units one tile covers.
    """
    if scratchpad_bytes <= 0:
        raise TransformError(
            f"scratchpad_bytes must be > 0, got {scratchpad_bytes} "
            f"(variant {variant.name!r})"
        )
    if wa_factor_scale < 1:
        raise TransformError(
            f"wa_factor_scale must be >= 1, got {wa_factor_scale}"
        )
    if not traffic_scale:
        raise TransformError("traffic_scale must name at least one buffer")
    ir = variant.ir
    known = {access.buffer for access in ir.accesses}
    for name in traffic_scale:
        if name not in known:
            raise TransformError(
                f"traffic_scale names {name!r}, which no access touches "
                f"(variant {variant.name!r})"
            )
    accesses = []
    for access in ir.accesses:
        scale = traffic_scale.get(access.buffer, 1.0)
        if scale <= 0:
            raise TransformError(
                f"traffic_scale for {access.buffer!r} must be > 0, got {scale}"
            )
        accesses.append(
            dataclasses.replace(
                access, bytes_per_trip=access.bytes_per_trip * scale
            )
        )
    new_ir = ir.with_(
        accesses=tuple(accesses),
        scratchpad_bytes=ir.scratchpad_bytes + scratchpad_bytes,
        uses_barrier=True,
    ).with_note(f"scratchpad tile ({scratchpad_bytes}B)")
    suffix = label or "tiled"
    return dataclasses.replace(
        variant,
        name=f"{variant.name},{suffix}",
        ir=new_ir,
        wa_factor=variant.wa_factor * wa_factor_scale,
    )
