"""Compile-time transforms: the optimization axes the evaluation varies.

Each transform maps a :class:`~repro.kernel.kernel.KernelVariant` to a new
variant with rewritten IR (and, where work packing changes, a new work
assignment factor).  Functional executors are never altered — all these
optimizations are semantics-preserving, which is what makes the variants
interchangeable members of one DySel pool.

The set mirrors paper §2.3's applicability catalogue: scheduling
(locality-centric work-item/loop interchange), vectorization, scratchpad
tiling, thread coarsening, loop unrolling, software prefetching, and data
placement.
"""

from .coarsen import coarsen
from .placement import place
from .prefetch import add_prefetch
from .schedule import enumerate_schedules, reorder_loops
from .tile import tile_scratchpad
from .unroll import unroll
from .vectorize import vectorize

__all__ = [
    "add_prefetch",
    "coarsen",
    "enumerate_schedules",
    "place",
    "reorder_loops",
    "tile_scratchpad",
    "unroll",
    "vectorize",
]
