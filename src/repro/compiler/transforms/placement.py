"""Data placement: bind read-only buffers to specialized memory paths.

The axis PORPLE [7] and Jang et al. [15] optimize (paper Case Study II):
moving a buffer into texture or constant memory changes which cache path
serves it on the GPU.  Placement never changes functional results, so the
transform only records the decision in the IR; the cost model re-binds
the buffer's space when pricing accesses.  On the CPU model every space
lowers to the same cache hierarchy, mirroring how GPU-specific placement
"makes no difference for CPU" (paper §4.3).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ...errors import TransformError
from ...kernel.buffers import MemorySpace
from ...kernel.kernel import KernelVariant


def place(
    variant: KernelVariant,
    placements: Mapping[str, MemorySpace],
    label: str = "",
) -> KernelVariant:
    """Return the variant with the given buffer→space placement policy.

    Only buffers some access reads may be placed, and read-only spaces
    (texture/constant) cannot hold written buffers.
    """
    if not placements:
        raise TransformError("placement requires at least one buffer")
    ir = variant.ir
    touched = {access.buffer for access in ir.accesses}
    written = {access.buffer for access in ir.accesses if access.is_write}
    for name, space in placements.items():
        if name not in touched:
            raise TransformError(
                f"placement names {name!r}, which no access touches "
                f"(variant {variant.name!r})"
            )
        if name in written and space in (
            MemorySpace.TEXTURE,
            MemorySpace.CONSTANT,
        ):
            raise TransformError(
                f"buffer {name!r} is written; cannot place in read-only "
                f"{space.value} space (variant {variant.name!r})"
            )
    merged = dict(ir.placements)
    merged.update({name: space.value for name, space in placements.items()})
    new_ir = ir.with_(placements=tuple(sorted(merged.items()))).with_note(
        "placement "
        + ",".join(f"{k}->{v.value}" for k, v in sorted(placements.items()))
    )
    suffix = label or "place:" + ",".join(
        f"{k}={v.value}" for k, v in sorted(placements.items())
    )
    return dataclasses.replace(
        variant, name=f"{variant.name},{suffix}", ir=new_ir
    )
