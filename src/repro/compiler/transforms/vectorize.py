"""Vectorization: SIMD width selection (paper Fig 1's axis).

The Intel OpenCL stack implicitly vectorizes kernels across work-items at
a heuristically chosen width.  The transform records the chosen width in
the IR; the CPU device model translates it into arithmetic speedup and,
under control divergence, into mask/pack/unpack overhead that grows with
width — the mechanism behind Fig 1's counterintuitive results.
"""

from __future__ import annotations

import dataclasses

from ...errors import TransformError
from ...kernel.kernel import KernelVariant


def vectorize(
    variant: KernelVariant, width: int, label: str = ""
) -> KernelVariant:
    """Return the variant vectorized to ``width`` lanes (1 = scalar)."""
    if width < 1:
        raise TransformError(
            f"vector width must be >= 1, got {width} "
            f"(variant {variant.name!r})"
        )
    if width & (width - 1):
        raise TransformError(
            f"vector width must be a power of two, got {width}"
        )
    suffix = label or (f"{width}-way" if width > 1 else "scalar")
    new_ir = variant.ir.with_(vector_width=width).with_note(
        f"vectorized {width}-way"
    )
    return dataclasses.replace(
        variant, name=f"{variant.name},{suffix}", ir=new_ir
    )


def auto_vectorize(variant: KernelVariant, width: int = 8) -> KernelVariant:
    """Vectorize only if the innermost loop is profitably vectorizable.

    Models icc's implicit vectorizer over LC-scheduled code (the Fig 8
    toolchain: "uses the Intel's icc compiler with vectorization
    enabled"): a loop whose varying accesses are all unit-stride,
    coalesced or loop-invariant vectorizes; strided or gather bodies are
    left scalar.  The variant's name is left unchanged so schedule labels
    stay the family's identity.
    """
    ir = variant.ir
    if not ir.loops:
        return variant
    innermost = ir.loops[-1].name
    for access in ir.accesses:
        if access.strides_by_loop is None:
            continue
        stride = dict(access.strides_by_loop).get(innermost, 0)
        if stride == 0 or stride == 4:
            continue
        return variant  # strided or data-dependent body: stays scalar
    new_ir = ir.with_(vector_width=width).with_note(
        f"auto-vectorized {width}-way"
    )
    return dataclasses.replace(variant, ir=new_ir)
