"""Thread coarsening: more workload units per work-group.

Coarsening merges the work of several work-groups (or work-items) into
one, trading parallelism for register reuse and amortized per-work-group
overhead [19].  It multiplies the variant's work assignment factor — the
metadata safe point analysis normalizes with (paper §3.4, Fig 6a) — and
optionally scales per-unit flop/byte volumes to model the reuse the
transform enables.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from ...errors import TransformError
from ...kernel.kernel import KernelVariant


def coarsen(
    variant: KernelVariant,
    factor: int,
    flops_scale: float = 1.0,
    bytes_scale: Optional[Mapping[str, float]] = None,
    label: str = "",
) -> KernelVariant:
    """Return the variant coarsened by ``factor``.

    Parameters
    ----------
    factor:
        How many previous work-groups' units one new work-group covers;
        the work assignment factor multiplies by this.
    flops_scale:
        Per-unit arithmetic scaling (< 1 models redundant-computation
        elimination through register reuse).
    bytes_scale:
        Optional per-buffer scaling of per-unit traffic (< 1 models loads
        shared across the coarsened work).
    """
    if factor < 1:
        raise TransformError(
            f"coarsening factor must be >= 1, got {factor} "
            f"(variant {variant.name!r})"
        )
    if flops_scale <= 0:
        raise TransformError(f"flops_scale must be > 0, got {flops_scale}")
    ir = variant.ir
    accesses = []
    scales = dict(bytes_scale or {})
    for access in ir.accesses:
        scale = scales.get(access.buffer, 1.0)
        if scale <= 0:
            raise TransformError(
                f"bytes_scale for {access.buffer!r} must be > 0, got {scale}"
            )
        accesses.append(
            dataclasses.replace(
                access, bytes_per_trip=access.bytes_per_trip * scale
            )
        )
    new_ir = ir.with_(
        accesses=tuple(accesses),
        flops_per_trip=ir.flops_per_trip * flops_scale,
        flops_fixed=ir.flops_fixed * flops_scale,
    ).with_note(f"coarsened {factor}x")
    suffix = label or f"coarsen{factor}x"
    return dataclasses.replace(
        variant,
        name=f"{variant.name},{suffix}",
        ir=new_ir,
        wa_factor=variant.wa_factor * factor,
    )
