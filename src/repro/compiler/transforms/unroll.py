"""Loop unrolling: amortize innermost-loop bookkeeping."""

from __future__ import annotations

import dataclasses

from ...errors import TransformError
from ...kernel.kernel import KernelVariant


def unroll(variant: KernelVariant, factor: int, label: str = "") -> KernelVariant:
    """Return the variant with its innermost loop unrolled ``factor``×.

    The device charges loop bookkeeping per innermost trip divided by the
    unroll factor; like prefetching, unrolling is one of the optimizations
    that turn out redundant when combined with texture placement on Kepler
    (paper §4.3's spmv-jds observation).
    """
    if factor < 1:
        raise TransformError(
            f"unroll factor must be >= 1, got {factor} "
            f"(variant {variant.name!r})"
        )
    if not variant.ir.loops:
        raise TransformError(
            f"variant {variant.name!r} has no loop to unroll"
        )
    new_ir = variant.ir.with_(
        unroll_factor=variant.ir.unroll_factor * factor
    ).with_note(f"unrolled {factor}x")
    suffix = label or f"unroll{factor}"
    return dataclasses.replace(
        variant, name=f"{variant.name},{suffix}", ir=new_ir
    )
