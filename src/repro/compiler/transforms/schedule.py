"""Work-item / kernel-loop scheduling (loop interchange on CPU).

On CPUs, OpenCL work-items are serialized into loops; the order chosen for
those loops relative to the kernel's own loops decides every access's
effective stride (paper §4.2's LC case study; up to 117× spread on sgemm).
:func:`reorder_loops` permutes a variant's loop nest and re-derives each
access's pattern from its per-loop stride metadata;
:func:`enumerate_schedules` produces the full permutation family LC
chooses from (60/3/6/2/2/6 schedules for the Fig 8 benchmarks).

Naming follows the paper's Case Study IV shorthand: a schedule that runs
in-kernel loops innermost is depth-first order (*DFO*); work-item loops
innermost is breadth-first order (*BFO*).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, Sequence, Tuple

from ...errors import TransformError
from ...kernel.ir import KernelIR, MemoryAccess
from ...kernel.kernel import KernelVariant
from ..analyses.access import classify_access


def reorder_loops(
    variant: KernelVariant,
    order: Sequence[str],
    label: str = "",
) -> KernelVariant:
    """Return the variant rescheduled to the given loop order.

    ``order`` names every loop of the variant exactly once, outermost
    first.  Accesses carrying ``strides_by_loop`` metadata get their
    pattern and stride re-derived for the new order; accesses without
    metadata are kept unchanged (their pattern is schedule-invariant).
    """
    ir = variant.ir
    current = [loop.name for loop in ir.loops]
    if sorted(order) != sorted(current):
        raise TransformError(
            f"schedule order {list(order)} must be a permutation of loops "
            f"{current} (variant {variant.name!r})"
        )
    loops_by_name = {loop.name: loop for loop in ir.loops}
    new_loops = tuple(loops_by_name[name] for name in order)

    new_accesses = []
    for access in ir.accesses:
        if access.strides_by_loop is None:
            new_accesses.append(access)
            continue
        strides = dict(access.strides_by_loop)
        pattern, stride = classify_access(strides, order)
        scope = _hoisted_scope(access, strides, order)
        new_accesses.append(
            dataclasses.replace(
                access, pattern=pattern, stride_bytes=stride, scope=scope
            )
        )

    name = label or "sched:" + ">".join(order)
    new_ir = ir.with_(loops=new_loops, accesses=tuple(new_accesses)).with_note(
        f"schedule {'>'.join(order)}"
    )
    return dataclasses.replace(variant, name=f"{variant.name},{name}", ir=new_ir)


def _hoisted_scope(
    access: MemoryAccess,
    strides: dict,
    order: Sequence[str],
) -> Tuple[str, ...]:
    """Execution scope of an access after loop-invariant code motion.

    A load whose address is invariant in the innermost loops (zero stride)
    gets hoisted out of them by any real compiler, so its execution count
    excludes the maximal suffix of zero-stride loops under the new order.
    This is what makes a "work-items innermost" schedule keep reused
    operands in registers rather than re-issuing the load per work-item.
    """
    base_scope = (
        set(access.scope)
        if access.scope is not None
        else {name for name in order}
    )
    ordered = [name for name in order if name in base_scope]
    while ordered and strides.get(ordered[-1], 0) == 0:
        ordered.pop()
    return tuple(ordered)


def schedule_label(ir: KernelIR, order: Sequence[str]) -> str:
    """DFO/BFO-style label for a loop order, if it matches either shape."""
    work_item = {loop.name for loop in ir.loops if loop.is_work_item_loop}
    if not work_item or len(work_item) == len(ir.loops):
        return ""
    innermost = order[-1]
    return "BFO" if innermost in work_item else "DFO"


def enumerate_schedules(
    variant: KernelVariant,
) -> Iterator[Tuple[Tuple[str, ...], KernelVariant]]:
    """All loop-order permutations of a variant, as (order, variant) pairs.

    This is the schedule family the LC compiler generates; DySel registers
    each as a pool candidate, while the LC heuristic statically picks one.
    """
    names = [loop.name for loop in variant.ir.loops]
    if not names:
        raise TransformError(
            f"variant {variant.name!r} has no loops to schedule"
        )
    for order in itertools.permutations(names):
        # Names must stay unique across the family, so the full order is
        # always part of the label; the DFO/BFO tag is a readability hint.
        tag = schedule_label(variant.ir, order)
        suffix = ">".join(order) + (f"({tag})" if tag else "")
        yield order, reorder_loops(variant, order, label=suffix)
