"""Software prefetching: overlap memory latency with computation."""

from __future__ import annotations

import dataclasses

from ...kernel.kernel import KernelVariant


def add_prefetch(variant: KernelVariant, label: str = "") -> KernelVariant:
    """Return the variant with software prefetching enabled.

    On the GPU model this deepens gather latency hiding — unless the
    gathers already go through the texture path, where the benefit
    collapses (paper §4.3: unrolling and prefetching in spmv-jds are
    redundant once texture memory is applied on Kepler).  The CPU model's
    hardware prefetchers make it a no-op there.
    """
    # Prefetch instructions are not free: they occupy issue slots whether
    # or not the latency they hide matters (the reason the transform is a
    # slight net loss once texture placement already hides it).
    new_ir = variant.ir.with_(
        prefetch=True,
        flops_per_trip=variant.ir.flops_per_trip + 0.5,
    ).with_note("software prefetch")
    suffix = label or "prefetch"
    return dataclasses.replace(
        variant, name=f"{variant.name},{suffix}", ir=new_ir
    )
