"""Launch gating: how verification verdicts reach the runtime.

``gate_launch`` resolves a requested (mode, flow) against a pool's
:class:`VerificationReport` under the configured verification level
(:attr:`ReproConfig.verify`):

* ``"strict"`` — an illegal combination raises
  :class:`~repro.errors.VerificationError` carrying the full structured
  diagnostics (rule ids, variants, fix hints) instead of a bare
  ``LaunchError``.
* ``"warn"`` — an illegal combination is auto-demoted to the nearest
  legal one (see :meth:`VerificationReport.demote`) and a
  :class:`VerificationWarning` is emitted; launches that cannot be
  demoted (no legal combination at all) still raise.
* ``"off"`` — the gate is bypassed entirely (callers keep the
  pre-verifier fallback behaviour).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Tuple

from ..errors import VerificationError
from ..modes import OrchestrationFlow, ProfilingMode
from .diagnostics import VerificationReport


class VerificationWarning(UserWarning):
    """A launch was auto-demoted or carries non-blocking findings."""


@dataclass(frozen=True)
class GateDecision:
    """Resolved launch parameters after gating."""

    mode: ProfilingMode
    flow: OrchestrationFlow
    #: Human-readable note appended to the launch reason ("" when the
    #: request passed unchanged).
    note: str = ""

    @property
    def demoted(self) -> bool:
        """Whether the gate changed the requested combination."""
        return bool(self.note)


def gate_launch(
    report: VerificationReport,
    mode: ProfilingMode,
    flow: OrchestrationFlow,
    level: str,
) -> GateDecision:
    """Apply the verification gate to one launch request."""
    if level == "off" or report.is_legal(mode, flow):
        return GateDecision(mode=mode, flow=flow)

    blocking = report.blocking(mode, flow)
    if level == "strict":
        raise VerificationError(
            report.explain(mode, flow), diagnostics=blocking
        )

    demoted = report.demote(mode, flow)
    if demoted is None:
        # Nothing legal: warn-mode cannot demote its way out.
        raise VerificationError(
            report.explain(mode, flow), diagnostics=blocking
        )
    new_mode, new_flow = demoted
    rules = ",".join(sorted({d.rule_id for d in blocking}))
    if new_mode is mode and flow is OrchestrationFlow.ASYNC:
        # The paper's Table 1 fallback: same mode, synchronous flow.
        note = f"swap mode forced synchronous flow ({rules})" if (
            mode is ProfilingMode.SWAP
        ) else (
            f"{mode.value} mode forced synchronous flow ({rules})"
        )
    else:
        note = (
            f"verifier demoted {mode.value}_{flow.value} to "
            f"{new_mode.value}_{new_flow.value} ({rules})"
        )
    warnings.warn(
        f"kernel {report.pool!r}: illegal launch "
        f"(mode={mode.value}, flow={flow.value}) auto-demoted to "
        f"{new_mode.value}_{new_flow.value}; blocking rules: {rules}. "
        "Set ReproConfig.verify='strict' to refuse instead.",
        VerificationWarning,
        stacklevel=3,
    )
    return GateDecision(mode=new_mode, flow=new_flow, note=note)
