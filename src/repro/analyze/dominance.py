"""Dominance pruning of kernel pools from static cost intervals.

A variant is **statically dominated** when its best case (interval ``lo``)
exceeds some rival's worst case (interval ``hi``) by the configured safety
margin: no workload within the widening policy can make it win.  Dominated
variants are pruned from the *micro-profiling candidate set* only — they
stay in the correctness pool, remain launchable as pinned/default
variants, and differential/fault tooling still sees them.

Soundness (proved by the hypothesis suite): with margin ``m >= 1``,
survivors are ``{V : lo(V) <= m * min_hi}`` where ``min_hi`` is the
smallest interval ``hi`` in the pool.  The variant achieving ``min_hi``
always survives (``lo <= hi = min_hi <= m * min_hi``), and the true
engine winner can never be pruned: a pruned ``W`` would satisfy
``cost(W) >= lo(W) > min_hi >= cost(argmin)``, contradicting ``W``
winning.

The :class:`CostBoundPass`/:class:`DominancePass` verifier passes emit the
``DYSEL-COST-*`` / ``DYSEL-DOM-*`` diagnostics; both are inert unless the
context's :class:`~repro.config.AnalyzeSettings` opt into dominance
analysis, so default verification behaviour is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..compiler.variants import VariantPool
from ..config import AnalyzeSettings
from .costbound import (
    Interval,
    VariantCostBound,
    WideningPolicy,
    variant_cost_bound,
)
from .diagnostics import Diagnostic, Severity
from .passes import PoolContext, VerifierPass

#: Default dominance safety margin: a variant must be predicted to lose by
#: 25% beyond interval overlap before profiling stops measuring it.
DEFAULT_MARGIN = 1.25


def policy_from_settings(settings: AnalyzeSettings) -> WideningPolicy:
    """Widening policy configured by :class:`AnalyzeSettings`."""
    return WideningPolicy(data_trip_bounds=settings.data_trip_bounds)


@dataclass(frozen=True)
class VariantVerdict:
    """One variant's interval and dominance outcome."""

    bound: VariantCostBound
    #: The interval dominance compared (launch-scaled when the workload is
    #: known, per-unit otherwise).
    interval: Interval
    pruned: bool

    @property
    def name(self) -> str:
        """Variant name."""
        return self.bound.variant


@dataclass(frozen=True)
class DominanceVerdict:
    """Dominance analysis of one pool on one device kind."""

    pool: str
    device_kind: str
    margin: float
    workload_units: Optional[int]
    verdicts: Tuple[VariantVerdict, ...]
    #: Name of the variant with the smallest interval ``hi`` (the
    #: benchmark every other variant's ``lo`` is compared against).
    best_name: str

    @property
    def survivors(self) -> Tuple[str, ...]:
        """Non-dominated variant names, pool registration order."""
        return tuple(v.name for v in self.verdicts if not v.pruned)

    @property
    def pruned(self) -> Tuple[str, ...]:
        """Dominated variant names, pool registration order."""
        return tuple(v.name for v in self.verdicts if v.pruned)

    def verdict(self, name: str) -> VariantVerdict:
        """Look up one variant's verdict."""
        for v in self.verdicts:
            if v.name == name:
                return v
        raise KeyError(f"pool {self.pool!r} has no variant {name!r}")

    def format_table(self) -> str:
        """Interval table + pruned set (CLI ``--dominance`` rendering)."""
        unit = (
            f"cycles/{self.workload_units}u"
            if self.workload_units is not None
            else "cycles/unit"
        )
        lines = [
            f"cost bounds ({self.device_kind}, margin {self.margin:g}, "
            f"{unit}):"
        ]
        width = max((len(v.name) for v in self.verdicts), default=4)
        for v in self.verdicts:
            state = "PRUNED" if v.pruned else "ok"
            notes = (
                f"  (widened: {', '.join(v.bound.widened)})"
                if v.bound.widened
                else ""
            )
            lines.append(
                f"  {v.name:{width}s}  {str(v.interval):>24s}  "
                f"mid {v.interval.midpoint:>12.1f}  {state}{notes}"
            )
        if self.pruned:
            lines.append(
                f"  pruned {len(self.pruned)}/{len(self.verdicts)} "
                f"variant(s): {', '.join(self.pruned)} "
                f"(dominated by {self.best_name!r})"
            )
        else:
            lines.append("  no variant is statically dominated")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (CLI ``--format json``)."""
        return {
            "pool": self.pool,
            "device_kind": self.device_kind,
            "margin": self.margin,
            "workload_units": self.workload_units,
            "best": self.best_name,
            "survivors": list(self.survivors),
            "pruned": list(self.pruned),
            "bounds": [
                {
                    "variant": v.name,
                    "lo": v.interval.lo,
                    "hi": v.interval.hi,
                    "midpoint": v.interval.midpoint,
                    "pruned": v.pruned,
                    "widened": list(v.bound.widened),
                }
                for v in self.verdicts
            ],
        }


def pool_cost_bounds(
    pool: VariantPool,
    device_kind: str,
    policy: WideningPolicy = WideningPolicy(),
    margin: float = DEFAULT_MARGIN,
    workload_units: Optional[int] = None,
) -> DominanceVerdict:
    """Compute per-variant intervals and the dominance pruning verdict.

    With ``workload_units`` the comparison uses exact launch intervals
    (including per-group fixed costs and ragged final groups); without it
    the workload-size-independent per-unit intervals are compared.
    """
    if margin < 1.0:
        raise ValueError(f"dominance margin must be >= 1, got {margin}")
    bounds = [
        variant_cost_bound(variant, device_kind, policy)
        for variant in pool.variants
    ]
    if workload_units is not None:
        intervals = [b.launch_interval(workload_units) for b in bounds]
    else:
        intervals = [b.per_unit_interval for b in bounds]
    min_hi = min(iv.hi for iv in intervals)
    best_name = bounds[
        min(range(len(bounds)), key=lambda i: intervals[i].hi)
    ].variant
    verdicts = tuple(
        VariantVerdict(
            bound=b, interval=iv, pruned=bool(iv.lo > margin * min_hi)
        )
        for b, iv in zip(bounds, intervals)
    )
    return DominanceVerdict(
        pool=pool.name,
        device_kind=device_kind,
        margin=margin,
        workload_units=workload_units,
        verdicts=verdicts,
        best_name=best_name,
    )


def cold_start_estimate(
    pool: VariantPool,
    device_kind: str,
    policy: WideningPolicy = WideningPolicy(),
) -> Optional[float]:
    """Static cycles-per-unit prior for a pool with no measurements yet.

    The serve scheduler uses this as its cold-start load estimate before
    any selection-store entry exists: the midpoint of the pool default
    variant's per-unit interval (the variant a cold launch runs first).
    ``None`` when the interval is unbounded.
    """
    default = pool.variant(pool.initial_default)
    bound = variant_cost_bound(default, device_kind, policy)
    interval = bound.per_unit_interval
    if not interval.is_bounded:
        return None
    return interval.midpoint


# ----------------------------------------------------------------------
# Verifier passes
# ----------------------------------------------------------------------


def _context_verdict(ctx: PoolContext) -> DominanceVerdict:
    """Dominance verdict for a verification context."""
    settings = ctx.settings
    return pool_cost_bounds(
        ctx.pool,
        ctx.device_kind,
        policy=policy_from_settings(settings),
        margin=settings.dominance_margin,
        workload_units=ctx.workload_units,
    )


class CostBoundPass(VerifierPass):
    """Static cost intervals per variant (``DYSEL-COST-*``).

    Inert unless the context settings opt into dominance analysis, so the
    default verification pipeline is byte-for-byte unchanged.
    """

    name = "cost-bound"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Emit interval facts for every variant in the pool."""
        if not ctx.settings.dominance:
            return
        verdict = _context_verdict(ctx)
        for v in verdict.verdicts:
            per_unit = v.bound.per_unit_interval
            yield Diagnostic(
                rule_id="DYSEL-COST-001",
                severity=Severity.INFO,
                message=f"static cost on {verdict.device_kind}: "
                f"{per_unit} cycles/unit "
                f"(midpoint {per_unit.midpoint:.1f})",
                variant=v.name,
            )
            if v.bound.widened:
                yield Diagnostic(
                    rule_id="DYSEL-COST-002",
                    severity=Severity.INFO,
                    message="cost interval widened: "
                    + "; ".join(v.bound.widened),
                    variant=v.name,
                    hint="tighten AnalyzeSettings.data_trip_bounds, or "
                    "accept the conservative interval",
                )
            if not v.interval.is_bounded:
                yield Diagnostic(
                    rule_id="DYSEL-COST-003",
                    severity=Severity.WARNING,
                    message=f"cost interval on {verdict.device_kind} is "
                    "unbounded; dominance pruning cannot act on this "
                    "variant",
                    variant=v.name,
                    hint="analyze on a known device kind ('cpu'/'gpu') "
                    "and bound the widening policy",
                )


class DominancePass(VerifierPass):
    """Dominance pruning verdicts (``DYSEL-DOM-*``).

    Also inert unless dominance analysis is enabled in the settings.
    """

    name = "dominance"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Emit pruning findings for dominated variants."""
        if not ctx.settings.dominance:
            return
        verdict = _context_verdict(ctx)
        best = verdict.verdict(verdict.best_name)
        for name in verdict.pruned:
            v = verdict.verdict(name)
            yield Diagnostic(
                rule_id="DYSEL-DOM-001",
                severity=Severity.INFO,
                message=f"statically dominated: best case {v.interval.lo:.1f}"
                f" exceeds {verdict.best_name!r}'s worst case "
                f"{best.interval.hi:.1f} × margin {verdict.margin:g}; "
                "pruned from the micro-profiling candidate set",
                variant=name,
                hint="drop the variant from the pool, or keep it as a "
                "fallback only",
            )
        survivors = verdict.survivors
        if len(verdict.verdicts) > 1 and len(survivors) == 1:
            yield Diagnostic(
                rule_id="DYSEL-DOM-002",
                severity=Severity.WARNING,
                message=f"dominance pruning left a single candidate "
                f"({survivors[0]!r}); micro-profiling will be skipped for "
                "this pool",
                hint="raise AnalyzeSettings.dominance_margin if runtime "
                "measurement is still wanted",
            )


def prune_pool(
    pool: VariantPool, verdict: DominanceVerdict
) -> Tuple[VariantPool, Tuple[str, ...]]:
    """Profiling-candidate pool after pruning (plus the pruned names).

    Returns the original pool untouched when nothing is pruned.  The
    pruned pool keeps the original default when it survives, otherwise
    promotes the best-bounded survivor — but the *correctness* pool (and
    its default) is never what this function's result replaces.
    """
    pruned = verdict.pruned
    if not pruned:
        return pool, ()
    survivors = [v for v in pool.variants if v.name in set(verdict.survivors)]
    default = (
        pool.initial_default
        if pool.initial_default in verdict.survivors
        else verdict.best_name
    )
    candidate = VariantPool(
        spec=pool.spec,
        variants=tuple(survivors),
        mode=pool.mode,
        initial_default=default,
    )
    return candidate, pruned


__all__: List[str] = [
    "DEFAULT_MARGIN",
    "CostBoundPass",
    "DominancePass",
    "DominanceVerdict",
    "VariantVerdict",
    "cold_start_estimate",
    "policy_from_settings",
    "pool_cost_bounds",
    "prune_pool",
]
