"""Static kernel-pool verification (the repo's correctness-tooling layer).

DySel's safety rests on static facts the paper states but never checks
end-to-end: fully-productive profiling needs regular workloads with
disjoint per-slice outputs, hybrid mode needs enough declared sandboxes,
and global atomics or overlapping output ranges force swap-based
profiling, which cannot run asynchronously (paper §2.2–§2.3, Table 1).
This package lints a registered pool **before any launch**:

* :mod:`~repro.analyze.passes` — the legality rules (mode eligibility,
  sandbox capacity, async legality, signature/footprint consistency,
  safe-point feasibility, write-set races), each yielding structured
  findings;
* :mod:`~repro.analyze.costbound` — sound static cost intervals per
  (variant, device kind) via abstract interpretation of the IR;
* :mod:`~repro.analyze.dominance` — dominance pruning of micro-profiling
  candidate sets from those intervals (``DYSEL-COST-*``/``DYSEL-DOM-*``);
* :mod:`~repro.analyze.registry` — the authoritative machine-readable
  rule catalog (``--explain``, JSON export);
* :mod:`~repro.analyze.overrides` — configured severity adjustments
  (``[tool.repro.analyze]`` in ``pyproject.toml``);
* :mod:`~repro.analyze.diagnostics` — rule ids, severities, fix hints,
  and the per-(mode, flow) legality matrix;
* :mod:`~repro.analyze.manager` — the pass manager and the cached
  :class:`PoolVerifier` the runtime's launch gate uses;
* :mod:`~repro.analyze.gate` — strict/warn/off gating and auto-demotion
  to the cheapest legal mode (``ReproConfig.verify``);
* :mod:`~repro.analyze.cli` — ``python -m repro.analyze``.
"""

from .costbound import (
    Interval,
    VariantCostBound,
    WideningPolicy,
    ir_hash,
    variant_cost_bound,
)
from .diagnostics import (
    ALL_COMBOS,
    Diagnostic,
    Severity,
    VerificationReport,
    combos,
)
from .dominance import (
    DEFAULT_MARGIN,
    CostBoundPass,
    DominancePass,
    DominanceVerdict,
    cold_start_estimate,
    pool_cost_bounds,
    prune_pool,
)
from .gate import GateDecision, VerificationWarning, gate_launch
from .manager import FULL_PASSES, PassManager, PoolVerifier, verify_pool
from .overrides import (
    apply_adjustments,
    load_pyproject_settings,
    validate_settings,
)
from .passes import (
    DEFAULT_PASSES,
    PoolContext,
    VerifierPass,
    VerifyOverrides,
)
from .registry import RULE_IDS, RULES, Rule, explain, find_rule

__all__ = [
    "ALL_COMBOS",
    "DEFAULT_MARGIN",
    "DEFAULT_PASSES",
    "CostBoundPass",
    "Diagnostic",
    "DominancePass",
    "DominanceVerdict",
    "FULL_PASSES",
    "GateDecision",
    "Interval",
    "PassManager",
    "PoolContext",
    "PoolVerifier",
    "RULES",
    "RULE_IDS",
    "Rule",
    "Severity",
    "VariantCostBound",
    "VerificationReport",
    "VerificationWarning",
    "VerifierPass",
    "VerifyOverrides",
    "WideningPolicy",
    "apply_adjustments",
    "cold_start_estimate",
    "combos",
    "explain",
    "find_rule",
    "gate_launch",
    "ir_hash",
    "load_pyproject_settings",
    "pool_cost_bounds",
    "prune_pool",
    "validate_settings",
    "variant_cost_bound",
    "verify_pool",
]
