"""Static kernel-pool verification (the repo's correctness-tooling layer).

DySel's safety rests on static facts the paper states but never checks
end-to-end: fully-productive profiling needs regular workloads with
disjoint per-slice outputs, hybrid mode needs enough declared sandboxes,
and global atomics or overlapping output ranges force swap-based
profiling, which cannot run asynchronously (paper §2.2–§2.3, Table 1).
This package lints a registered pool **before any launch**:

* :mod:`~repro.analyze.passes` — the rules (mode eligibility, sandbox
  capacity, async legality, signature/footprint consistency, safe-point
  feasibility, write-set races), each yielding structured findings;
* :mod:`~repro.analyze.diagnostics` — rule ids, severities, fix hints,
  and the per-(mode, flow) legality matrix;
* :mod:`~repro.analyze.manager` — the pass manager and the cached
  :class:`PoolVerifier` the runtime's launch gate uses;
* :mod:`~repro.analyze.gate` — strict/warn/off gating and auto-demotion
  to the cheapest legal mode (``ReproConfig.verify``);
* :mod:`~repro.analyze.cli` — ``python -m repro.analyze``.
"""

from .diagnostics import (
    ALL_COMBOS,
    Diagnostic,
    Severity,
    VerificationReport,
    combos,
)
from .gate import GateDecision, VerificationWarning, gate_launch
from .manager import PassManager, PoolVerifier, verify_pool
from .passes import (
    DEFAULT_PASSES,
    PoolContext,
    VerifierPass,
    VerifyOverrides,
)

__all__ = [
    "ALL_COMBOS",
    "DEFAULT_PASSES",
    "Diagnostic",
    "GateDecision",
    "PassManager",
    "PoolContext",
    "PoolVerifier",
    "Severity",
    "VerificationReport",
    "VerificationWarning",
    "VerifierPass",
    "VerifyOverrides",
    "combos",
    "gate_launch",
    "verify_pool",
]
