"""Static cost-bound analysis: sound cycle intervals per (variant, device).

This module abstract-interprets a :class:`~repro.kernel.ir.KernelIR`
against a device model and produces a **sound interval** ``[lo, hi]`` (in
engine cycles) that is guaranteed to contain the true noise-free cost the
mechanistic cost model (:mod:`repro.device.cost`) would charge:

* quantities the IR states exactly — static loop trips, access patterns,
  stride/placement facts, vector width, divergence, scratchpad bytes —
  evaluate exactly, mirroring the device formulas term by term;
* quantities only the *data* determines — data-dependent
  :class:`~repro.kernel.ir.LoopBound` trips, gather working sets, buffer
  sizes, dynamic strides — **widen** to configured worst/best-case bounds
  (cache-hierarchy extremes, the :class:`WideningPolicy` trip bounds), so
  the interval stays a superset of any runtime behaviour within those
  bounds.

The interval brackets :meth:`repro.device.cost.CostModel.launch_cycles` —
the serialized work-group cycles the engine uses as its noise-free truth.
Kernel-launch overhead, measurement jitter and the timer quantum sit on
top of that in the engine and are *not* part of the interval; dominance
comparisons between variants of one pool are unaffected because those
terms are variant-independent.

Soundness contract (checked by the hypothesis property suite):

* the workload's data-dependent trip counts lie inside the policy's
  ``data_trip_bounds``;
* buffers are served from their IR-declared placement (or the default
  global space) — re-binding a buffer into texture/constant space at
  launch time without an IR placement is outside the contract.

Results are cached module-wide, keyed by a structural IR hash plus the
device kind and widening policy, so verifying many pools over shared IRs
costs one evaluation each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..device import make_cpu, make_gpu
from ..device.base import Device
from ..device.cost import ir_hash as _device_ir_hash
from ..device.memory import ELEM_BYTES
from ..kernel.buffers import MemorySpace
from ..kernel.ir import AccessPattern, AtomicKind, KernelIR, MemoryAccess
from ..kernel.kernel import KernelVariant


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` of nonnegative cycle counts.

    ``hi`` may be ``inf`` (an unbounded analysis result); ``lo`` is always
    finite.  Arithmetic is the standard interval arithmetic restricted to
    the nonnegative operations the analysis needs.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.lo) or self.lo < 0:
            raise ValueError(f"interval lo must be finite and >= 0, got {self.lo}")
        if self.hi < self.lo:
            raise ValueError(f"interval needs lo <= hi, got [{self.lo}, {self.hi}]")

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __mul__(self, other: "Interval") -> "Interval":
        """Product of nonnegative intervals (endpoints multiply)."""
        return Interval(self.lo * other.lo, self.hi * other.hi)

    def scale(self, factor: float) -> "Interval":
        """Scale by a nonnegative constant."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return Interval(self.lo * factor, self.hi * factor)

    def max_with(self, other: "Interval") -> "Interval":
        """Interval extension of ``max`` (endpoint-wise for nonneg args)."""
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def union(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- queries -------------------------------------------------------

    @property
    def midpoint(self) -> float:
        """Center of the interval (``inf`` when unbounded)."""
        return (self.lo + self.hi) / 2.0

    @property
    def width(self) -> float:
        """``hi - lo`` (``inf`` when unbounded)."""
        return self.hi - self.lo

    @property
    def is_bounded(self) -> bool:
        """True when ``hi`` is finite."""
        return bool(np.isfinite(self.hi))

    @property
    def is_point(self) -> bool:
        """True when the interval is a single value (exact analysis)."""
        return self.lo == self.hi

    def contains(self, value: float, slack: float = 0.0) -> bool:
        """Whether ``value`` lies inside, with relative float ``slack``."""
        lo = self.lo * (1.0 - slack)
        hi = self.hi * (1.0 + slack) if np.isfinite(self.hi) else self.hi
        return lo <= value <= hi

    def __contains__(self, value: float) -> bool:
        return self.contains(value)

    def __str__(self) -> str:
        hi = "inf" if not np.isfinite(self.hi) else f"{self.hi:.1f}"
        return f"[{self.lo:.1f}, {hi}]"


#: The exact zero interval.
ZERO = Interval(0.0, 0.0)

#: The fully-unknown interval (analysis gave up).
UNBOUNDED = Interval(0.0, float("inf"))


def point(value: float) -> Interval:
    """Exact (degenerate) interval for a statically-known quantity."""
    return Interval(value, value)


@dataclass(frozen=True)
class WideningPolicy:
    """Worst/best-case assumptions for statically-unknown quantities.

    ``data_trip_bounds`` brackets any data-dependent loop's per-unit trip
    count; workloads whose true trips exceed the upper bound void the
    soundness guarantee (widen the policy, not the claim).
    """

    data_trip_bounds: Tuple[float, float] = (0.0, 4096.0)

    def __post_init__(self) -> None:
        lo, hi = self.data_trip_bounds
        if lo < 0 or hi < lo:
            raise ValueError(
                f"data_trip_bounds must satisfy 0 <= lo <= hi, got {self.data_trip_bounds}"
            )

    @property
    def trip_interval(self) -> Interval:
        """The trip bounds as an :class:`Interval`."""
        return Interval(*self.data_trip_bounds)


@dataclass(frozen=True)
class VariantCostBound:
    """Sound cost interval of one variant on one device kind.

    Component intervals are **per workload unit**; ``fixed_cycles`` is the
    exact per-work-group overhead (scratchpad staging + dispatch).  The
    derived intervals follow the cost model's aggregation: a work-group of
    ``n`` units costs ``max(sum compute, sum bandwidth) + sum exposed +
    fixed``, so a launch of ``U`` units in ``G`` groups is bracketed by
    ``U * unit_interval + G * fixed``.
    """

    variant: str
    device_kind: str
    compute: Interval
    bandwidth: Interval
    exposed: Interval
    fixed_cycles: float
    wa_factor: int
    widened: Tuple[str, ...] = ()

    @property
    def unit_interval(self) -> Interval:
        """Per-unit roofline interval (excludes per-group fixed cost)."""
        return self.compute.max_with(self.bandwidth) + self.exposed

    def launch_interval(self, workload_units: int) -> Interval:
        """Sound bracket of ``CostModel.launch_cycles`` for a launch."""
        if workload_units < 1:
            raise ValueError(f"workload_units must be >= 1, got {workload_units}")
        groups = -(-workload_units // max(1, self.wa_factor))
        return self.unit_interval.scale(workload_units) + point(
            self.fixed_cycles * groups
        )

    @property
    def per_unit_interval(self) -> Interval:
        """Per-unit interval valid for *any* workload size.

        The fixed cost amortizes to ``fixed / wa`` on full groups but a
        ragged final group can pay up to one whole ``fixed`` per unit, so
        the upper endpoint keeps the un-amortized term.
        """
        wa = max(1, self.wa_factor)
        unit = self.unit_interval
        return Interval(unit.lo + self.fixed_cycles / wa, unit.hi + self.fixed_cycles)


# ----------------------------------------------------------------------
# Device resolution and caching
# ----------------------------------------------------------------------

_DEVICE_FACTORIES = {"cpu": make_cpu, "gpu": make_gpu}
_DEVICE_CACHE: Dict[str, Device] = {}
_BOUND_CACHE: Dict[Tuple[str, str, WideningPolicy, str, int], VariantCostBound] = {}


def device_for_kind(kind: str) -> Optional[Device]:
    """Reference device model for a device kind (None when unknown).

    Cost formulas depend only on the device's spec and memory hierarchy,
    never on the runtime configuration, so one shared instance per kind
    serves every analysis.
    """
    if kind not in _DEVICE_FACTORIES:
        return None
    if kind not in _DEVICE_CACHE:
        _DEVICE_CACHE[kind] = _DEVICE_FACTORIES[kind]()
    return _DEVICE_CACHE[kind]


def clear_cache() -> None:
    """Drop all memoized cost bounds (tests / policy hot-swaps)."""
    _BOUND_CACHE.clear()


def cache_size() -> int:
    """Number of memoized (IR, device, policy) evaluations."""
    return len(_BOUND_CACHE)


def ir_hash(ir: KernelIR) -> str:
    """Stable structural hash of an IR.

    Callables (data-dependent evaluators) are replaced by a fixed marker:
    the *bounds* never look through them, so two IRs differing only in
    evaluator bodies have identical cost intervals and may share a cache
    entry.

    The hash itself lives in :func:`repro.device.cost.ir_hash` (the
    engine's cost-kernel memo keys on it too); this module re-exports it
    so analysis callers keep their import path.
    """
    return _device_ir_hash(ir)


# ----------------------------------------------------------------------
# Interval evaluation
# ----------------------------------------------------------------------


def _loop_trip_interval(ir: KernelIR, name: str, policy: WideningPolicy) -> Interval:
    """Trip-count interval of one loop."""
    bound = ir.loop_named(name).bound
    if bound.static_trips is not None:
        return point(float(bound.static_trips))
    return policy.trip_interval


def _access_trip_interval(
    ir: KernelIR, access: MemoryAccess, policy: WideningPolicy
) -> Interval:
    """Execution-count interval of an access site (mirrors ``access_trips``)."""
    if access.scope is not None:
        names = access.scope
    else:
        names = tuple(loop.name for loop in ir.enclosing_loops(access.loop))
    counts = point(1.0)
    for name in names:
        counts = counts * _loop_trip_interval(ir, name, policy)
    return counts


def _innermost_trip_interval(ir: KernelIR, policy: WideningPolicy) -> Interval:
    """Interval of total innermost-loop executions per unit."""
    if not ir.loops:
        return point(1.0)
    counts = point(1.0)
    for loop in ir.loops:
        counts = counts * _loop_trip_interval(ir, loop.name, policy)
    return counts


def _bookkeeping_interval(
    ir: KernelIR, device: Device, policy: WideningPolicy
) -> Interval:
    """Interval of per-unit loop setup/branch cycles (mirrors the model)."""
    spec = device.spec
    bookkeeping = ZERO
    instances = point(1.0)
    for index, loop in enumerate(ir.loops):
        trips = _loop_trip_interval(ir, loop.name, policy)
        iterations = instances * trips
        per_trip = spec.loop_overhead_cycles
        if index == len(ir.loops) - 1:
            per_trip /= ir.unroll_factor * max(1, ir.vector_width)
            if ir.prefetch:
                per_trip += 0.6
        bookkeeping = bookkeeping + instances.scale(spec.loop_setup_cycles)
        bookkeeping = bookkeeping + iterations.scale(per_trip)
        instances = iterations
    return bookkeeping


def _compute_interval(
    ir: KernelIR, device: Device, policy: WideningPolicy
) -> Interval:
    """Interval of per-unit compute cycles.

    Every device's ``compute_cycles`` is linear in flops with a
    nonnegative coefficient, so evaluating it at the flop endpoints
    yields the exact image of the flop interval.
    """
    trips = _innermost_trip_interval(ir, policy)
    flops = Interval(
        ir.flops_fixed + ir.flops_per_trip * trips.lo,
        ir.flops_fixed + ir.flops_per_trip * trips.hi,
    )
    cycles = device.compute_cycles(
        ir, np.array([flops.lo, flops.hi]), ir.work_group_threads
    )
    return Interval(float(cycles[0]), float(cycles[1]))


def _memory_extremes(device: Device) -> Tuple[float, float, float, float]:
    """(min_bw, max_bw, min_latency, max_latency) over the hierarchy.

    ``stream_bandwidth`` always returns some level's (or DRAM's)
    bandwidth and ``gather_latency``/``gather_latency_mixed`` are convex
    combinations of level latencies, so the hierarchy extremes bound any
    working set the data might produce.
    """
    levels = device.memory.levels + (device.memory.dram,)
    bws = [level.bytes_per_cycle for level in levels]
    lats = [level.latency_cycles for level in levels]
    return min(bws), max(bws), min(lats), max(lats)


def _resolved_space(ir: KernelIR, access: MemoryAccess) -> MemorySpace:
    """Memory space after IR placements (default: global)."""
    placements = dict(ir.placements)
    return MemorySpace(placements.get(access.buffer, "global"))


def _cpu_access_intervals(
    access: MemoryAccess,
    useful: Interval,
    ir: KernelIR,
    device: Device,
) -> Tuple[Interval, Interval, Optional[str]]:
    """(bandwidth, latency) intervals of one access site on the CPU."""
    memory = device.memory
    spec = memory._spec
    min_bw, max_bw, min_lat, max_lat = _memory_extremes(device)
    pattern = access.pattern
    width = ir.vector_width
    irregular = pattern is AccessPattern.GATHER or ir.divergence > 0
    if width > 1 and irregular:
        pack = 1.0 + spec.simd_pack_overhead * (width - 1) * (0.5 + ir.divergence)
    else:
        pack = 1.0
    elems = useful.scale(1.0 / ELEM_BYTES)

    if pattern in (AccessPattern.UNIT_STRIDE, AccessPattern.COALESCED):
        bw = Interval(useful.lo * pack / max_bw, useful.hi * pack / min_bw)
        return bw, ZERO, "stream working set unknown"

    if pattern is AccessPattern.STRIDED:
        amp = memory.stride_amplification(access.stride_bytes)
        bw = Interval(
            useful.lo * amp * pack / max_bw, useful.hi * amp * pack / min_bw
        )
        if access.stride_bytes >= memory.line_bytes:
            scale = pack / (2.0 * spec.gather_mlp)
            lat = Interval(elems.lo * min_lat * scale, elems.hi * max_lat * scale)
        else:
            lat = ZERO
        return bw, lat, "strided working set unknown"

    if pattern is AccessPattern.GATHER:
        bw = Interval(useful.lo * pack / max_bw, useful.hi * pack / min_bw)
        scale = pack / spec.gather_mlp
        lat = Interval(elems.lo * min_lat * scale, elems.hi * max_lat * scale)
        return bw, lat, "gather hit rates unknown"

    if pattern is AccessPattern.BROADCAST:
        bw = useful.scale(1.0 / (4.0 * memory.levels[0].bytes_per_cycle))
        return bw, ZERO, None

    raise AssertionError(f"unhandled access pattern {pattern!r}")


def _gpu_access_intervals(
    access: MemoryAccess,
    useful: Interval,
    ir: KernelIR,
    device: Device,
) -> Tuple[Interval, Interval, Optional[str]]:
    """(bandwidth, latency) intervals of one access site on the GPU."""
    memory = device.memory
    spec = memory._spec
    min_bw, max_bw, min_lat, max_lat = _memory_extremes(device)
    pattern = access.pattern
    space = _resolved_space(ir, access)
    elems = useful.scale(1.0 / ELEM_BYTES)

    if space is MemorySpace.TEXTURE:
        stream_scale = 1.0 / spec.texture_stream_scale
    elif space is MemorySpace.CONSTANT:
        stream_scale = 8.0
    else:
        stream_scale = 1.0

    def stream(amp_lo: float, amp_hi: float) -> Interval:
        return Interval(
            useful.lo * amp_lo * stream_scale / max_bw,
            useful.hi * amp_hi * stream_scale / min_bw,
        )

    if pattern is AccessPattern.COALESCED:
        return stream(1.0, 1.0), ZERO, "stream working set unknown"

    if pattern is AccessPattern.UNIT_STRIDE:
        max_amp = spec.uncoalesced_amplification
        if access.stride_evaluator is not None:
            return stream(1.0, max_amp), ZERO, "dynamic stride unknown"
        return stream(max_amp, max_amp), ZERO, "stream working set unknown"

    if pattern is AccessPattern.STRIDED:
        amp = min(
            memory.stride_amplification(access.stride_bytes),
            spec.uncoalesced_amplification,
        )
        return stream(amp, amp), ZERO, "strided working set unknown"

    if pattern is AccessPattern.GATHER:
        if space is MemorySpace.TEXTURE:
            hiding, amp = spec.texture_latency_hiding, 2.0
        elif space is MemorySpace.CONSTANT:
            hiding, amp = 4.0, 4.0
        else:
            hiding, amp = spec.latency_hiding, 4.0
        hiding /= 1.0 + ir.divergence
        if ir.prefetch:
            hiding *= 1.5 if space is not MemorySpace.TEXTURE else 1.05
        bw = Interval(useful.lo * amp / max_bw, useful.hi * amp / min_bw)
        lat = Interval(elems.lo * min_lat / hiding, elems.hi * max_lat / hiding)
        return bw, lat, "gather hit rates unknown"

    if pattern is AccessPattern.BROADCAST:
        if space is MemorySpace.CONSTANT:
            return useful.scale(1.0 / 256.0), ZERO, None
        clamp_bw = float(memory.stream_bandwidth(64.0 * 1024.0))
        best_bw = memory.levels[0].bytes_per_cycle
        bw = Interval(useful.lo / best_bw, useful.hi / clamp_bw)
        return bw, ZERO, "broadcast working set unknown"

    raise AssertionError(f"unhandled access pattern {pattern!r}")


def variant_cost_bound(
    variant: KernelVariant,
    device_kind: str,
    policy: WideningPolicy = WideningPolicy(),
) -> VariantCostBound:
    """Sound cost interval for one variant on one device kind.

    Unknown device kinds degrade to the unbounded interval — still sound,
    never able to prune.  Results are memoized by structural IR hash.
    """
    key = (
        ir_hash(variant.ir),
        device_kind,
        policy,
        variant.name,
        variant.wa_factor,
    )
    hit = _BOUND_CACHE.get(key)
    if hit is not None:
        return hit

    device = device_for_kind(device_kind)
    if device is None:
        bound = VariantCostBound(
            variant=variant.name,
            device_kind=device_kind,
            compute=UNBOUNDED,
            bandwidth=UNBOUNDED,
            exposed=UNBOUNDED,
            fixed_cycles=0.0,
            wa_factor=variant.wa_factor,
            widened=(f"unknown device kind {device_kind!r}",),
        )
        _BOUND_CACHE[key] = bound
        return bound

    ir = variant.ir
    widened = []
    if ir.has_data_dependent_bounds:
        widened.append("data-dependent loop bounds")

    access_fn = _cpu_access_intervals if device.kind == "cpu" else _gpu_access_intervals
    bandwidth = ZERO
    latency = ZERO
    atomics = ZERO
    for access in ir.accesses:
        trips = _access_trip_interval(ir, access, policy)
        useful = trips.scale(access.bytes_per_trip)
        bw, lat, reason = access_fn(access, useful, ir, device)
        bandwidth = bandwidth + bw
        latency = latency + lat
        if reason is not None and reason not in widened:
            widened.append(reason)
        if access.atomic is AtomicKind.GLOBAL:
            atomics = atomics + useful.scale(
                device.atomic_cycles_per_op() / ELEM_BYTES
            )

    bookkeeping = _bookkeeping_interval(ir, device, policy)
    compute = _compute_interval(ir, device, policy)
    exposed = latency + atomics + bookkeeping
    fixed = (
        device.scratchpad_cycles_per_group(ir)
        + device.spec.workgroup_dispatch_overhead
    )
    bound = VariantCostBound(
        variant=variant.name,
        device_kind=device.kind,
        compute=compute,
        bandwidth=bandwidth,
        exposed=exposed,
        fixed_cycles=float(fixed),
        wa_factor=variant.wa_factor,
        widened=tuple(widened),
    )
    _BOUND_CACHE[key] = bound
    return bound
