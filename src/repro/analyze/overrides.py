"""Configured rule-severity adjustments and the pyproject loader.

The suppression baseline lives in two equivalent places:

* programmatically, as :class:`~repro.config.RuleAdjustment` entries on
  ``ReproConfig.analyze.rules``;
* declaratively, as a ``[tool.repro.analyze]`` table in ``pyproject.toml``::

      [tool.repro.analyze]
      dominance = true
      dominance_margin = 1.5
      data_trip_bounds = [0, 4096]

      [[tool.repro.analyze.rules]]
      id = "DYSEL-SIG-004"
      action = "suppress"        # or "downgrade"
      pools = ["axpy"]           # label substrings; omit for all pools

Unknown rule ids are configuration errors (validated against
:mod:`repro.analyze.registry`), so a typo cannot silently suppress
nothing.  Parsing needs :mod:`tomllib` (Python ≥ 3.11); on older
interpreters the loader degrades to the programmatic settings and reports
why.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Sequence, Tuple

from ..config import AnalyzeSettings, RuleAdjustment
from ..errors import ConfigurationError
from .diagnostics import Diagnostic, Severity
from .registry import RULE_IDS, find_rule

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.10 CI only
    tomllib = None


def validate_settings(settings: AnalyzeSettings) -> AnalyzeSettings:
    """Check every configured adjustment names a registered rule.

    Returns the settings unchanged on success; raises
    :class:`~repro.errors.ConfigurationError` naming every unknown id.
    """
    unknown = sorted(
        {adj.rule_id for adj in settings.rules if find_rule(adj.rule_id) is None}
    )
    if unknown:
        raise ConfigurationError(
            f"unknown rule id(s) in analyze settings: {unknown}; "
            f"registered ids: {list(RULE_IDS)}"
        )
    return settings


def apply_adjustments(
    diagnostics: Sequence[Diagnostic],
    pool_label: str,
    settings: AnalyzeSettings,
) -> Tuple[Diagnostic, ...]:
    """Apply configured suppressions/downgrades to a pool's findings.

    Suppressed diagnostics are dropped; downgrades turn ERROR findings
    into WARNING (non-ERROR findings are left alone — there is nothing
    below to demote them to that the verbosity filter does not already
    handle).
    """
    if not settings.rules:
        return tuple(diagnostics)
    adjusted = []
    for diagnostic in diagnostics:
        keep = diagnostic
        for adjustment in settings.rules:
            if adjustment.rule_id != diagnostic.rule_id:
                continue
            if not adjustment.matches(pool_label):
                continue
            if adjustment.action == "suppress":
                keep = None
                break
            if keep.severity is Severity.ERROR:
                keep = keep.downgraded("configured downgrade")
        if keep is not None:
            adjusted.append(keep)
    return tuple(adjusted)


def load_pyproject_settings(
    pyproject: Optional[Path] = None,
    base: Optional[AnalyzeSettings] = None,
) -> AnalyzeSettings:
    """Settings from ``[tool.repro.analyze]``, merged over ``base``.

    Missing file, missing table, or a pre-3.11 interpreter (no
    :mod:`tomllib`; this repo adds no third-party TOML dependency) all
    return ``base`` unchanged.  A present table is validated strictly:
    unknown keys, malformed entries and unknown rule ids raise
    :class:`~repro.errors.ConfigurationError`.
    """
    settings = base if base is not None else AnalyzeSettings()
    path = pyproject if pyproject is not None else Path("pyproject.toml")
    if tomllib is None or not path.is_file():
        return settings
    with path.open("rb") as handle:
        document = tomllib.load(handle)
    table = document.get("tool", {}).get("repro", {}).get("analyze")
    if table is None:
        return settings

    known = {"dominance", "dominance_margin", "data_trip_bounds", "rules"}
    unknown_keys = sorted(set(table) - known)
    if unknown_keys:
        raise ConfigurationError(
            f"[tool.repro.analyze] has unknown key(s) {unknown_keys}; "
            f"known keys: {sorted(known)}"
        )

    changes = {}
    if "dominance" in table:
        changes["dominance"] = bool(table["dominance"])
    if "dominance_margin" in table:
        changes["dominance_margin"] = float(table["dominance_margin"])
    if "data_trip_bounds" in table:
        bounds = table["data_trip_bounds"]
        if not isinstance(bounds, (list, tuple)) or len(bounds) != 2:
            raise ConfigurationError(
                "[tool.repro.analyze] data_trip_bounds must be a "
                f"two-element list, got {bounds!r}"
            )
        changes["data_trip_bounds"] = (float(bounds[0]), float(bounds[1]))
    if "rules" in table:
        adjustments = []
        for entry in table["rules"]:
            if not isinstance(entry, dict) or "id" not in entry:
                raise ConfigurationError(
                    "[[tool.repro.analyze.rules]] entries need an 'id' "
                    f"key, got {entry!r}"
                )
            extra = sorted(set(entry) - {"id", "action", "pools"})
            if extra:
                raise ConfigurationError(
                    f"rule adjustment {entry['id']!r} has unknown "
                    f"key(s) {extra}"
                )
            adjustments.append(
                RuleAdjustment(
                    rule_id=str(entry["id"]),
                    action=str(entry.get("action", "suppress")),
                    pools=tuple(str(p) for p in entry.get("pools", ())),
                )
            )
        changes["rules"] = settings.rules + tuple(adjustments)

    merged = dataclasses.replace(settings, **changes)
    return validate_settings(merged)
