"""``python -m repro.analyze`` — static kernel-pool verification CLI."""

from .cli import main

main()
