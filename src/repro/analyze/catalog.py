"""Catalog of the example/workload pools the CLI verifies.

``python -m repro.analyze --all-examples`` walks this catalog: every
benchmark family contributes its case-study pools at reduced sizes (the
verifier only reads IR and geometry, so small inputs verify the same
facts the full-size experiments run with).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..config import DEFAULT_CONFIG, ReproConfig
from ..device.cpu import make_cpu
from ..device.gpu import make_gpu
from ..workloads import (
    cutcp,
    histogram,
    kmeans,
    particle_filter,
    sgemm,
    spmv_csr,
    spmv_jds,
    stencil,
)
from ..workloads.base import BenchmarkCase


@dataclass(frozen=True)
class CatalogEntry:
    """One verifiable pool: the case plus its device parallelism."""

    case: BenchmarkCase
    compute_units: int
    #: Which simulated device the case targets (``"cpu"`` or ``"gpu"``) —
    #: consumers that *run* the pool (``python -m repro.obs``) rebuild
    #: the matching device from this.
    device_kind: str = "cpu"

    @property
    def label(self) -> str:
        """Report label (the case name)."""
        return self.case.name

    def make_device(self, config: ReproConfig):
        """Build the device this entry's case targets."""
        factory = make_gpu if self.device_kind == "gpu" else make_cpu
        return factory(config)


#: Case builders, deferred so a single broken workload doesn't prevent
#: verifying the rest.  Each returns (case, device kind).
_BUILDERS: Tuple[Tuple[str, Callable[[ReproConfig], Tuple[BenchmarkCase, str]]], ...] = (
    ("sgemm/vectorization", lambda c: (sgemm.vectorization_case(128, c), "cpu")),
    ("sgemm/schedules", lambda c: (sgemm.schedule_case(128, c), "cpu")),
    ("sgemm/mixed", lambda c: (sgemm.mixed_case("cpu", 128, c), "cpu")),
    (
        "spmv-csr/input-dependent",
        lambda c: (spmv_csr.input_dependent_case("cpu", "random", 2048, c), "cpu"),
    ),
    (
        "spmv-csr/placement",
        lambda c: (spmv_csr.placement_case(2048, c), "gpu"),
    ),
    (
        "spmv-jds/vectorization",
        lambda c: (spmv_jds.vectorization_case(2048, c), "cpu"),
    ),
    (
        "stencil/schedules",
        lambda c: (stencil.schedule_case((64, 64, 8), c), "cpu"),
    ),
    (
        "stencil/mixed",
        lambda c: (stencil.mixed_case("cpu", (64, 64, 8), c), "cpu"),
    ),
    ("kmeans/schedules", lambda c: (kmeans.schedule_case(8192, c), "cpu")),
    (
        "cutcp/mixed",
        lambda c: (cutcp.mixed_case("cpu", (16, 16, 8), 2000, c), "cpu"),
    ),
    (
        "histogram/swap",
        lambda c: (histogram.swap_case("uniform", 1 << 17, c), "gpu"),
    ),
    (
        "particle-filter/placement",
        lambda c: (particle_filter.placement_case(4000, c), "gpu"),
    ),
)


def example_entries(
    config: ReproConfig = DEFAULT_CONFIG,
) -> List[Tuple[str, CatalogEntry]]:
    """Build every example pool (label, entry), small sizes throughout."""
    devices = {
        "cpu": make_cpu(config).spec.compute_units,
        "gpu": make_gpu(config).spec.compute_units,
    }
    entries: List[Tuple[str, CatalogEntry]] = []
    for label, build in _BUILDERS:
        case, device_kind = build(config)
        entries.append(
            (
                label,
                CatalogEntry(
                    case=case,
                    compute_units=devices[device_kind],
                    device_kind=device_kind,
                ),
            )
        )
    return entries
