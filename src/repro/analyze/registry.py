"""Authoritative machine-readable catalog of every verifier rule.

Single source of truth for rule ids: the CLI's ``--explain`` and JSON
report render from here, the docs reference it, and the test suite
asserts that every diagnostic a pass emits carries a registered id with
the registered default severity — so the catalog cannot drift from the
emissions the way a docstring table can.

A rule's *default* severity is what the pass emits before programmer
overrides (:class:`~repro.analyze.passes.VerifyOverrides`) or configured
adjustments (``[tool.repro.analyze]``) downgrade it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .diagnostics import Severity


@dataclass(frozen=True)
class Rule:
    """One stable verifier rule."""

    rule_id: str
    pass_name: str
    severity: Severity
    summary: str
    remedy: str

    def as_dict(self) -> Dict[str, str]:
        """JSON-ready rendering (``--format json``)."""
        return {
            "id": self.rule_id,
            "pass": self.pass_name,
            "severity": self.severity.value,
            "summary": self.summary,
            "remedy": self.remedy,
        }

    def format(self) -> str:
        """Multi-line human rendering (``--explain``)."""
        return "\n".join(
            (
                f"{self.rule_id} ({self.severity.value.upper()}, "
                f"pass {self.pass_name!r})",
                f"  summary: {self.summary}",
                f"  remedy:  {self.remedy or '—'}",
            )
        )


#: Every rule the verifier can emit, grouped by pass, id order.
RULES: Tuple[Rule, ...] = (
    Rule(
        "DYSEL-MODE-001",
        "mode-eligibility",
        Severity.ERROR,
        "global atomics outlaw fully/hybrid profiling: profiled slices "
        "would commit non-disjoint outputs (paper Table 1)",
        "use mode 'swap_sync', or assert the atomics are race-free across "
        "work-groups via the launch override",
    ),
    Rule(
        "DYSEL-MODE-002",
        "mode-eligibility",
        Severity.ERROR,
        "overlapping work-group output ranges force swap-based profiling",
        "use mode 'swap_sync' (private per-candidate outputs)",
    ),
    Rule(
        "DYSEL-MODE-003",
        "mode-eligibility",
        Severity.ERROR,
        "output range varies across variants; only swap-based profiling "
        "keeps candidates comparable",
        "use mode 'swap_sync' (private per-candidate outputs)",
    ),
    Rule(
        "DYSEL-MODE-004",
        "mode-eligibility",
        Severity.ERROR,
        "non-uniform workload outlaws fully-productive profiling: slices "
        "would be unequal work",
        "use mode 'hybrid_async', or assert uniformity via the launch "
        "override",
    ),
    Rule(
        "DYSEL-ASYNC-001",
        "async-legality",
        Severity.ERROR,
        "swap-based profiling cannot run asynchronously: the final output "
        "space is unknown until profiling completes",
        "use mode 'swap_sync'",
    ),
    Rule(
        "DYSEL-ASYNC-002",
        "async-legality",
        Severity.WARNING,
        "global atomic commits interleave with eager chunks dispatched "
        "during asynchronous profiling; commit order becomes "
        "timing-dependent",
        "prefer the synchronous flow for atomic kernels",
    ),
    Rule(
        "DYSEL-SANDBOX-001",
        "sandbox-capacity",
        Severity.ERROR,
        "the kernel declares no output buffers; hybrid/swap profiling has "
        "nothing to sandbox",
        "declare outputs via ArgSpec(is_output=True), or use mode 'fully'",
    ),
    Rule(
        "DYSEL-SANDBOX-002",
        "sandbox-capacity",
        Severity.ERROR,
        "outputs written by variants are missing from the sandbox index; "
        "non-committing candidates would corrupt them",
        "extend sandbox_index in DySelAddKernel to cover every written "
        "output",
    ),
    Rule(
        "DYSEL-SANDBOX-003",
        "sandbox-capacity",
        Severity.INFO,
        "sandbox space accounting: K variants need at most K-1 (hybrid) / "
        "K (swap) private output copies",
        "informational only; shrink the pool or the output footprint if "
        "the copies exceed the device budget",
    ),
    Rule(
        "DYSEL-SIG-001",
        "signature-consistency",
        Severity.ERROR,
        "a variant writes a buffer the signature does not declare as an "
        "output; sandboxing cannot isolate undeclared writes",
        "declare the buffers as outputs (ArgSpec(is_output=True))",
    ),
    Rule(
        "DYSEL-SIG-002",
        "signature-consistency",
        Severity.ERROR,
        "variants write different output sets; stitching fully-productive "
        "slices would leave outputs partially written",
        "use a partial mode, or align the variants' outputs",
    ),
    Rule(
        "DYSEL-SIG-003",
        "signature-consistency",
        Severity.WARNING,
        "a declared output is never written in any variant's IR; the "
        "analyzed write set may be incomplete",
        "add the missing MemoryAccess(is_write=True) site or drop the "
        "output declaration",
    ),
    Rule(
        "DYSEL-SIG-004",
        "signature-consistency",
        Severity.INFO,
        "IR work-group threads disagree with the variant's registered "
        "work-group size; cost-model efficiency rules may misestimate",
        "align KernelIR.work_group_threads with the variant's "
        "work_group_size",
    ),
    Rule(
        "DYSEL-SIG-005",
        "signature-consistency",
        Severity.WARNING,
        "static per-unit output footprints diverge after wa-factor "
        "normalization; variants may not compute the same output volume",
        "check bytes_per_trip on the write sites, or the wa_factor "
        "registered for the coarsened variants",
    ),
    Rule(
        "DYSEL-SAFEPOINT-001",
        "safe-point",
        Severity.ERROR,
        "no fair profiling slice fits this workload",
        "grow the workload, reduce coprime wa_factors, or launch with "
        "profiling=False",
    ),
    Rule(
        "DYSEL-SAFEPOINT-002",
        "safe-point",
        Severity.WARNING,
        "near-coprime work assignment factors make the fair profiling "
        "slice huge",
        "register wa_factors with small pairwise LCMs (powers of two)",
    ),
    Rule(
        "DYSEL-SAFEPOINT-003",
        "safe-point",
        Severity.INFO,
        "single-variant pool; the launch policy skips profiling entirely",
        "informational only; add variants to the pool if dynamic "
        "selection is wanted for this kernel",
    ),
    Rule(
        "DYSEL-SAFEPOINT-004",
        "safe-point",
        Severity.ERROR,
        "K fully-productive slices exceed the workload",
        "use a partial mode (one shared slice), or grow the workload",
    ),
    Rule(
        "DYSEL-RACE-001",
        "write-set-race",
        Severity.ERROR,
        "write sets of profiled slices and async eager chunks may "
        "overlap; safe-point geometry does not separate them",
        "use the synchronous flow, or mode 'swap_sync'",
    ),
    Rule(
        "DYSEL-COST-001",
        "cost-bound",
        Severity.INFO,
        "static cost interval computed for a variant on the target device "
        "kind (cycles per workload unit)",
        "informational only; tighten [tool.repro.analyze] data_trip_bounds "
        "if the interval is wider than the workload warrants",
    ),
    Rule(
        "DYSEL-COST-002",
        "cost-bound",
        Severity.INFO,
        "the cost interval was widened: data-dependent loop bounds, "
        "gather hit rates or dynamic strides are unknown statically",
        "tighten AnalyzeSettings.data_trip_bounds, or accept the "
        "conservative interval",
    ),
    Rule(
        "DYSEL-COST-003",
        "cost-bound",
        Severity.WARNING,
        "the cost interval is unbounded (unknown device kind or unbounded "
        "widening); dominance pruning cannot act on this variant",
        "analyze on a known device kind ('cpu'/'gpu') and bound the "
        "widening policy",
    ),
    Rule(
        "DYSEL-DOM-001",
        "dominance",
        Severity.INFO,
        "variant is statically dominated: its best case exceeds a rival's "
        "worst case by the safety margin; pruned from the micro-profiling "
        "candidate set (never from the correctness pool)",
        "drop the variant from the pool, or keep it as a fallback only",
    ),
    Rule(
        "DYSEL-DOM-002",
        "dominance",
        Severity.WARNING,
        "dominance pruning left a single profiling candidate; selection "
        "degenerates to the static choice and micro-profiling is skipped",
        "raise AnalyzeSettings.dominance_margin if runtime measurement is "
        "still wanted",
    ),
)

_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}

#: All registered rule ids, catalog order.
RULE_IDS: Tuple[str, ...] = tuple(rule.rule_id for rule in RULES)


def find_rule(rule_id: str) -> Optional[Rule]:
    """Look up a rule by id (None when unregistered)."""
    return _BY_ID.get(rule_id)


def explain(rule_id: str) -> Rule:
    """Look up a rule by id, raising ``KeyError`` with suggestions."""
    rule = _BY_ID.get(rule_id)
    if rule is None:
        prefix = rule_id.rsplit("-", 1)[0]
        near = [r for r in RULE_IDS if r.startswith(prefix)] or list(RULE_IDS)
        raise KeyError(
            f"unknown rule id {rule_id!r}; known ids include {near[:6]}"
        )
    return rule
