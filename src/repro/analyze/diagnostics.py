"""Structured diagnostics for the static kernel-pool verifier.

Every finding a verifier pass emits is a :class:`Diagnostic`: a stable
rule id (``DYSEL-MODE-001`` style), a severity, the source variant (when
attributable), a human-readable message, and a fix hint.  A diagnostic may
be scoped to specific (profiling mode, orchestration flow) combinations —
"global atomics" only outlaws fully/hybrid profiling, not swap — or apply
pool-wide (scope ``None``).

:class:`VerificationReport` aggregates a pool's diagnostics into a
legality matrix over all (mode, flow) combinations, which is what the
launch gate and the CLI consume: a combination is illegal iff at least one
ERROR-severity diagnostic covers it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..modes import OrchestrationFlow, ProfilingMode

#: One (profiling mode, orchestration flow) combination.
Combo = Tuple[ProfilingMode, OrchestrationFlow]

#: Every launchable combination, cheapest profiling mode first (Table 1's
#: space column: fully = 0 copies, hybrid = K−1, swap = K).
ALL_COMBOS: Tuple[Combo, ...] = tuple(
    (mode, flow)
    for mode in (ProfilingMode.FULLY, ProfilingMode.HYBRID, ProfilingMode.SWAP)
    for flow in (OrchestrationFlow.ASYNC, OrchestrationFlow.SYNC)
)


def combos(
    modes: Optional[Sequence[ProfilingMode]] = None,
    flows: Optional[Sequence[OrchestrationFlow]] = None,
) -> FrozenSet[Combo]:
    """The combination set covering the given modes × flows.

    ``None`` means "all" on that axis; ``combos()`` is the full matrix.
    """
    mode_set = tuple(modes) if modes is not None else tuple(ProfilingMode)
    flow_set = tuple(flows) if flows is not None else tuple(OrchestrationFlow)
    return frozenset((m, f) for m in mode_set for f in flow_set)


class Severity(enum.Enum):
    """How serious a finding is for launch legality."""

    ERROR = "error"  # the covered (mode, flow) combos must not launch
    WARNING = "warning"  # legal but risky / conservative-override territory
    INFO = "info"  # observability only

    @property
    def rank(self) -> int:
        """Sort key: most severe first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding about a kernel pool.

    Parameters
    ----------
    rule_id:
        Stable identifier (``DYSEL-<PASS>-<NNN>``); tests and tooling key
        on it, so it never changes meaning across releases.
    severity:
        :class:`Severity`; only ERROR affects legality.
    message:
        What is wrong, naming the offending objects.
    variant:
        Source variant name, or ``None`` for pool-level findings.
    hint:
        Actionable fix suggestion ("use mode 'swap_sync'", ...).
    scope:
        The (mode, flow) combinations the finding covers; ``None`` means
        the whole matrix (pool-wide).
    """

    rule_id: str
    severity: Severity
    message: str
    variant: Optional[str] = None
    hint: str = ""
    scope: Optional[FrozenSet[Combo]] = None

    def covers(self, mode: ProfilingMode, flow: OrchestrationFlow) -> bool:
        """Whether this finding applies to the given combination."""
        return self.scope is None or (mode, flow) in self.scope

    def downgraded(self, note: str) -> "Diagnostic":
        """A WARNING copy of this diagnostic (programmer override path)."""
        return replace(
            self,
            severity=Severity.WARNING,
            message=f"{self.message} [overridden: {note}]",
        )

    def format(self) -> str:
        """One-line rendering: ``ERROR DYSEL-MODE-001 [variant] message``."""
        where = f" [{self.variant}]" if self.variant else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return (
            f"{self.severity.value.upper():7s} {self.rule_id}{where}: "
            f"{self.message}{hint}"
        )


@dataclass(frozen=True)
class VerificationReport:
    """Verdict of the pass manager for one kernel pool."""

    pool: str
    diagnostics: Tuple[Diagnostic, ...] = ()
    #: The pool's compiler-recommended profiling mode (for demotion and
    #: the CLI's default verdict).
    recommended_mode: Optional[ProfilingMode] = None

    # ------------------------------------------------------------------
    # Severity slices
    # ------------------------------------------------------------------

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        """ERROR findings only."""
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        """WARNING findings only."""
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    def by_rule(self, rule_id: str) -> Tuple[Diagnostic, ...]:
        """Findings with a given rule id."""
        return tuple(d for d in self.diagnostics if d.rule_id == rule_id)

    # ------------------------------------------------------------------
    # Legality matrix
    # ------------------------------------------------------------------

    def blocking(
        self, mode: ProfilingMode, flow: OrchestrationFlow
    ) -> Tuple[Diagnostic, ...]:
        """ERROR findings that outlaw a (mode, flow) combination."""
        return tuple(d for d in self.errors if d.covers(mode, flow))

    def is_legal(self, mode: ProfilingMode, flow: OrchestrationFlow) -> bool:
        """Whether a combination may launch."""
        return not self.blocking(mode, flow)

    def legal_combos(self) -> Tuple[Combo, ...]:
        """All legal combinations, cheapest mode first."""
        return tuple(c for c in ALL_COMBOS if self.is_legal(*c))

    def cheapest_legal(
        self, flow: Optional[OrchestrationFlow] = None
    ) -> Optional[Combo]:
        """Cheapest legal combination, optionally pinned to one flow."""
        for mode, combo_flow in ALL_COMBOS:
            if flow is not None and combo_flow is not flow:
                continue
            if self.is_legal(mode, combo_flow):
                return (mode, combo_flow)
        return None

    def demote(
        self, mode: ProfilingMode, flow: OrchestrationFlow
    ) -> Optional[Combo]:
        """Nearest legal combination for an illegal request.

        Preference order: keep the requested mode and fall back to the
        synchronous flow (the paper's Table 1 swap fallback); then the
        cheapest legal mode under the requested flow; then the cheapest
        legal mode under any flow.  ``None`` when nothing is legal.
        """
        if self.is_legal(mode, flow):
            return (mode, flow)
        if flow is OrchestrationFlow.ASYNC and self.is_legal(
            mode, OrchestrationFlow.SYNC
        ):
            return (mode, OrchestrationFlow.SYNC)
        return self.cheapest_legal(flow) or self.cheapest_legal()

    @property
    def default_combo(self) -> Optional[Combo]:
        """What launching with pool defaults resolves to.

        The runtime's defaults are the recommended mode under the
        asynchronous flow, demoted if illegal — the verdict the CLI
        reports per pool.
        """
        if self.recommended_mode is None:
            return self.cheapest_legal()
        return self.demote(self.recommended_mode, OrchestrationFlow.ASYNC)

    @property
    def ok(self) -> bool:
        """Whether the pool can launch at all with its defaults."""
        return self.default_combo is not None

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def explain(self, mode: ProfilingMode, flow: OrchestrationFlow) -> str:
        """Full refusal text for one combination (gate error message)."""
        blocking = self.blocking(mode, flow)
        header = (
            f"kernel {self.pool!r}: illegal launch "
            f"(mode={mode.value}, flow={flow.value}); "
            f"{len(blocking)} blocking finding(s)"
        )
        lines = [header]
        lines += [f"  {d.format()}" for d in blocking]
        legal = self.legal_combos()
        if legal:
            lines.append(
                "  legal combinations: "
                + ", ".join(f"{m.value}_{f.value}" for m, f in legal)
            )
        else:
            lines.append("  no legal combination exists for this pool")
        return "\n".join(lines)

    def format(self, verbose: bool = False) -> str:
        """Render the whole report (CLI output).

        The matrix marks each (mode, flow) cell legal/illegal with the
        blocking rule ids; diagnostics follow, most severe first.
        """
        lines = [f"pool {self.pool!r}:"]
        for mode, flow in ALL_COMBOS:
            blocking = self.blocking(mode, flow)
            cell = f"  {mode.value}_{flow.value:5s} "
            if blocking:
                rules = ",".join(sorted({d.rule_id for d in blocking}))
                lines.append(f"{cell} ILLEGAL ({rules})")
            else:
                lines.append(f"{cell} ok")
        shown = sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.rule_id, d.variant or ""),
        )
        if not verbose:
            shown = [d for d in shown if d.severity is not Severity.INFO]
        lines += [f"  {d.format()}" for d in shown]
        combo = self.default_combo
        if combo is not None:
            lines.append(
                f"  default launch: {combo[0].value}_{combo[1].value}"
            )
        else:
            lines.append("  default launch: NONE (pool cannot profile)")
        return "\n".join(lines)


def merge_reports(
    reports: Sequence[VerificationReport],
) -> Dict[str, VerificationReport]:
    """Index reports by pool name (CLI convenience)."""
    indexed: Dict[str, VerificationReport] = {}
    for report in reports:
        indexed[report.pool] = report
    return indexed
