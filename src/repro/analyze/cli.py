"""Command line interface: ``python -m repro.analyze``.

Verifies kernel pools before any launch and renders the legality matrix
with structured rule-id diagnostics.  Exit status:

* ``0`` — every verified pool can launch with its defaults (and with the
  explicitly requested ``--mode``/``--flow`` combination, when given);
* ``1`` — at least one pool has blocking ERROR findings for the checked
  combination(s);
* ``2`` — usage error.

Per-combination ERROR findings on combinations a pool does not launch by
default (e.g. a global-atomic kernel under ``fully``) are *flagged* in
the matrix but do not fail the run — they are exactly what the verifier
exists to surface, and the runtime gate demotes or refuses them.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from ..config import ReproConfig
from ..modes import OrchestrationFlow, ProfilingMode
from .catalog import CatalogEntry, example_entries
from .manager import PoolVerifier
from .passes import VerifyOverrides


def _parse_combo(
    mode: Optional[str], flow: Optional[str]
) -> Optional[Tuple[ProfilingMode, OrchestrationFlow]]:
    """Resolve --mode/--flow flags into one combo (both or neither)."""
    if mode is None and flow is None:
        return None
    if mode is None or flow is None:
        print("--mode and --flow must be given together", file=sys.stderr)
        raise SystemExit(2)
    try:
        return ProfilingMode(mode), OrchestrationFlow(flow)
    except ValueError:
        print(
            f"unknown mode/flow {mode!r}/{flow!r}; modes: "
            f"{[m.value for m in ProfilingMode]}, flows: "
            f"{[f.value for f in OrchestrationFlow]}",
            file=sys.stderr,
        )
        raise SystemExit(2)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Statically verify DySel kernel pools before launch.",
    )
    parser.add_argument(
        "--all-examples",
        action="store_true",
        help="verify every example/workload pool (default when no filter "
        "is given)",
    )
    parser.add_argument(
        "--pool",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="verify only pools whose label contains SUBSTRING "
        "(repeatable)",
    )
    parser.add_argument(
        "--mode",
        choices=[m.value for m in ProfilingMode],
        help="additionally require this profiling mode to be legal",
    )
    parser.add_argument(
        "--flow",
        choices=[f.value for f in OrchestrationFlow],
        help="orchestration flow for --mode",
    )
    parser.add_argument(
        "--override-atomics",
        action="store_true",
        help="apply the programmer override: assert global atomics are "
        "race-free across work-groups (downgrades DYSEL-MODE-001)",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="include INFO findings in the output",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list catalog pool labels and exit",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    config = ReproConfig()
    entries = example_entries(config)
    if args.list:
        for label, entry in entries:
            print(f"{label}  ({entry.case.pool.name}, "
                  f"{len(entry.case.pool.variants)} variants)")
        return 0
    if args.pool:
        entries = [
            (label, entry)
            for label, entry in entries
            if any(sub in label for sub in args.pool)
        ]
        if not entries:
            print(f"no pools match {args.pool}", file=sys.stderr)
            return 2

    combo = _parse_combo(args.mode, args.flow)
    overrides = VerifyOverrides(atomics_race_free=args.override_atomics)
    verifier = PoolVerifier()
    failures: List[str] = []

    for label, entry in entries:
        report = verifier.verify(
            entry.case.pool,
            compute_units=entry.compute_units,
            workload_units=entry.case.workload_units,
            overrides=overrides,
        )
        print(f"== {label} ==")
        print(report.format(verbose=args.verbose))
        if not report.ok:
            failures.append(f"{label}: no legal launch with pool defaults")
        if combo is not None and not report.is_legal(*combo):
            rules = ",".join(
                sorted({d.rule_id for d in report.blocking(*combo)})
            )
            failures.append(
                f"{label}: {combo[0].value}_{combo[1].value} is illegal "
                f"({rules})"
            )
        print()

    checked = len(entries)
    if failures:
        print(f"FAIL: {len(failures)} blocking finding(s) over "
              f"{checked} pool(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"OK: {checked} pool(s) verified")
    return 0


def main() -> None:
    """Console entry (exits the process)."""
    raise SystemExit(run())
