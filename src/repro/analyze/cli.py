"""Command line interface: ``python -m repro.analyze``.

Verifies kernel pools before any launch and renders the legality matrix
with structured rule-id diagnostics.  Exit status:

* ``0`` — every verified pool can launch with its defaults (and with the
  explicitly requested ``--mode``/``--flow`` combination, when given);
* ``1`` — at least one pool has blocking ERROR findings for the checked
  combination(s);
* ``2`` — usage error, including ``--pool`` filters that match nothing.

Per-combination ERROR findings on combinations a pool does not launch by
default (e.g. a global-atomic kernel under ``fully``) are *flagged* in
the matrix but do not fail the run — they are exactly what the verifier
exists to surface, and the runtime gate demotes or refuses them.

Beyond verification the CLI renders the rule catalog
(``--explain DYSEL-<PASS>-<NNN>``), static cost intervals with dominance
pruning (``--dominance``), and a machine-readable report
(``--format json``).  Configured severity adjustments from
``[tool.repro.analyze]`` in ``pyproject.toml`` apply unless ``--strict``
ignores them.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import AnalyzeSettings, ReproConfig
from ..errors import ConfigurationError
from ..modes import OrchestrationFlow, ProfilingMode
from .catalog import example_entries
from .diagnostics import VerificationReport
from .dominance import policy_from_settings, pool_cost_bounds
from .manager import PoolVerifier
from .overrides import load_pyproject_settings
from .passes import VerifyOverrides
from .registry import RULES, explain as explain_rule


def _parse_combo(
    mode: Optional[str], flow: Optional[str]
) -> Optional[Tuple[ProfilingMode, OrchestrationFlow]]:
    """Resolve --mode/--flow flags into one combo (both or neither)."""
    if mode is None and flow is None:
        return None
    if mode is None or flow is None:
        print("--mode and --flow must be given together", file=sys.stderr)
        raise SystemExit(2)
    try:
        return ProfilingMode(mode), OrchestrationFlow(flow)
    except ValueError:
        print(
            f"unknown mode/flow {mode!r}/{flow!r}; modes: "
            f"{[m.value for m in ProfilingMode]}, flows: "
            f"{[f.value for f in OrchestrationFlow]}",
            file=sys.stderr,
        )
        raise SystemExit(2)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Statically verify DySel kernel pools before launch.",
    )
    parser.add_argument(
        "--all-examples",
        action="store_true",
        help="verify every example/workload pool (default when no filter "
        "is given)",
    )
    parser.add_argument(
        "--pool",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="verify only pools whose label contains SUBSTRING "
        "(repeatable; a SUBSTRING matching no pool is a usage error)",
    )
    parser.add_argument(
        "--mode",
        choices=[m.value for m in ProfilingMode],
        help="additionally require this profiling mode to be legal",
    )
    parser.add_argument(
        "--flow",
        choices=[f.value for f in OrchestrationFlow],
        help="orchestration flow for --mode",
    )
    parser.add_argument(
        "--override-atomics",
        action="store_true",
        help="apply the programmer override: assert global atomics are "
        "race-free across work-groups (downgrades DYSEL-MODE-001)",
    )
    parser.add_argument(
        "--dominance",
        action="store_true",
        help="run the static cost-bound analysis: render per-variant "
        "cycle intervals and the dominance-pruned candidate set",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE_ID",
        help="print the registry entry for one rule id "
        "(e.g. DYSEL-MODE-001) and exit",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format; json emits one machine-readable document "
        "including the full rule catalog",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="ignore configured [tool.repro.analyze] severity "
        "adjustments (suppressions/downgrades) from pyproject.toml",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="include INFO findings in the output",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list catalog pool labels and exit",
    )
    return parser


def _resolve_settings(args: argparse.Namespace) -> AnalyzeSettings:
    """Settings from pyproject + CLI flags."""
    try:
        settings = load_pyproject_settings()
    except ConfigurationError as exc:
        print(f"invalid [tool.repro.analyze] configuration: {exc}",
              file=sys.stderr)
        raise SystemExit(2)
    if args.strict and settings.rules:
        settings = dataclasses.replace(settings, rules=())
    if args.dominance and not settings.dominance:
        settings = dataclasses.replace(settings, dominance=True)
    return settings


def _report_dict(
    label: str,
    report: VerificationReport,
    verbose: bool,
) -> Dict[str, object]:
    """JSON-ready rendering of one pool's report."""
    combo = report.default_combo
    diagnostics = [
        {
            "rule_id": d.rule_id,
            "severity": d.severity.value,
            "variant": d.variant,
            "message": d.message,
            "hint": d.hint,
        }
        for d in report.diagnostics
        if verbose or d.severity.value != "info"
    ]
    return {
        "label": label,
        "kernel": report.pool,
        "ok": report.ok,
        "default_launch": (
            f"{combo[0].value}_{combo[1].value}" if combo else None
        ),
        "diagnostics": diagnostics,
    }


def _filter_entries(entries, filters: Sequence[str]):
    """Apply --pool filters; ``None`` (after reporting to stderr) when
    any SUBSTRING matches nothing — each unmatched filter is named, even
    when other filters did match."""
    unmatched = [
        sub
        for sub in filters
        if not any(sub in label for label, _entry in entries)
    ]
    if unmatched:
        named = ", ".join(repr(sub) for sub in unmatched)
        print(
            f"--pool filter(s) matched no catalog pool: {named}; "
            "use --list to see available labels",
            file=sys.stderr,
        )
        return None
    return [
        (label, entry)
        for label, entry in entries
        if any(sub in label for sub in filters)
    ]


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)

    if args.explain is not None:
        try:
            rule = explain_rule(args.explain)
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2
        if args.format == "json":
            print(json.dumps(rule.as_dict(), indent=2, sort_keys=True))
        else:
            print(rule.format())
        return 0

    config = ReproConfig()
    entries = example_entries(config)
    if args.list:
        for label, entry in entries:
            print(f"{label}  ({entry.case.pool.name}, "
                  f"{len(entry.case.pool.variants)} variants)")
        return 0
    if args.pool:
        filtered = _filter_entries(entries, args.pool)
        if filtered is None:
            return 2
        entries = filtered

    combo = _parse_combo(args.mode, args.flow)
    overrides = VerifyOverrides(atomics_race_free=args.override_atomics)
    settings = _resolve_settings(args)
    verifier = PoolVerifier()
    failures: List[str] = []
    pool_docs: List[Dict[str, object]] = []

    for label, entry in entries:
        report = verifier.verify(
            entry.case.pool,
            compute_units=entry.compute_units,
            workload_units=entry.case.workload_units,
            overrides=overrides,
            device_kind=entry.device_kind,
            settings=settings,
        )
        doc = _report_dict(label, report, verbose=args.verbose)
        if args.format == "text":
            print(f"== {label} ==")
            print(report.format(verbose=args.verbose))
        if settings.dominance:
            verdict = pool_cost_bounds(
                entry.case.pool,
                entry.device_kind,
                policy=policy_from_settings(settings),
                margin=settings.dominance_margin,
                workload_units=entry.case.workload_units,
            )
            doc["dominance"] = verdict.as_dict()
            if args.format == "text":
                print(verdict.format_table())
        pool_docs.append(doc)
        if not report.ok:
            failures.append(f"{label}: no legal launch with pool defaults")
        if combo is not None and not report.is_legal(*combo):
            rules = ",".join(
                sorted({d.rule_id for d in report.blocking(*combo)})
            )
            failures.append(
                f"{label}: {combo[0].value}_{combo[1].value} is illegal "
                f"({rules})"
            )
        if args.format == "text":
            print()

    checked = len(entries)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "checked": checked,
                    "ok": not failures,
                    "failures": failures,
                    "dominance": settings.dominance,
                    "pools": pool_docs,
                    "rules": [rule.as_dict() for rule in RULES],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if failures else 0
    if failures:
        print(f"FAIL: {len(failures)} blocking finding(s) over "
              f"{checked} pool(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"OK: {checked} pool(s) verified")
    return 0


def main() -> None:
    """Console entry (exits the process)."""
    raise SystemExit(run())
