"""Pass manager and cached pool verifier.

:class:`PassManager` runs a pipeline of :class:`VerifierPass` objects
over a :class:`PoolContext`, applies any configured rule-severity
adjustments, and folds the findings into one
:class:`VerificationReport`.  :class:`PoolVerifier` adds per-pool verdict
caching on top — a pool's legality facts are static, so the runtime's
launch gate verifies each (pool, overrides) combination exactly once no
matter how many launches hit it.

The default pipeline is :data:`FULL_PASSES`: the six legality passes from
:mod:`~repro.analyze.passes` plus the cost-bound/dominance passes from
:mod:`~repro.analyze.dominance` (inert unless the settings opt in).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..compiler.variants import VariantPool
from ..config import AnalyzeSettings
from .diagnostics import Diagnostic, VerificationReport
from .dominance import CostBoundPass, DominancePass
from .overrides import apply_adjustments, validate_settings
from .passes import (
    DEFAULT_PASSES,
    PoolContext,
    VerifierPass,
    VerifyOverrides,
)

#: Default pipeline: legality passes + cost-bound/dominance passes.
FULL_PASSES: Tuple[VerifierPass, ...] = DEFAULT_PASSES + (
    CostBoundPass(),
    DominancePass(),
)


class PassManager:
    """Runs verifier passes over kernel pools."""

    def __init__(
        self, passes: Sequence[VerifierPass] = FULL_PASSES
    ) -> None:
        self.passes: Tuple[VerifierPass, ...] = tuple(passes)

    def run(self, ctx: PoolContext) -> VerificationReport:
        """Verify one pool and return the aggregated report.

        Configured rule adjustments (``ctx.settings.rules``) are applied
        to the raw emissions — after validating that every adjusted rule
        id actually exists, so a typo cannot silently suppress nothing.
        """
        validate_settings(ctx.settings)
        diagnostics: Tuple[Diagnostic, ...] = ()
        for verifier_pass in self.passes:
            diagnostics += tuple(verifier_pass.run(ctx))
        diagnostics = apply_adjustments(
            diagnostics, ctx.pool.name, ctx.settings
        )
        return VerificationReport(
            pool=ctx.pool.name,
            diagnostics=diagnostics,
            recommended_mode=ctx.pool.mode,
        )


class PoolVerifier:
    """A :class:`PassManager` with per-pool verdict caching.

    Cache keys are (pool identity, overrides, compute units, workload
    units, device kind, settings): the static facts plus the two knobs
    the workload-dependent and cost-bound passes consult.  The pool
    object itself is retained in the cache entry so ``id()`` keys cannot
    alias across garbage-collected pools.
    """

    def __init__(
        self, passes: Sequence[VerifierPass] = FULL_PASSES
    ) -> None:
        self.manager = PassManager(passes)
        self._cache: Dict[tuple, Tuple[VariantPool, VerificationReport]] = {}

    @property
    def cached_verdicts(self) -> int:
        """Number of cached reports (observability / tests)."""
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached verdicts (e.g. after re-registering pools)."""
        self._cache.clear()

    def verify(
        self,
        pool: VariantPool,
        compute_units: int = 1,
        workload_units: Optional[int] = None,
        overrides: Optional[VerifyOverrides] = None,
        device_kind: str = "cpu",
        settings: Optional[AnalyzeSettings] = None,
    ) -> VerificationReport:
        """Verify a pool, reusing the cached verdict when possible."""
        effective = overrides if overrides is not None else VerifyOverrides()
        effective_settings = (
            settings if settings is not None else AnalyzeSettings()
        )
        key = (
            id(pool),
            effective,
            compute_units,
            workload_units,
            device_kind,
            effective_settings,
        )
        hit = self._cache.get(key)
        if hit is not None and hit[0] is pool:
            return hit[1]
        report = self.manager.run(
            PoolContext(
                pool=pool,
                compute_units=compute_units,
                workload_units=workload_units,
                overrides=effective,
                device_kind=device_kind,
                settings=effective_settings,
            )
        )
        self._cache[key] = (pool, report)
        return report


def verify_pool(
    pool: VariantPool,
    compute_units: int = 1,
    workload_units: Optional[int] = None,
    overrides: Optional[VerifyOverrides] = None,
    passes: Sequence[VerifierPass] = FULL_PASSES,
    device_kind: str = "cpu",
    settings: Optional[AnalyzeSettings] = None,
) -> VerificationReport:
    """One-shot pool verification (uncached convenience entry point)."""
    return PassManager(passes).run(
        PoolContext(
            pool=pool,
            compute_units=compute_units,
            workload_units=workload_units,
            overrides=overrides if overrides is not None else VerifyOverrides(),
            device_kind=device_kind,
            settings=settings if settings is not None else AnalyzeSettings(),
        )
    )
